"""Ablation A1 -- the classifier's contribution.

Runs ECRIPSE with and without the SVM blockade at equal accuracy targets;
the simulation-count gap is the classifier's saving (one of the paper's
two acceleration mechanisms).
"""

import pytest
from conftest import run_once

from repro.experiments.ablations import classifier_ablation


def test_classifier_saves_simulations(benchmark, bench_scale):
    results = run_once(benchmark, classifier_ablation,
                       target_relative_error=bench_scale["loose_rel_err"],
                       config=bench_scale["config"])

    with_clf = results["with classifier"]
    without = results["without"]
    print()
    print(f"with classifier:    {with_clf.summary()}")
    print(f"without classifier: {without.summary()}")
    print(f"saving: {results['simulation_saving']:.1f}x")

    # The two variants answer the same question...
    assert with_clf.pfail == pytest.approx(without.pfail, rel=0.4)
    # ...but the classifier removes most transistor-level simulations.
    assert results["simulation_saving"] > 2.0
