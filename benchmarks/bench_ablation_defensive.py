"""Ablation -- the defensive mixture fraction.

Our stage-2 alternative distribution blends a small prior component into
the particle mixture (see :class:`repro.core.importance.DefensiveMixture`,
a safeguard the paper leaves unstated).  This bench shows the weight
variance blowing up as the defensive fraction shrinks toward zero on a
fixed statistical budget.
"""

import numpy as np
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.ecripse import EcripseEstimator
from repro.experiments.setup import paper_setup
from repro.rng import stable_seed


def sweep_fractions(fractions, config):
    setup = paper_setup()
    rows = {}
    for fraction in fractions:
        estimator = EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model,
            config=config.with_(defensive_fraction=fraction,
                                max_statistical_samples=120_000),
            seed=stable_seed("defensive", fraction))
        result = estimator.run(target_relative_error=1e-4)  # exhaust budget
        rows[fraction] = result
    return rows


def test_defensive_fraction_controls_weight_variance(benchmark,
                                                     bench_scale):
    rows = run_once(benchmark, sweep_fractions, (0.02, 0.1, 0.3),
                    bench_scale["config"])

    print()
    print(format_table(
        ["defensive fraction", "Pfail", "rel.err at fixed budget"],
        [[f, f"{r.pfail:.3e}", f"{r.relative_error:.1%}"]
         for f, r in rows.items()],
        title="Defensive-mixture ablation (fixed statistical budget)"))

    estimates = np.array([r.pfail for r in rows.values()])
    # All fractions estimate the same probability...
    assert estimates.max() / estimates.min() < 1.6
    # ...and a moderate fraction must not be wildly worse than a small
    # one (the bound-on-weights effect compensates the wasted prior
    # draws).  Mostly this bench documents the trade-off table.
    assert all(np.isfinite([r.relative_error for r in rows.values()]))
