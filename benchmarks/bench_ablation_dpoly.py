"""Ablation A3 -- polynomial feature degree.

Classifier accuracy near the failure boundary for degrees 1..4; the paper
fixes D_poly = 4.  A linear classifier cannot represent the (curved,
two-lobed) failure boundary, so accuracy should rise with degree.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.ablations import polynomial_degree_ablation


def test_degree_improves_boundary_accuracy(benchmark):
    accuracies = run_once(benchmark, polynomial_degree_ablation,
                          degrees=(1, 2, 3, 4))

    print()
    print(format_table(
        ["degree", "boundary-shell accuracy"],
        [[d, f"{a:.3f}"] for d, a in accuracies.items()],
        title="A3: classifier accuracy vs polynomial degree"))

    # Degree 1 cannot represent the two-lobed region...
    assert accuracies[1] < accuracies[4]
    # ...and the paper's degree-4 choice classifies the hard shell well.
    assert accuracies[4] > 0.9
