"""Ablation A2 -- particle-filter degeneracy.

With a single filter the particle ensemble tends to collapse onto one of
the two symmetric failure lobes (Section III-B); with two or more filters
each lobe keeps its own population.  The bench measures how often the
final particle cloud ends up one-sided.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.ablations import filter_count_ablation


def test_single_filter_degenerates(benchmark, bench_scale):
    table = run_once(benchmark, filter_count_ablation,
                     filter_counts=(1, 2),
                     target_relative_error=bench_scale["loose_rel_err"],
                     config=bench_scale["config"],
                     seeds=(1, 2, 3))

    rows = [[count, f"{stats['mean_pfail']:.3e}",
             f"{stats['spread']:.1e}",
             f"{stats['collapsed_runs']}/{stats['runs']}"]
            for count, stats in table.items()]
    print()
    print(format_table(
        ["filters", "mean Pfail", "spread", "collapsed runs"], rows,
        title="A2: particle-filter degeneracy"))

    # A single filter collapses onto one lobe in most runs; the filter
    # bank never does (each filter is pinned to its own lobe).
    assert table[1]["collapsed_runs"] >= 1
    assert table[2]["collapsed_runs"] == 0
