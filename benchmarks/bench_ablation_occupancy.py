"""Ablation A4 -- occupancy convention (DESIGN.md "Substitutions").

The paper's printed eq. (10) uses tau_c/(tau_c+tau_e), which under its own
time-constant definitions is the *empty* fraction; the physical captured
fraction is tau_e/(tau_c+tau_e).  Only the physical form yields Fig. 8's
U-shape (failure probability maximal at duty ratios 0 and 1); this bench
demonstrates the divergence at the curve's endpoints.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.experiments.ablations import occupancy_convention_ablation


def test_only_physical_convention_gives_u_shape(benchmark, bench_scale):
    curves = run_once(benchmark, occupancy_convention_ablation,
                      alphas=(0.0, 0.5, 1.0),
                      target_relative_error=bench_scale["loose_rel_err"],
                      config=bench_scale["config"])

    rows = []
    for convention, curve in curves.items():
        for alpha, pfail in curve.items():
            rows.append([convention, alpha, f"{pfail:.3e}"])
    print()
    print(format_table(["convention", "alpha", "Pfail"], rows,
                       title="A4: occupancy convention at Fig. 8 endpoints"))

    physical = curves["physical"]
    paper = curves["paper"]
    # Physical: U-shape -- endpoints worse than the centre.
    assert physical[0.0] > physical[0.5]
    assert physical[1.0] > physical[0.5]
    # Literal eq. (10): trap occupancy (and with it the penalty at the
    # extremes) is much smaller -- the U-shape flattens or inverts.
    assert paper[0.0] < physical[0.0]
    assert paper[1.0] < physical[1.0]
