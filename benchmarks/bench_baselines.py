"""Baseline shoot-out on the RDF-only problem.

Positions every implemented estimator on the same task the paper's Fig. 6
uses: mean-shift IS [4]/[6], statistical blockade [12], conventional
PF-SIS [8], and ECRIPSE.  Shape assertion: all converged estimators agree,
and ECRIPSE needs the fewest simulations to its target.
"""

import pytest
from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.blockade_mc import StatisticalBlockadeEstimator
from repro.core.conventional import ConventionalSisEstimator
from repro.core.ecripse import EcripseEstimator
from repro.core.meanshift import MeanShiftEstimator
from repro.experiments.setup import paper_setup


def run_all(bench_scale):
    setup = paper_setup()
    target = bench_scale["loose_rel_err"]
    config = bench_scale["config"]
    results = {}

    results["ecripse"] = EcripseEstimator(
        setup.space, setup.indicator, setup.rtn_model, config=config,
        seed=1).run(target_relative_error=target)
    results["conventional-sis"] = ConventionalSisEstimator(
        setup.space, setup.indicator, setup.rtn_model, config=config,
        seed=2).run(target_relative_error=target,
                    max_simulations=bench_scale["max_conventional_sims"])
    results["mean-shift-is"] = MeanShiftEstimator(
        setup.space, setup.indicator, setup.rtn_model, seed=3).run(
        target_relative_error=target,
        max_simulations=bench_scale["max_conventional_sims"])
    return results


def test_baseline_shootout(benchmark, bench_scale):
    results = run_once(benchmark, run_all, bench_scale)

    rows = [[name, f"{r.pfail:.3e}", f"{r.relative_error:.1%}",
             r.n_simulations]
            for name, r in results.items()]
    print()
    print(format_table(["method", "Pfail", "rel.err", "simulations"], rows,
                       title="RDF-only baseline comparison (VDD = 0.7 V)"))

    # All estimators answer the same question.
    values = [r.pfail for r in results.values()]
    assert max(values) / min(values) < 1.6

    # ECRIPSE is the cheapest in transistor-level simulations.
    ecripse_sims = results["ecripse"].n_simulations
    for name, result in results.items():
        if name != "ecripse":
            assert ecripse_sims < result.n_simulations, name


def test_statistical_blockade_needs_naive_sample_counts(benchmark,
                                                        bench_scale):
    """Blockade [12] reduces the *simulated* fraction but keeps naive-MC
    statistical efficiency, which is why the paper moved past it: at an
    SRAM-grade Pfail (~2e-4) a bench-scale sample budget leaves it with a
    relative error far above what ECRIPSE reaches with the same or fewer
    simulations."""
    setup = paper_setup()
    estimator = StatisticalBlockadeEstimator(
        setup.space, setup.indicator, setup.rtn_model, seed=4)
    result = run_once(benchmark, estimator.run,
                      n_samples=bench_scale["naive_samples"])
    print()
    print(result.summary())
    if result.pfail > 0:
        assert result.relative_error > bench_scale["loose_rel_err"]
    assert result.n_simulations < result.n_statistical_samples
