"""Cross-entropy baseline on the RDF-only cell problem.

A single-Gaussian adaptive-IS method against ECRIPSE's two-mode particle
mixture: CE must either straddle both failure lobes (inefficient) or
collapse onto one (biased); either way ECRIPSE reaches the target with
fewer simulations.
"""

from conftest import run_once

from repro.analysis.tables import format_table
from repro.core.crossentropy import CrossEntropyEstimator
from repro.core.ecripse import EcripseEstimator
from repro.experiments.setup import paper_setup


def test_crossentropy_vs_ecripse(benchmark, bench_scale):
    setup = paper_setup()
    target = bench_scale["loose_rel_err"]

    def run_both():
        ce = CrossEntropyEstimator(setup.space, setup.indicator,
                                   seed=5).run(
            target_relative_error=target,
            max_simulations=bench_scale["max_conventional_sims"])
        ecripse = EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model,
            config=bench_scale["config"], seed=6).run(
            target_relative_error=target)
        return ce, ecripse

    ce, ecripse = run_once(benchmark, run_both)
    print()
    print(format_table(
        ["method", "Pfail", "rel.err", "simulations"],
        [["cross-entropy", f"{ce.pfail:.3e}", f"{ce.relative_error:.1%}",
          ce.n_simulations],
         ["ecripse", f"{ecripse.pfail:.3e}",
          f"{ecripse.relative_error:.1%}", ecripse.n_simulations]],
        title="Cross-entropy vs ECRIPSE (RDF-only, 0.7 V)"))
    print("CE proposal sigma:", [round(s, 2) for s in
                                 ce.metadata["proposal_sigma"]])

    # CE answers within a factor ~2 of ECRIPSE (it may cover one lobe)...
    assert 0.4 * ecripse.pfail < ce.pfail < 1.6 * ecripse.pfail
    # ...but spends more transistor-level simulations.
    assert ecripse.n_simulations < ce.n_simulations
