"""Microbenchmarks of the simulation substrate.

These are classical pytest-benchmark measurements (repeated rounds): the
vectorised butterfly evaluator's throughput governs every experiment's
wall clock, and the MNA reference path is included for scale.
"""

import numpy as np
import pytest

from repro.config import TABLE_I
from repro.spice import DcSolver
from repro.sram.butterfly import ReadButterflySolver
from repro.sram.cell import SramCell
from repro.sram.evaluator import CellEvaluator
from repro.variability.space import VariabilitySpace


@pytest.fixture(scope="module")
def cell():
    return SramCell()


@pytest.fixture(scope="module")
def space():
    return VariabilitySpace.from_pelgrom(TABLE_I.avth_mv_nm,
                                         TABLE_I.geometry)


def test_batch_margin_throughput(benchmark, cell, space):
    """Vectorised margins for 1000 cells (the Monte-Carlo hot path)."""
    evaluator = CellEvaluator(cell, space)
    x = np.random.default_rng(0).standard_normal((1000, 6))
    result = benchmark(evaluator.cell_margin, x)
    assert result.shape == (1000,)
    assert np.all(np.isfinite(result))


def test_single_butterfly(benchmark, cell):
    """One full butterfly solve (both VTCs)."""
    solver = ReadButterflySolver(cell)
    shifts = np.zeros((1, 6))
    curves = benchmark(solver.solve, shifts)
    assert curves.batch_size == 1


def test_mna_operating_point(benchmark, cell):
    """Reference path: one full-cell DC operating point via MNA."""
    circuit = cell.read_circuit()
    guess = {"q": 0.0, "qb": 0.7, "vdd": 0.7, "wl": 0.7, "bl": 0.7,
             "blb": 0.7}

    def solve():
        return DcSolver(circuit).solve(initial_guess=guess)

    op = benchmark(solve)
    assert op["qb"] > op["q"]
