"""Benchmark E1/E2 -- paper Fig. 6 (a) and (b).

Regenerates the proposed-vs-conventional convergence comparison on the
RDF-only problem and prints the simulations-to-accuracy table.  The shape
assertions encode the paper's qualitative claims: both methods agree, and
the proposed method needs several-fold fewer transistor-level simulations
at equal relative error (paper: ~36x at 1 %).
"""

from conftest import run_once

from repro.experiments.fig6 import run_fig6


def test_fig6_proposed_vs_conventional(benchmark, bench_scale):
    result = run_once(
        benchmark, run_fig6,
        target_relative_error=bench_scale["target_rel_err"],
        max_conventional_sims=bench_scale["max_conventional_sims"],
        config=bench_scale["config"])

    print()
    print(result.proposed.summary())
    print(result.conventional.summary())
    print(result.table())
    print("speedup:", result.report.summary())

    # Fig. 6(a): the two estimates agree within their confidence bands.
    assert result.report.estimates_agree

    # Fig. 6(b): the proposed method reaches the accuracy target with a
    # multiple fewer simulations (paper: 36x at 1% -- scaled runs see a
    # smaller but still decisive factor).
    assert result.report.simulation_ratio is not None
    assert result.report.simulation_ratio > 2.0

    # Same order of magnitude as the paper's 1.33e-4 RDF-only Pfail.
    assert 5e-5 < result.proposed.pfail < 5e-4
