"""Benchmark E3/E4 -- paper Fig. 7 (a) and (b).

RDF + RTN at the reduced 0.5 V supply: naive Monte Carlo against the
proposed method at duty ratio 0.3, then the proposed method again at duty
ratio 0.5 with shared initial particles.
"""

from conftest import run_once

from repro.experiments.fig7 import run_fig7


def test_fig7_naive_vs_proposed_with_rtn(benchmark, bench_scale):
    result = run_once(
        benchmark, run_fig7,
        naive_samples=bench_scale["naive_samples"],
        target_relative_error=bench_scale["loose_rel_err"],
        config=bench_scale["config"])

    print()
    print(result.table())
    print(f"naive/proposed simulation ratio: "
          f"{result.simulation_saving:.1f}x (paper: ~40x)")
    print(f"shared-init cost ratio: {result.shared_init_saving:.2f} "
          f"(paper: ~0.5)")

    # Fig. 7(a): the proposed estimate lies inside the naive MC band.
    assert result.agreement

    # The proposed method needs far fewer simulations than naive MC.
    assert result.simulation_saving > 3.0

    # Fig. 7(b): the shared-initialisation second run is cheaper than the
    # first (the paper reports roughly half the simulations).
    assert result.shared_init_saving < 1.0

    # Failure probability in the paper's 0.5 V RTN band (6e-3..1e-2 for
    # the authors; our calibrated cell sits in the same decade).
    assert 5e-4 < result.proposed_a.pfail < 5e-2
