"""Benchmark E5 -- paper Fig. 8.

Failure probability vs duty ratio with RTN at the nominal supply, plus
the no-RTN floor.  Shape assertions: U-shaped curve with its minimum at
alpha = 0.5, approximate bilateral symmetry, and a substantial RTN
penalty over the no-RTN floor (paper: ~6x at the extremes).
"""

import numpy as np
from conftest import run_once

from repro.experiments.fig8 import run_fig8


def test_fig8_duty_ratio_sweep(benchmark, bench_scale):
    result = run_once(
        benchmark, run_fig8,
        alphas=bench_scale["alphas"],
        target_relative_error=bench_scale["loose_rel_err"],
        config=bench_scale["config"])

    print()
    print(result.table())
    print(f"RTN penalty: {result.rtn_penalty:.1f}x (paper: ~6x); "
          f"minimum at {result.minimum_alpha} (paper: 0.5); "
          f"asymmetry {result.asymmetry():.1%}; "
          f"total sims {result.sweep.total_simulations}")

    alphas, pfail, _ = result.sweep.pfail_curve()

    # U-shape: the extremes are the worst bias conditions...
    centre = pfail[np.argmin(np.abs(alphas - 0.5))]
    assert pfail[0] > centre
    assert pfail[-1] > centre
    # ...and the minimum sits at (or next to) alpha = 0.5.
    assert abs(result.minimum_alpha - 0.5) <= 0.25

    # Bilateral symmetry within the statistical noise of a scaled run.
    assert result.asymmetry() < 0.5

    # RTN makes things strictly worse than the no-RTN floor; the paper
    # reports ~6x at the worst bias.
    assert result.rtn_penalty > 1.5
