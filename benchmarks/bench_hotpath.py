"""Benchmark the repro.perf hot-path acceleration (PR 5 acceptance gate).

Runs the Fig. 8 duty-ratio sweep twice -- once with the legacy exact
evaluator, once with the accelerated one (adaptive labelling + solve
cache) -- and asserts the acceptance criteria:

* every estimate (pfail, CI, simulation count, trace) is bit-identical
  between the two sweeps;
* the accelerated sweep performs >= 2x fewer device-model evaluations;
* a warm on-disk cache replays the sweep with > 50% hit rate, still
  bit-identical;
* thread/process backends and a kill+resume cycle (cache restored from
  the checkpoint) reproduce the serial result exactly.

Also micro-benchmarks the butterfly solver's in-place bisection against
an inline reimplementation of the old ``np.where`` formulation (the
before/after note for the PR) and asserts bit-identity there too.

The batched-core gate (PR 10) A/Bs the fused ``(2B, G)`` bisection
against the per-side solve on raw batches, checks deep-solve lane
compaction, and passes when the fused solve is >= 1.5x faster on wall
time OR the sweep-level eval reduction holds >= 2x -- outputs
bit-identical in every case.

Numbers land in root-level ``BENCH_hotpath.json``: the ``latest`` block
plus an appended ``runs`` trajectory.  ``--quick`` shrinks budgets for
CI; set ``ECRIPSE_BENCH_FULL=1`` semantics via no flag for the paper
scale.

Usage::

    PYTHONPATH=src python benchmarks/bench_hotpath.py --quick
"""

from __future__ import annotations

import argparse
import json
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.checkpoint import CheckpointConfig, run_checkpointed
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.errors import CheckpointCrash
from repro.experiments.fig8 import run_fig8
from repro.experiments.setup import paper_setup
from repro.perf import PerfConfig, save_registered_caches
import repro.perf as perf_pkg
from repro.perf.report import collect_perf, merge_perf
from repro.runtime import ExecutionConfig
from repro.sram.butterfly import ReadButterflySolver
from repro.sram.cell import SramCell

JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_hotpath.json"

QUICK = {
    "alphas": (0.0, 0.5, 1.0),
    "target": 0.5,
    "config": EcripseConfig(n_particles=40, n_iterations=3, k_train=64,
                            stage2_batch=400, min_stage2_batches=2,
                            max_statistical_samples=4000),
}
FULL = {
    "alphas": (0.0, 0.3, 0.5, 0.7, 1.0),
    "target": 0.10,
    "config": EcripseConfig(n_particles=60, n_iterations=8, k_train=160,
                            stage2_batch=1500,
                            max_statistical_samples=400_000),
}
SEED = 2015


# ----------------------------------------------------------------------
def same_estimate(a, b) -> bool:
    return (a.pfail == b.pfail and a.ci_halfwidth == b.ci_halfwidth
            and a.n_simulations == b.n_simulations
            and len(a.trace) == len(b.trace)
            and all(pa.estimate == pb.estimate
                    and pa.n_simulations == pb.n_simulations
                    for pa, pb in zip(a.trace, b.trace)))


def same_fig8(a, b) -> bool:
    return (same_estimate(a.no_rtn, b.no_rtn)
            and a.sweep.alphas == b.sweep.alphas
            and all(same_estimate(ea, eb) for ea, eb
                    in zip(a.sweep.estimates, b.sweep.estimates)))


def sweep_once(scale, perf, checkpoint=None):
    t0 = time.perf_counter()
    result = run_fig8(alphas=scale["alphas"],
                      target_relative_error=scale["target"],
                      config=scale["config"], seed=SEED,
                      checkpoint=checkpoint, perf=perf)
    wall = time.perf_counter() - t0
    return result, merge_perf(collect_perf(result)), wall


# ----------------------------------------------------------------------
def bench_sweep(scale) -> dict:
    """Exact vs accelerated Fig. 8 sweep: identity + >=2x eval saving."""
    print("== Fig. 8 sweep: exact vs accelerated ==")
    exact, exact_perf, exact_wall = sweep_once(scale, PerfConfig.exact())
    fast, fast_perf, fast_wall = sweep_once(scale, PerfConfig())

    assert same_fig8(exact, fast), \
        "accelerated sweep is not bit-identical to the exact sweep"
    ratio = exact_perf["device_model_evals"] / fast_perf["device_model_evals"]
    print(f"  exact: {exact_perf['device_model_evals']:>12,} device evals  "
          f"{exact_wall:6.1f} s")
    print(f"  fast:  {fast_perf['device_model_evals']:>12,} device evals  "
          f"{fast_wall:6.1f} s")
    print(f"  eval reduction {ratio:.2f}x, screened fraction "
          f"{fast_perf['screened_fraction']:.1%}")
    assert ratio >= 2.0, f"device-model eval reduction {ratio:.2f}x < 2x"
    return {
        "exact_device_model_evals": exact_perf["device_model_evals"],
        "fast_device_model_evals": fast_perf["device_model_evals"],
        "eval_reduction": ratio,
        "exact_wall_s": exact_wall,
        "fast_wall_s": fast_wall,
        "screened_fraction": fast_perf["screened_fraction"],
        "cache_hit_rate": fast_perf["cache_hit_rate"],
    }


def bench_warm_cache(scale) -> dict:
    """Replay the sweep against a persisted cache: >50% hits, identical."""
    print("== warm on-disk cache replay ==")
    with tempfile.TemporaryDirectory() as cache_dir:
        perf = PerfConfig(cache_path=cache_dir)
        cold, cold_perf, cold_wall = sweep_once(scale, perf)
        save_registered_caches()
        # drop the in-process registry so the second sweep must reload
        # the cache from disk, as a fresh process would
        perf_pkg._REGISTERED_CACHES.clear()
        warm, warm_perf, warm_wall = sweep_once(scale, perf)

    assert same_fig8(cold, warm), "warm-cache sweep diverged"
    hit_rate = warm_perf["cache_hit_rate"]
    print(f"  cold: {cold_perf['device_model_evals']:>12,} device evals  "
          f"{cold_wall:6.1f} s")
    print(f"  warm: {warm_perf['device_model_evals']:>12,} device evals  "
          f"{warm_wall:6.1f} s  hit rate {hit_rate:.1%}")
    assert hit_rate > 0.5, f"warm hit rate {hit_rate:.1%} <= 50%"
    return {
        "cold_device_model_evals": cold_perf["device_model_evals"],
        "warm_device_model_evals": warm_perf["device_model_evals"],
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_hit_rate": hit_rate,
    }


def bench_backends(scale) -> dict:
    """Accelerated single-point runs must agree across backends."""
    print("== backend bit-identity (accelerated) ==")
    rows = {}
    results = {}
    for backend in ("serial", "thread", "process"):
        setup = paper_setup(alpha=0.3, perf=PerfConfig())
        config = scale["config"].with_(execution=ExecutionConfig(
            backend=backend, workers=2, chunk_size=500))
        estimator = EcripseEstimator(setup.space, setup.indicator,
                                     setup.rtn_model, config=config,
                                     seed=SEED)
        t0 = time.perf_counter()
        results[backend] = estimator.run(
            target_relative_error=scale["target"])
        rows[backend] = {
            "wall_time_s": time.perf_counter() - t0,
            "pfail": results[backend].pfail,
            "device_model_evals":
                results[backend].metadata["perf"]["device_model_evals"],
        }
        print(f"  {backend:8s} pfail {results[backend].pfail:.4e}  "
              f"{rows[backend]['wall_time_s']:6.1f} s")
    assert same_estimate(results["serial"], results["thread"])
    assert same_estimate(results["serial"], results["process"])
    return rows


def bench_resume(scale) -> dict:
    """Kill mid-run, resume with the cache restored from the snapshot."""
    print("== kill + resume with cache restored ==")

    def estimator_for(setup):
        return EcripseEstimator(setup.space, setup.indicator,
                                setup.rtn_model, config=scale["config"],
                                seed=SEED)

    baseline = estimator_for(paper_setup(alpha=0.3, perf=PerfConfig())).run(
        target_relative_error=scale["target"])

    with tempfile.TemporaryDirectory() as ckpt_dir:
        crashing = CheckpointConfig(directory=ckpt_dir,
                                    every_simulations=400, crash_after=2)
        crashed = False
        try:
            run_checkpointed(crashing, "run",
                             estimator_for(paper_setup(alpha=0.3,
                                                       perf=PerfConfig())),
                             crash_budget=[2],
                             target_relative_error=scale["target"])
        except CheckpointCrash:
            crashed = True
        assert crashed, "crash_after=2 did not fire"

        setup = paper_setup(alpha=0.3, perf=PerfConfig())
        estimator = estimator_for(setup)
        resuming = CheckpointConfig(directory=ckpt_dir,
                                    every_simulations=400, resume=True)
        manager = resuming.manager("run")
        manager.restore_into(estimator)
        restored_entries = len(setup.evaluator.cache)
        assert restored_entries > 0, "snapshot restored a cold cache"
        resumed = estimator.run(checkpoint=manager,
                                target_relative_error=scale["target"])

    assert same_estimate(baseline, resumed), "resumed run diverged"
    print(f"  cache entries restored from snapshot: {restored_entries:,}")
    print(f"  resumed pfail {resumed.pfail:.4e} == baseline")
    return {"restored_cache_entries": restored_entries,
            "pfail": resumed.pfail}


def bench_butterfly(quick: bool) -> dict:
    """Before/after note for the in-place bisection micro-cleanup."""
    print("== butterfly solver: np.where loop vs in-place buffers ==")
    solver = ReadButterflySolver(SramCell(), grid_points=61)
    rng = np.random.default_rng(SEED)
    delta_vth = rng.normal(scale=0.05, size=(200 if quick else 2000, 6))
    repeats = 3 if quick else 10

    def legacy_solve_side(side):
        # the pre-PR formulation: fresh np.where allocations per step
        names = solver._side_names[side]
        idx = solver._sides[side]
        dv = [delta_vth[:, i, None] for i in idx]
        vin = solver.grid[None, :]
        lo = np.zeros((delta_vth.shape[0], solver.grid.size))
        hi = np.full((delta_vth.shape[0], solver.grid.size), solver.vdd)
        for _ in range(solver.bisection_iterations):
            mid = 0.5 * (lo + hi)
            f = solver._node_current(names, vin, mid, dv[0], dv[1], dv[2],
                                     solver.vdd, solver.vdd)
            above = f > 0.0
            lo = np.where(above, mid, lo)
            hi = np.where(above, hi, mid)
        return 0.5 * (lo + hi)

    def time_fn(fn):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return out, best

    legacy_out, legacy_s = time_fn(lambda: legacy_solve_side(0))
    current_out, current_s = time_fn(lambda: solver._solve_side(0, delta_vth))
    assert np.array_equal(legacy_out, current_out), \
        "in-place bisection is not bit-identical to the np.where loop"
    speedup = legacy_s / current_s
    print(f"  legacy  {legacy_s * 1e3:7.1f} ms")
    print(f"  current {current_s * 1e3:7.1f} ms  ({speedup:.2f}x)")
    return {"legacy_best_s": legacy_s, "current_best_s": current_s,
            "speedup": speedup,
            "note": "in-place buffer reuse vs per-step np.where; "
                    "outputs bit-identical"}


def bench_batched(quick: bool, sweep: dict) -> dict:
    """PR gate: fused (2B, G) bisection + lane compaction vs per-side.

    Fusion halves the fixed per-step cost (one Python-level bisection
    loop instead of two), so its wall win lives where that cost
    dominates: the single-sample solves of the adaptive refinement
    path.  Large batches are array-bound and roughly wall-neutral --
    they are still checked for bit-identity and their ratio reported.
    """
    print("== batched solver: fused (2B, G) vs per-side ==")
    cell = SramCell()
    rng = np.random.default_rng(SEED)
    fused = ReadButterflySolver(cell, grid_points=101)
    per_side = ReadButterflySolver(cell, grid_points=101, batched=False)

    def time_solve(solver, shifts, repeats):
        best = float("inf")
        for _ in range(repeats):
            t0 = time.perf_counter()
            curves = solver.solve(shifts)
            best = min(best, time.perf_counter() - t0)
        return curves, best

    # the hot-path shape: one sample per solve (adaptive refinement)
    single = rng.normal(scale=0.05, size=(1, 6))
    _, side_1_s = time_solve(per_side, single, 20 if quick else 50)
    _, fused_1_s = time_solve(fused, single, 20 if quick else 50)
    raw_speedup = side_1_s / fused_1_s

    delta_vth = rng.normal(scale=0.05, size=(512 if quick else 2048, 6))
    side_curves, side_s = time_solve(per_side, delta_vth,
                                     3 if quick else 5)
    fused_curves, fused_s = time_solve(fused, delta_vth,
                                       3 if quick else 5)
    assert np.array_equal(side_curves.vtc_a, fused_curves.vtc_a) \
        and np.array_equal(side_curves.vtc_b, fused_curves.vtc_b), \
        "fused solve is not bit-identical to the per-side solve"
    print(f"  single sample: per-side {side_1_s * 1e3:6.2f} ms  "
          f"fused {fused_1_s * 1e3:6.2f} ms  ({raw_speedup:.2f}x)")
    print(f"  batch {delta_vth.shape[0]}: per-side {side_s * 1e3:7.1f} ms  "
          f"fused {fused_s * 1e3:7.1f} ms  ({side_s / fused_s:.2f}x)")

    # deep-solve compaction: past the float64 bracket-collapse depth
    # (~53 steps) retired lanes stop paying device evals
    deep = {"grid_points": 61, "bisection_iterations": 96}
    compacting = ReadButterflySolver(cell, **deep)
    plain = ReadButterflySolver(cell, **deep, compaction_depth=10**6)
    compacted_curves = compacting.solve(delta_vth)
    plain_curves = plain.solve(delta_vth)
    assert np.array_equal(compacted_curves.vtc_a, plain_curves.vtc_a) \
        and np.array_equal(compacted_curves.vtc_b, plain_curves.vtc_b), \
        "compacting deep solve diverged from the full-lane solve"
    assert compacting.evals_saved > 0, "96-step solve never compacted"
    assert compacting.model_evals + compacting.evals_saved \
        == plain.model_evals
    saved_fraction = compacting.evals_saved / plain.model_evals
    print(f"  96-step solve: {saved_fraction:.1%} of device evals "
          f"compacted away, outputs bit-identical")

    assert raw_speedup >= 1.5 or sweep["eval_reduction"] >= 2.0, (
        f"batched gate failed: fused speedup {raw_speedup:.2f}x < 1.5x "
        f"and sweep eval reduction {sweep['eval_reduction']:.2f}x < 2x")
    return {"single_per_side_best_s": side_1_s,
            "single_fused_best_s": fused_1_s,
            "single_speedup": raw_speedup,
            "batch_per_side_best_s": side_s,
            "batch_fused_best_s": fused_s,
            "batch_speedup": side_s / fused_s,
            "deep_evals_saved_fraction": saved_fraction,
            "sweep_eval_reduction": sweep["eval_reduction"],
            "note": "fused (2B, G) bisection + active-lane compaction; "
                    "outputs bit-identical"}


# ----------------------------------------------------------------------
def save_record(record: dict) -> None:
    data = (json.loads(JSON_PATH.read_text()) if JSON_PATH.exists()
            else {"runs": []})
    data.setdefault("runs", []).append(record)
    data["latest"] = record
    JSON_PATH.write_text(json.dumps(data, indent=2) + "\n")
    print(f"wrote {JSON_PATH}")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--quick", action="store_true",
                        help="CI-scale budgets (a couple of minutes)")
    args = parser.parse_args(argv)
    scale = QUICK if args.quick else FULL

    sweep = bench_sweep(scale)
    record = {
        "mode": "quick" if args.quick else "full",
        "sweep": sweep,
        "batched": bench_batched(args.quick, sweep),
        "warm_cache": bench_warm_cache(scale),
        "backends": bench_backends(scale),
        "resume": bench_resume(scale),
        "butterfly": bench_butterfly(args.quick),
    }
    save_record(record)
    print("bench_hotpath: all acceptance gates passed")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
