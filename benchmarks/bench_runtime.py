"""Benchmark the repro.runtime execution engine.

Compares the ``serial``, ``thread`` and ``process`` backends on the two
workloads the runtime serves -- a naive-MC sample block and one full
ECRIPSE estimate -- on the paper's 0.5 V cell (the pure-Python SPICE
solver is the unit of work, so the process backend is the one that can
actually scale: threads serialise on the GIL).

Estimates must be bit-identical across backends (the runtime's core
contract); the >=2x process-backend speedup is asserted only when the
host has >= 4 usable cores -- a 1-core CI box cannot speed anything up,
but the numbers are still measured and written to root-level
``BENCH_runtime.json``.

Each backend row also records its device-model evaluation count (from
``metadata["perf"]``, see :mod:`repro.perf.report`).  Pool workers
solve on evaluator *copies*, but every chunk ships its counter delta
back with the result and the estimators absorb it
(``CellEvaluator.absorb_stats``), so the count is serial-matching on
every backend -- asserted below alongside the pfail bit-identity.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

from conftest import FULL

from repro.core.naive import NaiveMonteCarlo
from repro.experiments.setup import paper_setup
from repro.core.ecripse import EcripseEstimator
from repro.runtime import ExecutionConfig

BACKENDS = ("serial", "thread", "process")
WORKERS = 4
JSON_PATH = Path(__file__).resolve().parents[1] / "BENCH_runtime.json"


def _cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _execution(backend: str, chunk: int) -> ExecutionConfig:
    return ExecutionConfig(backend=backend, workers=WORKERS,
                           chunk_size=chunk)


def _save(section: str, payload: dict) -> None:
    data = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}
    data[section] = payload
    data["cores"] = _cores()
    data["workers"] = WORKERS
    JSON_PATH.write_text(json.dumps(data, indent=2))


def _report(section: str, rows: dict[str, dict]) -> None:
    print()
    print(f"{section}: {_cores()} core(s), {WORKERS} workers")
    serial_t = rows["serial"]["wall_time_s"]
    for backend, row in rows.items():
        row["speedup_vs_serial"] = serial_t / row["wall_time_s"]
        print(f"  {backend:8s} {row['wall_time_s']:8.2f} s  "
              f"speedup {row['speedup_vs_serial']:.2f}x")
    _save(section, rows)


def test_naive_mc_backends():
    n_samples = 100_000 if FULL else 4000
    chunk = 500

    rows: dict[str, dict] = {}
    for backend in BACKENDS:
        # fresh setup per backend: a shared evaluator would hand the
        # later backends a fully warm solve cache and void the timing
        setup = paper_setup(vdd=0.5, alpha=0.3)
        mc = NaiveMonteCarlo(setup.space, setup.indicator, setup.rtn_model,
                             seed=0, execution=_execution(backend, chunk))
        t0 = time.perf_counter()
        result = mc.run(n_samples)
        rows[backend] = {
            "wall_time_s": time.perf_counter() - t0,
            "pfail": result.pfail,
            "n_simulations": result.n_simulations,
            "n_fallbacks": result.metadata["execution"]["n_fallbacks"],
            "device_model_evals":
                result.metadata["perf"]["device_model_evals"],
        }
    _report("naive-mc", rows)

    # the determinism contract: every backend, the exact same estimate
    assert rows["thread"]["pfail"] == rows["serial"]["pfail"]
    assert rows["process"]["pfail"] == rows["serial"]["pfail"]
    assert len({r["n_simulations"] for r in rows.values()}) == 1
    # worker counter deltas ride back with each chunk, so the perf
    # report is nonzero and serial-matching on every backend
    assert rows["serial"]["device_model_evals"] > 0
    assert len({r["device_model_evals"] for r in rows.values()}) == 1

    # the ISSUE acceptance number, only meaningful with real parallelism
    if _cores() >= WORKERS:
        assert rows["process"]["speedup_vs_serial"] >= 2.0


def test_ecripse_backends(bench_scale):
    config = bench_scale["config"]

    rows: dict[str, dict] = {}
    for backend in BACKENDS:
        setup = paper_setup(vdd=0.5, alpha=0.3)
        estimator = EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model, seed=0,
            config=config.with_(execution=_execution(backend, 250)))
        t0 = time.perf_counter()
        result = estimator.run(
            target_relative_error=bench_scale["loose_rel_err"])
        rows[backend] = {
            "wall_time_s": time.perf_counter() - t0,
            "pfail": result.pfail,
            "n_simulations": result.n_simulations,
            "n_fallbacks": result.metadata["execution"]["n_fallbacks"],
            "device_model_evals":
                result.metadata["perf"]["device_model_evals"],
        }
    _report("ecripse", rows)

    assert rows["thread"]["pfail"] == rows["serial"]["pfail"]
    assert rows["process"]["pfail"] == rows["serial"]["pfail"]
    assert len({r["n_simulations"] for r in rows.values()}) == 1
    assert rows["serial"]["device_model_evals"] > 0
    assert len({r["device_model_evals"] for r in rows.values()}) == 1
