"""Microbenchmarks of the classifier stack.

The classifier must be orders of magnitude cheaper than transistor-level
simulation for the paper's accounting to make sense; these benches measure
the degree-4 polynomial SVM's training and prediction costs at the sizes
ECRIPSE actually uses.
"""

import numpy as np
import pytest

from repro.ml.blockade import ClassifierBlockade


def boundary_dataset(n, seed=0):
    rng = np.random.default_rng(seed)
    x = rng.standard_normal((n, 6)) * 2.0
    labels = np.sum(x * x, axis=1) > 12.0
    return x, labels


@pytest.fixture(scope="module")
def trained_blockade():
    x, y = boundary_dataset(4000)
    blockade = ClassifierBlockade(dim=6, degree=4)
    blockade.train(x, y)
    return blockade


def test_train_degree4_on_4k_samples(benchmark):
    x, y = boundary_dataset(4000)

    def train():
        blockade = ClassifierBlockade(dim=6, degree=4)
        blockade.train(x, y)
        return blockade

    blockade = benchmark(train)
    assert blockade.is_trained


def test_predict_10k_points(benchmark, trained_blockade):
    x, _ = boundary_dataset(10_000, seed=1)
    prediction = benchmark(trained_blockade.predict, x)
    assert prediction.labels.shape == (10_000,)


def test_incremental_update(benchmark, trained_blockade):
    x, y = boundary_dataset(500, seed=2)
    benchmark.pedantic(trained_blockade.update, args=(x, y),
                       kwargs={"force_retrain": True}, rounds=3,
                       iterations=1)
    assert trained_blockade.is_trained
