"""Motivation benchmark -- time-domain RTN analysis vs the static path.

The paper's Section I dismisses time-domain RTN methodologies ([2], [3])
for yield work "due to their very high computational cost".  This bench
quantifies that cost on our substrate: one pulse-accurate dynamic read
(with telegraph-driven threshold shifts) against one vectorised butterfly
evaluation, and checks that the two criteria agree on clear cases.
"""

import time

import numpy as np
from conftest import run_once

from repro.config import TABLE_I
from repro.rtn.transient import RtnTransientDriver
from repro.sram.cell import SramCell
from repro.sram.dynamic import DynamicReadSimulator, device_shift_vector
from repro.sram.evaluator import CellEvaluator
from repro.variability.space import VariabilitySpace


def test_dynamic_read_vs_static_indicator(benchmark):
    cell = SramCell()
    space = VariabilitySpace.from_pelgrom(TABLE_I.avth_mv_nm,
                                          TABLE_I.geometry)
    simulator = DynamicReadSimulator(cell, pulse_width_s=1e-9, dt_s=5e-11,
                                     settle_s=1e-9)
    driver = RtnTransientDriver(TABLE_I, alpha=0.0, duration=10.0,
                                time_scale=1e9, seed=1)

    outcome = run_once(benchmark, simulator.simulate, rtn_driver=driver)
    assert not outcome.flipped  # nominal cell survives

    # cost comparison: batch of 1000 static indicator evaluations
    evaluator = CellEvaluator(cell, space)
    x = np.random.default_rng(0).standard_normal((1000, 6))
    start = time.perf_counter()
    evaluator.cell_margin(x)
    static_per_cell = (time.perf_counter() - start) / 1000.0

    dynamic_cost = benchmark.stats.stats.mean
    ratio = dynamic_cost / static_per_cell
    print(f"\none dynamic read: {dynamic_cost * 1e3:.0f} ms; "
          f"one static evaluation: {static_per_cell * 1e3:.2f} ms; "
          f"ratio ~{ratio:.0f}x")
    # The gap that motivates the paper: time-domain is orders of
    # magnitude more expensive per sample.
    assert ratio > 30


def test_criteria_agree_on_clear_cases(benchmark):
    cell = SramCell()
    space = VariabilitySpace.from_pelgrom(TABLE_I.avth_mv_nm,
                                          TABLE_I.geometry)
    simulator = DynamicReadSimulator(cell, pulse_width_s=1e-9, dt_s=5e-11,
                                     settle_s=1e-9)
    evaluator = CellEvaluator(cell, space)

    bad = device_shift_vector(D1=250.0, L2=200.0)

    def both():
        dynamic_flip = simulator.simulate(delta_vth=bad).flipped
        static_fail = evaluator.lobe0_margin(
            space.to_whitened(bad)[None, :])[0] < 0
        return dynamic_flip, static_fail

    dynamic_flip, static_fail = run_once(benchmark, both)
    assert dynamic_flip
    assert static_fail
