"""Shared configuration for the benchmark harness.

Every figure/table of the paper has one benchmark module.  By default the
benches run *scaled-down* budgets so the whole suite finishes in minutes;
set ``ECRIPSE_BENCH_FULL=1`` to run paper-scale budgets (tight 1-2 %
relative errors, 1e6-sample naive MC) -- expect a long run.

The shapes the paper reports (who wins, roughly by what factor, where the
minima sit) are asserted; absolute wall-clock numbers are reported by
pytest-benchmark but not asserted.
"""

from __future__ import annotations

import os

import pytest

from repro.core.ecripse import EcripseConfig

FULL = os.environ.get("ECRIPSE_BENCH_FULL", "") not in ("", "0")


@pytest.fixture(scope="session")
def bench_scale() -> dict:
    """Budget knobs for the current scale."""
    if FULL:
        return {
            "target_rel_err": 0.01,
            "loose_rel_err": 0.05,
            "naive_samples": 1_000_000,
            "max_conventional_sims": 2_000_000,
            "alphas": tuple(i / 10 for i in range(11)),
            "config": EcripseConfig(),
        }
    return {
        "target_rel_err": 0.05,
        "loose_rel_err": 0.10,
        "naive_samples": 60_000,
        "max_conventional_sims": 200_000,
        "alphas": (0.0, 0.3, 0.5, 0.7, 1.0),
        "config": EcripseConfig(n_particles=60, n_iterations=8,
                                k_train=160, stage2_batch=1500,
                                max_statistical_samples=400_000),
    }


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Estimator runs are expensive and internally averaged, so repeated
    benchmark rounds would only burn time.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1,
                              iterations=1, warmup_rounds=0)
