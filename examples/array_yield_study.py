"""From cell failure probability to cache yield.

Run with::

    python examples/array_yield_study.py

Takes the paper's kind of cell-level numbers (with and without RTN) and
propagates them to array level for a few cache sizes -- the "tens of mega
bytes of on-chip cache" motivation of the paper's introduction -- with and
without the standard protection schemes.
"""

from repro.analysis.array_yield import (
    CacheSpec,
    array_failure_probability,
    expected_failures,
    required_cell_pfail,
)
from repro.analysis.tables import format_table


def main() -> None:
    # Cell-level inputs of the kind the estimators produce (see
    # EXPERIMENTS.md): conventional RDF-only analysis vs RTN-aware.
    pfail_rdf_only = 1.33e-4 / 1000    # a margin-revised design point
    pfail_with_rtn = 6 * pfail_rdf_only  # the paper's ~6x RTN penalty

    rows = []
    for megabytes in (1, 8, 32):
        cells = megabytes * 2**20 * 8
        rows.append([
            f"{megabytes} MiB",
            f"{expected_failures(pfail_rdf_only, cells):.1f}",
            f"{expected_failures(pfail_with_rtn, cells):.1f}",
            f"{array_failure_probability(pfail_with_rtn, cells):.2%}",
        ])
    print(format_table(
        ["cache", "E[fails] (no RTN est.)", "E[fails] (RTN-aware)",
         "P(any fail), RTN-aware"],
        rows, title="Why the RTN-blind estimate is dangerous"))

    print()
    spec = CacheSpec(capacity_bits=8 * 2**20 * 8, rows=8192, spare_rows=8)
    report = spec.yield_report(pfail_with_rtn)
    print(format_table(
        ["protection", "array yield"],
        [[name, f"{value:.4%}"] for name, value in report.items()],
        title="8 MiB cache with the RTN-aware cell Pfail"))

    print()
    for target in (0.99, 0.999):
        needed = required_cell_pfail(target, 32 * 2**20 * 8)
        print(f"cell Pfail needed for {target:.1%} yield of an "
              f"unprotected 32 MiB array: {needed:.1e}")
    print("\n(naive Monte Carlo at these levels needs >1e10 samples; "
          "this is the paper's case for importance sampling.)")


if __name__ == "__main__":
    main()
