"""Duty-ratio study: how the data a cell stores changes its failure rate.

Run with::

    python examples/bias_sweep_study.py

Reproduces a scaled-down Fig. 8: sweeps the stored-data duty ratio alpha,
sharing the boundary search and classifier across bias points, and prints
the resulting curve with an ASCII sparkline.  The minimum at alpha = 0.5
is the paper's design takeaway -- cells that spend all their time on one
value are the reliability bottleneck of a cache.
"""

import numpy as np

from repro import BiasSweep, EcripseConfig, paper_setup
from repro.analysis.tables import format_table

BARS = " .:-=+*#%@"


def sparkline(values) -> str:
    values = np.asarray(values, dtype=float)
    scaled = (values - values.min()) / max(float(np.ptp(values)), 1e-30)
    return "".join(BARS[int(s * (len(BARS) - 1))] for s in scaled)


def main() -> None:
    setup = paper_setup(alpha=0.5)
    config = EcripseConfig(n_particles=60, n_iterations=8,
                           stage2_batch=1500,
                           max_statistical_samples=300_000)
    sweep = BiasSweep(setup.space, setup.indicator, setup.conditions,
                      config=config, seed=42)
    alphas = np.round(np.linspace(0.0, 1.0, 9), 3)
    result = sweep.run(alphas, target_relative_error=0.08)

    _, pfail, ci = result.pfail_curve()
    rows = [[f"{a:.3f}", f"{p:.3e}", f"{c:.1e}"]
            for a, p, c in zip(alphas, pfail, ci)]
    print(format_table(["duty ratio", "Pfail", "CI95"], rows,
                       title="Failure probability vs stored-data duty"))
    print()
    print("shape: ", sparkline(pfail))
    worst_alpha, worst = result.worst_case()
    print(f"worst case: alpha = {worst_alpha} "
          f"with Pfail = {worst.pfail:.3e}")
    print(f"total simulations for the whole sweep: "
          f"{result.total_simulations}")


if __name__ == "__main__":
    main()
