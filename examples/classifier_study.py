"""Classifier study: watch the SVM blockade learn the failure boundary.

Run with::

    python examples/classifier_study.py

Trains the degree-4 polynomial SVM on progressively larger labelled sets
drawn around the failure boundary of the Table-I cell, reporting accuracy
and the implied simulation savings -- the trade the paper's Section III-B
is built on.
"""

import numpy as np

from repro import paper_setup
from repro.analysis.tables import format_table
from repro.ml.blockade import ClassifierBlockade


def boundary_shell(rng, n, radius=3.5, thickness=1.5):
    direction = rng.standard_normal((n, 6))
    direction /= np.linalg.norm(direction, axis=1, keepdims=True)
    return direction * rng.uniform(radius - thickness, radius + thickness,
                                   (n, 1))


def main() -> None:
    setup = paper_setup()
    rng = np.random.default_rng(0)

    x_test = boundary_shell(rng, 4000)
    y_test = setup.indicator.evaluate(x_test)
    print(f"test shell: {int(y_test.sum())} failures / {len(y_test)} "
          f"points\n")

    blockade = ClassifierBlockade(dim=6, degree=4, band_quantile=0.1)
    rows = []
    for budget in (250, 500, 1000, 2000, 4000):
        x_new = boundary_shell(rng, budget - blockade.n_training_samples)
        blockade.update(x_new, setup.indicator.evaluate(x_new),
                        force_retrain=True)

        prediction = blockade.predict(x_test)
        trusted = ~prediction.uncertain
        accuracy = float(np.mean(
            prediction.labels[trusted] == y_test[trusted]))
        rows.append([
            blockade.n_training_samples,
            f"{accuracy:.4f}",
            f"{prediction.uncertain.mean():.1%}",
            f"{1.0 / max(prediction.uncertain.mean(), 1e-3):.0f}x",
        ])
    print(format_table(
        ["labelled samples", "out-of-band accuracy", "band fraction",
         "simulation saving"],
        rows, title="Degree-4 SVM blockade vs training budget"))
    print("\n'simulation saving' = only band points need transistor-level "
          "simulation; everything else is classified for free.")


if __name__ == "__main__":
    main()
