"""Quickstart: estimate the RTN-induced failure probability of the
paper's SRAM cell in a few lines.

Run with::

    python examples/quickstart.py

Builds the Table-I cell, estimates the RDF-only failure probability, then
turns RTN on at a duty ratio of 0.3 and compares -- the gap is the paper's
headline observation (conventional, RTN-blind analysis is optimistic).
"""

from repro import EcripseEstimator, paper_setup


def main() -> None:
    # --- RDF only (what conventional yield analysis computes) ----------
    setup = paper_setup(vdd=0.7)
    estimator = EcripseEstimator(setup.space, setup.indicator,
                                 setup.rtn_model, seed=0)
    rdf_only = estimator.run(target_relative_error=0.05)
    print("RDF only          :", rdf_only.summary())

    # --- RDF + RTN at duty ratio 0.3 ------------------------------------
    # The boundary search and the trained classifier carry over: the
    # deterministic failure region is the same, only the noise changes.
    rtn_setup = setup.with_alpha(0.3)
    rtn_estimator = EcripseEstimator(
        rtn_setup.space, rtn_setup.indicator, rtn_setup.rtn_model,
        seed=1, initial_boundary=estimator.boundary,
        classifier=estimator.blockade)
    with_rtn = rtn_estimator.run(target_relative_error=0.05)
    print("RDF + RTN (a=0.3) :", with_rtn.summary())

    penalty = with_rtn.pfail / rdf_only.pfail
    print(f"\nRTN worsens the failure probability by {penalty:.1f}x "
          f"(the paper reports ~6x at its worst bias condition).")
    print(f"Total transistor-level simulations: "
          f"{rdf_only.n_simulations + with_rtn.n_simulations}")


if __name__ == "__main__":
    main()
