"""RTN physics demo: telegraph waveforms and trap statistics.

Run with::

    python examples/rtn_waveforms.py

Simulates single-trap telegraph noise in the time domain, validates the
stationary occupancy against the closed form the estimators use, and
prints the per-device trap statistics of the Table-I cell at a few duty
ratios -- the numbers that drive Fig. 8's U-shape.
"""

import numpy as np

from repro.analysis.tables import format_table
from repro.config import DEVICE_ORDER, TABLE_I
from repro.rtn.duty import device_on_fractions
from repro.rtn.telegraph import TelegraphProcess, simulate_switched_telegraph
from repro.rtn.traps import TrapEnsemble, stationary_occupancy


def waveform_demo() -> None:
    tc = TABLE_I.time_constants
    proc = TelegraphProcess(tau_c=tc.tau_c(0.5), tau_e=tc.tau_e(0.5))
    trace = proc.simulate(duration=20.0, seed=7)

    # Render the first 20 time units as a square wave.
    samples = trace.state_at(np.linspace(0.0, 20.0, 100))
    print("single-trap telegraph waveform (duty 0.5 time constants):")
    print("  high:", "".join("#" if s else " " for s in samples))
    print("  low :", "".join(" " if s else "#" for s in samples))
    print(f"  measured occupancy {trace.occupancy():.3f} vs "
          f"stationary {proc.stationary_occupancy:.3f}")


def switched_bias_demo() -> None:
    tc = TABLE_I.time_constants
    print("\nswitched-bias occupancy vs the duty-averaged closed form "
          "(paper eq. 7-8):")
    for alpha in (0.0, 0.3, 0.7, 1.0):
        trace = simulate_switched_telegraph(tc, alpha, period=2e-3,
                                            n_periods=100_000, seed=1)
        expected = stationary_occupancy(tc, alpha)
        print(f"  duty {alpha:.1f}: simulated {trace.occupancy():.3f}, "
              f"closed form {expected:.3f}")


def cell_statistics() -> None:
    print("\nper-device trap statistics of the Table-I cell:")
    for alpha in (0.0, 0.5, 1.0):
        ensemble = TrapEnsemble.for_conditions(
            TABLE_I, device_on_fractions(alpha))
        rows = [[name,
                 f"{ensemble.occupancy[i]:.3f}",
                 f"{ensemble.poisson_rates[i]:.2f}",
                 f"{ensemble.mean_shift_v[i] * 1e3:.1f}"]
                for i, name in enumerate(DEVICE_ORDER)]
        print()
        print(format_table(
            ["device", "occupancy", "E[occupied traps]",
             "E[dVth] (mV)"],
            rows, title=f"duty ratio alpha = {alpha}"))


def main() -> None:
    waveform_demo()
    switched_bias_demo()
    cell_statistics()


if __name__ == "__main__":
    main()
