"""Which transistor kills the cell?  Failure-region sensitivity study.

Run with::

    python examples/sensitivity_study.py

Runs a quick ECRIPSE estimation, then mines its stage-1 particle cloud --
which *is* a map of the failure region -- for per-device criticality, and
cross-checks the ranking against local margin gradients.  The answer (the
drivers dominate read failures, the access devices barely matter) is the
kind of design feedback a plain P_fail number hides.
"""

import numpy as np

from repro import EcripseConfig, EcripseEstimator, paper_setup
from repro.analysis.sensitivity import (
    device_criticality,
    margin_gradient,
    rank_devices,
)
from repro.analysis.tables import format_table


def main() -> None:
    setup = paper_setup(vdd=0.7)
    config = EcripseConfig(n_particles=80, n_iterations=8,
                           stage2_batch=1500,
                           max_statistical_samples=150_000)
    estimator = EcripseEstimator(setup.space, setup.indicator,
                                 setup.rtn_model, config=config, seed=3)
    result = estimator.run(target_relative_error=0.10)
    print(result.summary())

    particles = estimator.filter_bank.positions()
    crit = device_criticality(particles, names=setup.space.names)
    rows = [[name,
             f"{crit['mean_shift'][i]:+.2f}",
             f"{crit['rms'][i]:.2f}",
             f"{crit['criticality'][i]:.1%}"]
            for i, name in enumerate(crit["names"])]
    print()
    print(format_table(
        ["device", "mean shift [sigma]", "rms [sigma]", "criticality"],
        rows, title="Failure-cloud statistics (stage-1 particles)"))

    print("\nranking:", " > ".join(
        f"{name} ({value:.0%})" for name, value in
        rank_devices(crit, top=4)))

    # Cross-check with local margin gradients at the nominal point.
    grad = margin_gradient(setup.evaluator.cell_margin, np.zeros(6),
                           step=0.25)
    rows = [[name, f"{grad[i] * 1e3:+.1f}"]
            for i, name in enumerate(setup.space.names)]
    print()
    print(format_table(
        ["device", "dRNM/dx [mV/sigma]"],
        rows, title="Local margin gradients at the nominal corner"))
    print("\n(negative = weakening this device costs read margin)")


if __name__ == "__main__":
    main()
