"""Circuit-level exploration with the built-in DC engine.

Run with::

    python examples/spice_playground.py

Shows the simulation substrate on its own: inverter transfer curves from
the generic MNA solver, the SRAM butterfly under read bias, and how a
threshold shift on one driver collapses one lobe of the butterfly (the
exact mechanism behind every "failure" the estimators count).
"""

import numpy as np

from repro.config import DEVICE_ORDER
from repro.spice import (
    Circuit,
    Mosfet,
    MosfetModel,
    NMOS_PTM16,
    PMOS_PTM16,
    VoltageSource,
    dc_sweep,
)
from repro.sram.butterfly import ReadButterflySolver
from repro.sram.cell import SramCell
from repro.sram.margins import lobe_margins


def ascii_plot(xs, ys, width=61, height=16, title=""):
    """Minimal terminal scatter plot."""
    grid = [[" "] * width for _ in range(height)]
    x0, x1 = min(xs), max(xs)
    y0, y1 = 0.0, max(ys) * 1.05
    for x, y in zip(xs, ys):
        col = int((x - x0) / (x1 - x0 + 1e-12) * (width - 1))
        row = height - 1 - int((y - y0) / (y1 - y0 + 1e-12) * (height - 1))
        grid[min(max(row, 0), height - 1)][col] = "*"
    print(title)
    for row in grid:
        print("|" + "".join(row))
    print("+" + "-" * width)


def inverter_vtc() -> None:
    nmos = MosfetModel(NMOS_PTM16, 30.0, 16.0)
    pmos = MosfetModel(PMOS_PTM16, 60.0, 16.0)
    ckt = Circuit("inverter")
    ckt.add(VoltageSource("vdd", "vdd", "0", 0.7))
    ckt.add(VoltageSource("vin", "in", "0", 0.0))
    ckt.add(Mosfet("mp", "out", "in", "vdd", pmos))
    ckt.add(Mosfet("mn", "out", "in", "0", nmos))
    result = dc_sweep(ckt, "vin", np.linspace(0, 0.7, 41))
    ascii_plot(result.sweep_values, result.curve("out"),
               title="Inverter VTC at VDD = 0.7 V (MNA engine)")


def butterfly_demo() -> None:
    cell = SramCell()
    solver = ReadButterflySolver(cell, grid_points=61)

    nominal = solver.solve(np.zeros((1, 6)))
    rnm0, rnm1 = lobe_margins(nominal)
    print(f"\nnominal cell under read bias: "
          f"RNM lobes = {rnm0[0] * 1e3:.1f} mV / {rnm1[0] * 1e3:.1f} mV")

    # Weaken driver D1 by 150 mV: the stored-"0" lobe collapses.
    shifts = np.zeros((1, 6))
    shifts[0, DEVICE_ORDER.index("D1")] = 0.15
    shifts[0, DEVICE_ORDER.index("L2")] = 0.10
    defective = solver.solve(shifts)
    rnm0, rnm1 = lobe_margins(defective)
    print(f"D1 +150 mV, L2 +100 mV:       "
          f"RNM lobes = {rnm0[0] * 1e3:.1f} mV / {rnm1[0] * 1e3:.1f} mV")
    if rnm0[0] < 0:
        print("  -> the stored-'0' eye has collapsed: reading this cell "
              "flips it (read failure).")

    ascii_plot(nominal.grid, nominal.vtc_b[0],
               title="\nHalf-cell read VTC, nominal (Q -> QB)")
    ascii_plot(defective.grid, defective.vtc_b[0],
               title="Half-cell read VTC with weakened D2 side input "
                     "(defective)")


def main() -> None:
    inverter_vtc()
    butterfly_demo()


if __name__ == "__main__":
    main()
