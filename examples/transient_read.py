"""Time-domain read of an SRAM cell with live telegraph noise.

Run with::

    python examples/transient_read.py

Simulates pulse-accurate reads of the Table-I cell with the transient
engine: storage nodes with explicit capacitance, a real wordline pulse,
and per-trap telegraph processes moving the device thresholds during the
read -- the expensive reference methodology (paper references [2], [3])
whose cost motivates ECRIPSE.  Prints the node waveforms as ASCII and the
per-sample cost comparison against the static butterfly evaluation.
"""

import time

import numpy as np

from repro.config import TABLE_I
from repro.rtn.transient import RtnTransientDriver
from repro.sram.cell import SramCell
from repro.sram.dynamic import DynamicReadSimulator, device_shift_vector
from repro.sram.evaluator import CellEvaluator
from repro.variability.space import VariabilitySpace


def ascii_wave(times, wave, vdd, width=72, label=""):
    picks = np.linspace(0, len(times) - 1, width).astype(int)
    levels = " .:-=+*#%@"
    chars = [levels[int(np.clip(wave[i] / vdd, 0, 1) * (len(levels) - 1))]
             for i in picks]
    print(f"{label:>4s} |{''.join(chars)}|")


def main() -> None:
    cell = SramCell()
    simulator = DynamicReadSimulator(cell)

    print("=== nominal cell, read of a stored '0' ===")
    outcome = simulator.simulate()
    result = outcome.result
    ascii_wave(result.times, result.waveform("q"), cell.vdd, label="Q")
    ascii_wave(result.times, result.waveform("qb"), cell.vdd, label="QB")
    print(f"flipped: {outcome.flipped}; "
          f"peak read disturb on Q: {outcome.peak_disturb * 1e3:.0f} mV")

    print("\n=== same read with telegraph noise on every trap ===")
    driver = RtnTransientDriver(TABLE_I, alpha=0.0, duration=20.0,
                                time_scale=1e9, seed=42)
    print("traps per device:", driver.trap_counts())
    outcome = simulator.simulate(rtn_driver=driver)
    ascii_wave(outcome.result.times, outcome.result.waveform("q"),
               cell.vdd, label="Q")
    print(f"flipped: {outcome.flipped}; "
          f"peak disturb: {outcome.peak_disturb * 1e3:.0f} mV")

    print("\n=== a marginal cell pushed over the edge ===")
    shifts = device_shift_vector(D1=250.0, L2=200.0)
    outcome = simulator.simulate(delta_vth=shifts)
    ascii_wave(outcome.result.times, outcome.result.waveform("q"),
               cell.vdd, label="Q")
    ascii_wave(outcome.result.times, outcome.result.waveform("qb"),
               cell.vdd, label="QB")
    print(f"flipped: {outcome.flipped}  (the read destroyed the data)")

    print("\n=== cost: why the paper avoids time-domain yield analysis ===")
    start = time.perf_counter()
    simulator.simulate()
    dynamic_s = time.perf_counter() - start

    space = VariabilitySpace.from_pelgrom(TABLE_I.avth_mv_nm,
                                          TABLE_I.geometry)
    evaluator = CellEvaluator(cell, space)
    x = np.random.default_rng(0).standard_normal((1000, 6))
    start = time.perf_counter()
    evaluator.cell_margin(x)
    static_s = (time.perf_counter() - start) / 1000.0
    print(f"one dynamic read:        {dynamic_s * 1e3:7.1f} ms")
    print(f"one static evaluation:   {static_s * 1e3:7.2f} ms")
    print(f"ratio:                   {dynamic_s / static_s:7.0f}x  "
          f"(per Monte-Carlo sample)")


if __name__ == "__main__":
    main()
