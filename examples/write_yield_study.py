"""Write-ability yield: a failure mode naive Monte Carlo cannot touch.

Run with::

    python examples/write_yield_study.py

The Table-I cell's write margin is huge at nominal supply (z ~ 14 sigma),
so write failures only become observable at aggressively scaled supplies
-- and even there the probability is far below anything naive MC can
resolve.  This example points ECRIPSE at the write-failure indicator
(same estimator, different margin) and estimates a ~1e-10-class
probability from a few thousand transistor-level simulations, then shows
what that means for a cache-sized array.
"""

from repro import EcripseConfig, EcripseEstimator, paper_setup
from repro.analysis.array_yield import array_failure_probability
from repro.rtn import ZeroRtnModel
from repro.sram import WriteFailure


def main() -> None:
    vdd = 0.35
    setup = paper_setup(vdd=vdd)
    indicator = WriteFailure(setup.evaluator)
    null = ZeroRtnModel(setup.space)

    # Write failures live ~7-9 sigma out: widen the boundary search.
    config = EcripseConfig(boundary_r_max=14.0, n_boundary_directions=96,
                           max_statistical_samples=600_000)
    estimator = EcripseEstimator(setup.space, indicator, null,
                                 config=config, seed=9)
    result = estimator.run(target_relative_error=0.10)
    print(f"write failure probability at VDD = {vdd} V:")
    print(" ", result.summary())

    n = result.pfail
    print(f"\nnaive MC would need ~{10 / n:.1e} samples for 10 failures;")
    print(f"ECRIPSE spent {result.n_simulations} simulations.")

    cells = 8 * 2**20 * 8  # an 8 MiB array
    print(f"\nP(any write-limited cell in an 8 MiB array) = "
          f"{array_failure_probability(n, cells):.2%}")


if __name__ == "__main__":
    main()
