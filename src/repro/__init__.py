"""ECRIPSE: RTN-induced SRAM failure-probability estimation.

Reproduction of Awano, Hiromoto & Sato, *ECRIPSE: An Efficient Method for
Calculating RTN-Induced Failure Probability of an SRAM Cell*, DATE 2015.

Quick start::

    from repro import paper_setup, EcripseEstimator

    setup = paper_setup(vdd=0.7, alpha=0.5)     # Table-I cell + RTN model
    estimator = EcripseEstimator(setup.space, setup.indicator,
                                 setup.rtn_model, seed=0)
    result = estimator.run(target_relative_error=0.05)
    print(result.summary())

Packages:

* :mod:`repro.spice` -- transistor compact model and DC circuit solver;
* :mod:`repro.sram` -- the 6T cell, butterfly curves, noise margins;
* :mod:`repro.variability` -- Pelgrom mismatch, whitened spaces;
* :mod:`repro.rtn` -- RTN trap statistics and samplers;
* :mod:`repro.ml` -- polynomial-feature linear SVM and blockade;
* :mod:`repro.core` -- the estimators (ECRIPSE + baselines);
* :mod:`repro.runtime` -- parallel execution engine (serial/thread/process);
* :mod:`repro.analysis` -- convergence/speedup analysis, tables;
* :mod:`repro.experiments` -- the paper's figures as runnable harnesses.
"""

from __future__ import annotations

from repro.config import (
    DEVICE_ORDER,
    MIRROR_PERMUTATION,
    TABLE_I,
    CellGeometry,
    PaperConditions,
    RtnTimeConstants,
)
from repro.core import (
    BiasSweep,
    ConventionalSisEstimator,
    CrossEntropyEstimator,
    EcripseConfig,
    EcripseEstimator,
    FailureEstimate,
    MeanShiftEstimator,
    NaiveMonteCarlo,
    StatisticalBlockadeEstimator,
)
from repro.experiments.setup import ExperimentSetup, paper_setup
from repro.rtn import RtnModel, ZeroRtnModel
from repro.runtime import ExecutionConfig, Executor, RunMetrics
from repro.sram import CellEvaluator, SramCell
from repro.variability import VariabilitySpace

__version__ = "1.0.0"

__all__ = [
    "DEVICE_ORDER",
    "MIRROR_PERMUTATION",
    "TABLE_I",
    "CellGeometry",
    "PaperConditions",
    "RtnTimeConstants",
    "BiasSweep",
    "ConventionalSisEstimator",
    "CrossEntropyEstimator",
    "EcripseConfig",
    "EcripseEstimator",
    "FailureEstimate",
    "MeanShiftEstimator",
    "NaiveMonteCarlo",
    "StatisticalBlockadeEstimator",
    "ExecutionConfig",
    "Executor",
    "RunMetrics",
    "ExperimentSetup",
    "paper_setup",
    "RtnModel",
    "ZeroRtnModel",
    "CellEvaluator",
    "SramCell",
    "VariabilitySpace",
    "__version__",
]
