"""Statistics, convergence analysis, speedups and report tables."""

from __future__ import annotations

from repro.analysis.stats import (
    wilson_interval,
    binomial_ci_halfwidth,
    weighted_mean_ci,
)
from repro.analysis.convergence import (
    relative_error_curve,
    simulations_to_accuracy,
    speedup_at_accuracy,
)
from repro.analysis.speedup import SpeedupReport, compare_runs
from repro.analysis.tables import format_table
from repro.analysis.array_yield import (
    CacheSpec,
    array_failure_probability,
    array_failure_with_ecc,
    array_failure_with_row_redundancy,
    expected_failures,
    failures_quantile,
    required_cell_pfail,
    yield_with_ecc,
    yield_with_row_redundancy,
)
from repro.analysis.ecc import (
    ArrayConfig,
    ArrayDecision,
    ArrayReport,
    EccScheme,
    SchemeResult,
    ScrubPoint,
    analyze_array,
    annual_error_count,
    bit_upset_rate,
    combined_bit_error_probability,
    get_scheme,
    log1mexp,
    log_binom_sf,
    max_capacity_under_fit,
    parse_capacity,
    raw_fit,
    required_cell_pfail_for_policy,
    residual_error_fraction,
    residual_fit,
    soft_error_probability,
)
from repro.analysis.sensitivity import (
    device_criticality,
    margin_gradient,
    rank_devices,
)
from repro.analysis.persistence import (
    estimate_from_dict,
    estimate_to_dict,
    load_estimate,
    save_estimate,
)

__all__ = [
    "wilson_interval",
    "binomial_ci_halfwidth",
    "weighted_mean_ci",
    "relative_error_curve",
    "simulations_to_accuracy",
    "speedup_at_accuracy",
    "SpeedupReport",
    "compare_runs",
    "format_table",
    "estimate_from_dict",
    "estimate_to_dict",
    "load_estimate",
    "save_estimate",
    "CacheSpec",
    "array_failure_probability",
    "array_failure_with_ecc",
    "array_failure_with_row_redundancy",
    "expected_failures",
    "failures_quantile",
    "required_cell_pfail",
    "yield_with_ecc",
    "yield_with_row_redundancy",
    "ArrayConfig",
    "ArrayDecision",
    "ArrayReport",
    "EccScheme",
    "SchemeResult",
    "ScrubPoint",
    "analyze_array",
    "annual_error_count",
    "bit_upset_rate",
    "combined_bit_error_probability",
    "get_scheme",
    "log1mexp",
    "log_binom_sf",
    "max_capacity_under_fit",
    "parse_capacity",
    "raw_fit",
    "required_cell_pfail_for_policy",
    "residual_error_fraction",
    "residual_fit",
    "soft_error_probability",
    "device_criticality",
    "margin_gradient",
    "rank_devices",
]
