"""Array-level yield from cell-level failure probability.

The paper's introduction motivates the 1e-8-and-below cell failure
probabilities with on-chip caches of "tens of mega bytes": even a tiny
per-cell probability multiplies across millions of cells.  This module
provides that last conversion step:

* plain arrays -- every cell must work;
* row-redundancy repair -- a handful of spare rows absorb the worst rows;
* SECDED-style ECC -- each word tolerates one bad cell.

Everything is exact binomial/Poisson arithmetic, no sampling, and the
survival paths run in log space (``repro.analysis.ecc`` primitives),
so the functions are safe to call with the estimator outputs'
confidence bounds -- down to cell pfail ~ 1e-15 at gigabit geometries
-- without the yield silently saturating to 1.0.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np
from scipy.stats import poisson

from repro.analysis.ecc import log1mexp, log_binom_sf


def _check_probability(p: float) -> float:
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {p}")
    return float(p)


def array_failure_probability(cell_pfail: float, n_cells: int) -> float:
    """P(any of ``n_cells`` fails) = 1 - (1 - p)^N, computed stably.

    >>> round(array_failure_probability(1e-9, 1_000_000), 4)
    0.001
    """
    p = _check_probability(cell_pfail)
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    if p >= 1.0:
        return 1.0
    return float(-np.expm1(n_cells * np.log1p(-p)))


def yield_with_row_redundancy(cell_pfail: float, rows: int,
                              cells_per_row: int, spare_rows: int) -> float:
    """Array yield when up to ``spare_rows`` defective rows can be
    repaired.

    A row is defective if any of its cells fails; the array survives when
    at most ``spare_rows`` rows are defective (binomial over rows).
    """
    p = _check_probability(cell_pfail)
    if rows < 1 or cells_per_row < 1:
        raise ValueError("rows and cells_per_row must be >= 1")
    if spare_rows < 0:
        raise ValueError("spare_rows must be >= 0")
    return float(-math.expm1(_log_redundancy_failure(
        p, rows, cells_per_row, spare_rows)))


def array_failure_with_row_redundancy(cell_pfail: float, rows: int,
                                      cells_per_row: int,
                                      spare_rows: int) -> float:
    """``1 - yield_with_row_redundancy``, without the cancellation.

    At small pfail the yield rounds to 1.0 and the failure information
    is gone; this path keeps it (log-space binomial survival).
    """
    return float(math.exp(_log_redundancy_failure(
        _check_probability(cell_pfail), rows, cells_per_row,
        spare_rows)))


def _log_redundancy_failure(p: float, rows: int, cells_per_row: int,
                            spare_rows: int) -> float:
    if rows < 1 or cells_per_row < 1:
        raise ValueError("rows and cells_per_row must be >= 1")
    if spare_rows < 0:
        raise ValueError("spare_rows must be >= 0")
    row_fail = array_failure_probability(p, cells_per_row)
    return log_binom_sf(spare_rows, rows, row_fail)


def yield_with_ecc(cell_pfail: float, words: int, bits_per_word: int,
                   correctable_bits: int = 1) -> float:
    """Array yield when each word corrects up to ``correctable_bits``.

    A word fails when more than ``correctable_bits`` of its cells fail;
    the array survives when no word fails.
    """
    p = _check_probability(cell_pfail)
    if words < 1 or bits_per_word < 1:
        raise ValueError("words and bits_per_word must be >= 1")
    if correctable_bits < 0:
        raise ValueError("correctable_bits must be >= 0")
    return float(math.exp(_log_ecc_survival(p, words, bits_per_word,
                                            correctable_bits)))


def array_failure_with_ecc(cell_pfail: float, words: int,
                           bits_per_word: int,
                           correctable_bits: int = 1) -> float:
    """``1 - yield_with_ecc``, computed failure-first so it stays
    meaningful when the yield is within machine epsilon of 1.0."""
    p = _check_probability(cell_pfail)
    if words < 1 or bits_per_word < 1:
        raise ValueError("words and bits_per_word must be >= 1")
    if correctable_bits < 0:
        raise ValueError("correctable_bits must be >= 0")
    return float(-math.expm1(_log_ecc_survival(
        p, words, bits_per_word, correctable_bits)))


def _log_ecc_survival(p: float, words: int, bits_per_word: int,
                      correctable_bits: int) -> float:
    log_word_fail = log_binom_sf(correctable_bits, bits_per_word, p)
    return words * log1mexp(log_word_fail)


def required_cell_pfail(array_yield_target: float, n_cells: int) -> float:
    """Cell failure probability needed for a plain array to hit a yield
    target -- the spec the paper says makes naive MC hopeless.

    >>> p = required_cell_pfail(0.99, 64 * 2**20 * 8)   # 64 MiB of cells
    >>> p < 1e-10
    True
    """
    if not 0.0 < array_yield_target < 1.0:
        raise ValueError("yield target must lie in (0, 1)")
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    return float(-np.expm1(np.log(array_yield_target) / n_cells))


@dataclass(frozen=True)
class CacheSpec:
    """A cache organisation for yield studies.

    Attributes
    ----------
    capacity_bits:
        Total data bits.
    word_bits:
        ECC word size (data + check bits all count as cells).
    rows, spare_rows:
        Physical row organisation for redundancy repair.
    """

    capacity_bits: int
    word_bits: int = 72
    rows: int = 8192
    spare_rows: int = 8

    def __post_init__(self):
        if self.capacity_bits < 1 or self.word_bits < 1 or self.rows < 1:
            raise ValueError("sizes must be >= 1")
        if self.spare_rows < 0:
            raise ValueError("spare_rows must be >= 0")

    @property
    def cells_per_row(self) -> int:
        return max(self.capacity_bits // self.rows, 1)

    @property
    def words(self) -> int:
        return max(self.capacity_bits // self.word_bits, 1)

    def yield_report(self, cell_pfail: float) -> dict:
        """Yields under the three protection schemes."""
        return {
            "no_protection": 1.0 - array_failure_probability(
                cell_pfail, self.capacity_bits),
            "row_redundancy": yield_with_row_redundancy(
                cell_pfail, self.rows, self.cells_per_row,
                self.spare_rows),
            "secded_ecc": yield_with_ecc(cell_pfail, self.words,
                                         self.word_bits),
        }


def expected_failures(cell_pfail: float, n_cells: int) -> float:
    """Expected number of failing cells (Poisson mean)."""
    p = _check_probability(cell_pfail)
    if n_cells < 1:
        raise ValueError(f"n_cells must be >= 1, got {n_cells}")
    return p * n_cells


def failures_quantile(cell_pfail: float, n_cells: int,
                      quantile: float = 0.99) -> int:
    """Upper quantile of the failing-cell count (Poisson approximation)."""
    if not 0.0 < quantile < 1.0:
        raise ValueError("quantile must lie in (0, 1)")
    mean = expected_failures(cell_pfail, n_cells)
    return int(poisson.ppf(quantile, mean))
