"""Convergence-trace analysis (the machinery behind Fig. 6)."""

from __future__ import annotations

import numpy as np

from repro.core.estimate import FailureEstimate, TracePoint


def relative_error_curve(trace: list[TracePoint]
                         ) -> tuple[np.ndarray, np.ndarray]:
    """``(n_simulations, relative_error)`` arrays from a trace."""
    if not trace:
        raise ValueError("empty trace")
    sims = np.array([p.n_simulations for p in trace], dtype=float)
    rel = np.array([p.relative_error for p in trace])
    return sims, rel


def simulations_to_accuracy(trace: list[TracePoint], target: float
                            ) -> int | None:
    """Simulations needed for the trace to *stay* at or below ``target``.

    Uses the last up-crossing rather than the first touch, so a lucky
    early dip does not count as convergence.
    """
    if target <= 0:
        raise ValueError(f"target must be positive, got {target}")
    result = None
    for point in trace:
        if point.relative_error <= target:
            if result is None:
                result = point.n_simulations
        else:
            result = None
    return result


def speedup_at_accuracy(reference: FailureEstimate, fast: FailureEstimate,
                        target: float) -> float | None:
    """Simulation-count ratio reference/fast at equal relative error.

    Returns ``None`` when either run never reached the target.  This is
    the machine-independent version of the paper's "1/36 simulations"
    claim (Fig. 6b).
    """
    n_ref = simulations_to_accuracy(reference.trace, target)
    n_fast = simulations_to_accuracy(fast.trace, target)
    if n_ref is None or n_fast is None or n_fast == 0:
        return None
    return n_ref / n_fast
