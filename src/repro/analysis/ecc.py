"""Array-scale reliability: pfail -> BER -> ECC residual FIT -> scrub.

The paper's estimator ends at a per-cell failure probability; a system
architect needs the per-array consequence.  This module carries the
chain the rest of the way::

    pfail(cell) x capacity x word organisation
        -> raw bit error rate
        -> residual uncorrectable error rate per ECC scheme
        -> FIT, scrub-interval trade-off, decision

Model summary (derivations and assumptions in ``docs/ARRAY.md``):

* Soft errors arrive per bit as a Poisson process whose rate comes from
  a technology-node FIT/Mbit baseline times an environment flux
  multiplier (``FIT_PER_MBIT`` / ``ENV_FLUX_MULTIPLIER``, after the
  SNIPPETS exemplar).
* RTN-induced cell failures are Bernoulli(``cell_pfail``) per bit and
  are re-drawn each scrub window: a scrub period is assumed long
  against the RTN correlation time, so occupancy decorrelates between
  windows (stationary re-roll).
* A word is lost when the error pattern at scrub time defeats its ECC
  scheme; windows are independent, so the loss rate per word is
  ``P_unc(q(T)) / T`` with ``q(T)`` the combined per-bit error
  probability over one window of ``T`` hours.
* Everything is evaluated in log space -- no silent 0.0/1.0 saturation
  down to ``cell_pfail`` ~ 1e-15 on multi-gigabit geometries, so the
  functions are safe on estimator confidence bounds.

The caveat that matters for policy: for detection-only schemes, and for
any scheme once the static (RTN) term dominates, scrubbing *faster*
does not reduce the loss rate -- each scrub is one more independent
read-out of a marginal array.  The decision search is therefore a grid
search, never a bisection over the scrub period.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, fields, replace

import numpy as np
from scipy.special import gammaln
from scipy.stats import binom

from repro.analysis.tables import format_table

SCHEMA_VERSION = 1

HOURS_PER_YEAR = 365 * 24
#: Decimal convention (1 Mbit = 1e6 bits), matching the FIT/Mbit table.
BITS_PER_MBIT = 1_000_000

#: Soft-error FIT per Mbit by technology node (SNIPPETS exemplar 1).
FIT_PER_MBIT = {"28nm": 74.0, "16nm": 5.0, "7nm": 0.4}

#: Neutron/proton flux multiplier by operating environment relative to
#: New-York-City sea level (SNIPPETS exemplar 2).
ENV_FLUX_MULTIPLIER = {
    "sea-level": 1.0,
    "avionics": 300.0,
    "space": 50_000.0,
}

#: Single-event upset pattern mix (SNIPPETS exemplar 3): fraction of
#: raw upset events arriving as each spatial pattern.
ERROR_DISTRIBUTION = {
    "single": 0.85,
    "double_adjacent": 0.12,
    "triple_adjacent": 0.02,
    "random_double": 0.01,
}

_LN2 = math.log(2.0)
_LN10 = math.log(10.0)
# Below this, linear-space binomial tails lose their mantissa and the
# log-space series takes over.
_LINEAR_SF_FLOOR = 1e-250


# ---------------------------------------------------------------------------
# log-space primitives
# ---------------------------------------------------------------------------

def log1mexp(x: float) -> float:
    """``log(1 - exp(x))`` for ``x <= 0``, accurate over the full range.

    Uses the classic two-branch split at ``-ln 2`` (Maechler 2012):
    ``log(-expm1(x))`` near zero, ``log1p(-exp(x))`` far from it.
    """
    if x > 0.0:
        raise ValueError(f"log1mexp needs x <= 0, got {x}")
    # exact boundary of the domain, not a tolerance question
    if x == 0.0:  # repro: allow-float-eq
        return -math.inf
    if x > -_LN2:
        return math.log(-math.expm1(x))
    return math.log1p(-math.exp(x))


def _log_binom_pmf(j: int, n: int, log_p: float, log_q: float) -> float:
    coeff = gammaln(n + 1) - gammaln(j + 1) - gammaln(n - j + 1)
    return float(coeff + j * log_p + (n - j) * log_q)


def log_binom_sf(k: int, n: int, p: float) -> float:
    """``log P(Binomial(n, p) > k)``, stable down to ~1e-300.

    Delegates to scipy's linear-space survival function while it still
    has a mantissa, then switches to an incremental log-space series:
    in the deep tail the mode ``n*p`` is far below ``k + 1``, so the
    pmf terms decay geometrically and the sum converges in a handful
    of terms.
    """
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {p}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    k = int(k)
    if k < 0:
        return 0.0
    if k >= n:
        return -math.inf
    # exact degenerate endpoints (log would be -inf/0 regardless)
    if p == 0.0:  # repro: allow-float-eq
        return -math.inf
    if p == 1.0:  # repro: allow-float-eq
        return 0.0
    linear = float(binom.sf(k, n, p))
    if linear > _LINEAR_SF_FLOOR:
        return math.log(linear)
    log_p = math.log(p)
    log_q = math.log1p(-p)
    j = k + 1
    log_term = _log_binom_pmf(j, n, log_p, log_q)
    first = log_term
    total = -math.inf
    while True:
        total = float(np.logaddexp(total, log_term))
        if j >= n or log_term < first - 45.0:
            return total
        j += 1
        log_term += math.log((n - j + 1) / j) + log_p - log_q


def log10_from_log(log_value: float) -> float:
    """Convert a natural-log probability to log10 (for reporting)."""
    return log_value / _LN10


# ---------------------------------------------------------------------------
# ECC schemes
# ---------------------------------------------------------------------------

def hamming_check_bits(data_bits: int) -> int:
    """Smallest ``r`` with ``2**r >= data_bits + r + 1`` (Hamming SEC)."""
    if data_bits < 1:
        raise ValueError(f"data_bits must be >= 1, got {data_bits}")
    r = 1
    while 2 ** r < data_bits + r + 1:
        r += 1
    return r


@dataclass(frozen=True)
class EccScheme:
    """One word-level protection scheme.

    ``correctable_bits`` is the number of *arbitrary* bit errors the
    scheme corrects; ``burst_correctable`` additionally corrects runs
    of adjacent upsets up to that length (TAEC).  Burst schemes assume
    ``correctable_bits == 1`` (single random + short adjacent bursts),
    which is the published TAEC construction.
    """

    name: str
    correctable_bits: int
    burst_correctable: int = 0
    detectable_bits: int = 0

    def __post_init__(self) -> None:
        if self.correctable_bits < 0:
            raise ValueError("correctable_bits must be >= 0")
        if self.burst_correctable not in (0, 2, 3):
            raise ValueError("burst_correctable must be 0, 2 or 3")
        if self.burst_correctable and self.correctable_bits != 1:
            raise ValueError(
                "burst schemes assume correctable_bits == 1")

    def check_bits(self, data_bits: int) -> int:
        """Check bits stored alongside ``data_bits`` data bits."""
        if self.name == "none":
            return 0
        if self.name == "parity":
            return 1
        r = hamming_check_bits(data_bits)
        if self.name == "secded":
            return r + 1
        if self.name == "taec":
            # SEC-DED parity tree + interleaved adjacent-run decoder
            return r + 2
        if self.name == "dec":
            # BCH-style double-error correction: 2 * r + 1
            return 2 * r + 1
        raise ValueError(f"unknown scheme {self.name!r}")

    def word_bits(self, data_bits: int) -> int:
        return data_bits + self.check_bits(data_bits)


SCHEMES: dict[str, EccScheme] = {
    "none": EccScheme("none", correctable_bits=0),
    "parity": EccScheme("parity", correctable_bits=0, detectable_bits=1),
    "secded": EccScheme("secded", correctable_bits=1, detectable_bits=2),
    "taec": EccScheme("taec", correctable_bits=1, burst_correctable=3,
                      detectable_bits=2),
    "dec": EccScheme("dec", correctable_bits=2),
}

DEFAULT_SCHEMES = ("none", "parity", "secded", "taec", "dec")


def get_scheme(name: str) -> EccScheme:
    try:
        return SCHEMES[name]
    except KeyError:
        known = ", ".join(sorted(SCHEMES))
        raise ValueError(
            f"unknown ECC scheme {name!r} (known: {known})") from None


def log_word_uncorrectable(scheme: EccScheme, word_bits: int,
                           bit_error_probability: float) -> float:
    """``log P(the error pattern in one word defeats the scheme)``.

    Bit errors are i.i.d. Bernoulli(``bit_error_probability``).  For
    counting schemes the word is lost when more than
    ``correctable_bits`` bits err.  For TAEC, patterns of j in {2, 3}
    errors forming one adjacent run are additionally corrected, so the
    uncorrectable mass is a sum of positive terms (no cancellation)::

        j in 2..burst :  (C(n, j) - (n - j + 1)) p^j q^(n-j)
        j  > burst    :  full binomial tail
    """
    n = word_bits
    if n < 4:
        raise ValueError(f"word_bits must be >= 4, got {n}")
    p = bit_error_probability
    if scheme.burst_correctable == 0:
        return log_binom_sf(scheme.correctable_bits, n, p)
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"probability must lie in [0, 1], got {p}")
    if p == 0.0:  # repro: allow-float-eq
        return -math.inf
    parts = [log_binom_sf(scheme.burst_correctable, n, p)]
    if p < 1.0:
        log_p = math.log(p)
        log_q = math.log1p(-p)
        for j in range(2, scheme.burst_correctable + 1):
            non_run = math.comb(n, j) - (n - j + 1)
            if non_run > 0:
                parts.append(math.log(non_run) + j * log_p
                             + (n - j) * log_q)
    # the exact mass is < 1, but near p = 0.5 the logaddexp sum can
    # round ~1e-17 above 0, which would poison log1mexp downstream
    return min(float(np.logaddexp.reduce(parts)), 0.0)


def log_array_uncorrectable(scheme: EccScheme, words: int, word_bits: int,
                            bit_error_probability: float) -> float:
    """``log P(any of ``words`` words is uncorrectable)``."""
    if words < 1:
        raise ValueError(f"words must be >= 1, got {words}")
    log_word = log_word_uncorrectable(scheme, word_bits,
                                      bit_error_probability)
    log_survival = words * log1mexp(log_word)
    return log1mexp(log_survival)


def array_yield_for_scheme(scheme: EccScheme, words: int, word_bits: int,
                           cell_pfail: float) -> float:
    """Static array yield (all words correctable) under ``scheme``."""
    log_word = log_word_uncorrectable(scheme, word_bits, cell_pfail)
    return float(math.exp(words * log1mexp(log_word)))


# ---------------------------------------------------------------------------
# FIT chain (soft errors)
# ---------------------------------------------------------------------------

def _lookup(table: dict[str, float], key: str, what: str) -> float:
    try:
        return table[key]
    except KeyError:
        known = ", ".join(sorted(table))
        raise ValueError(
            f"unknown {what} {key!r} (known: {known})") from None


def raw_fit(capacity_mbit: float, node: str,
            environment: str = "sea-level") -> float:
    """Unprotected soft-error FIT for the whole array."""
    if capacity_mbit <= 0:
        raise ValueError("capacity_mbit must be > 0")
    per_mbit = _lookup(FIT_PER_MBIT, node, "technology node")
    flux = _lookup(ENV_FLUX_MULTIPLIER, environment, "environment")
    return per_mbit * flux * capacity_mbit


def bit_upset_rate(node: str, environment: str = "sea-level") -> float:
    """Per-bit soft-upset rate in events per bit-hour."""
    return raw_fit(1.0, node, environment) / 1e9 / BITS_PER_MBIT


def annual_error_count(capacity_mbit: float, node: str,
                       environment: str = "sea-level") -> float:
    """Expected raw upsets per year for the whole array."""
    return raw_fit(capacity_mbit, node, environment) \
        * HOURS_PER_YEAR / 1e9


def max_capacity_under_fit(fit_limit: float, node: str,
                           environment: str = "sea-level") -> float:
    """Largest unprotected capacity (Mbit) meeting ``fit_limit``."""
    if fit_limit <= 0:
        raise ValueError("fit_limit must be > 0")
    return fit_limit / (_lookup(FIT_PER_MBIT, node, "technology node")
                        * _lookup(ENV_FLUX_MULTIPLIER, environment,
                                  "environment"))


def soft_error_probability(rate_per_hour: float, hours: float) -> float:
    """``P(at least one upset)`` over ``hours`` at a Poisson rate."""
    if rate_per_hour < 0 or hours < 0:
        raise ValueError("rate and hours must be >= 0")
    return float(-np.expm1(-rate_per_hour * hours))


def pattern_correctable(scheme: EccScheme, pattern: str) -> bool:
    """Whether an upset *pattern* (exemplar taxonomy) is corrected."""
    if pattern == "single":
        return scheme.correctable_bits >= 1
    if pattern == "double_adjacent":
        return scheme.correctable_bits >= 2 \
            or scheme.burst_correctable >= 2
    if pattern == "triple_adjacent":
        return scheme.correctable_bits >= 3 \
            or scheme.burst_correctable >= 3
    if pattern == "random_double":
        return scheme.correctable_bits >= 2
    raise ValueError(f"unknown upset pattern {pattern!r}")


def residual_error_fraction(
        scheme_name: str,
        distribution: dict[str, float] | None = None) -> float:
    """Fraction of raw upset events a scheme fails to correct.

    This is the exemplar's per-event accounting (each upset event is
    one spatial pattern); the word-level binomial model above is the
    exact treatment.  Kept for golden-table cross-checks.
    """
    scheme = get_scheme(scheme_name)
    dist = ERROR_DISTRIBUTION if distribution is None else distribution
    return sum(weight for pattern, weight in dist.items()
               if not pattern_correctable(scheme, pattern))


# ---------------------------------------------------------------------------
# scrub model
# ---------------------------------------------------------------------------

def combined_bit_error_probability(cell_pfail: float,
                                   upset_rate_per_hour: float,
                                   scrub_hours: float) -> float:
    """``P(a bit reads wrong at the end of one scrub window)``.

    Independent OR of the static RTN term (re-rolled per window) and
    at least one Poisson soft upset during the window::

        1 - q = (1 - pfail) * exp(-rate * T)
    """
    if not 0.0 <= cell_pfail <= 1.0:
        raise ValueError(
            f"probability must lie in [0, 1], got {cell_pfail}")
    if upset_rate_per_hour < 0 or scrub_hours <= 0:
        raise ValueError("rate must be >= 0 and scrub_hours > 0")
    log_ok = math.log1p(-cell_pfail) \
        - upset_rate_per_hour * scrub_hours if cell_pfail < 1.0 \
        else -math.inf
    return float(-np.expm1(log_ok))


def log_residual_rate_per_word(scheme: EccScheme, word_bits: int,
                               cell_pfail: float,
                               upset_rate_per_hour: float,
                               scrub_hours: float) -> float:
    """``log`` of uncorrectable-loss events per word per hour."""
    q = combined_bit_error_probability(cell_pfail, upset_rate_per_hour,
                                       scrub_hours)
    return log_word_uncorrectable(scheme, word_bits, q) \
        - math.log(scrub_hours)


def residual_fit(scheme: EccScheme, words: int, word_bits: int,
                 cell_pfail: float, upset_rate_per_hour: float,
                 scrub_hours: float) -> float:
    """Residual uncorrectable FIT for the whole array at one scrub
    period (1 FIT = one loss event per 1e9 device-hours)."""
    log_rate = log_residual_rate_per_word(
        scheme, word_bits, cell_pfail, upset_rate_per_hour, scrub_hours)
    return float(math.exp(log_rate + math.log(words) + 9.0 * _LN10))


def required_cell_pfail_for_policy(
        scheme: EccScheme, words: int, word_bits: int,
        upset_rate_per_hour: float, scrub_hours: float,
        fit_target: float, *,
        floor: float = 1e-18, ceiling: float = 0.5) -> float:
    """Largest ``cell_pfail`` for which the policy meets the target.

    The residual FIT is monotone increasing in ``cell_pfail`` (the
    combined bit error probability is, and the binomial tail is), so a
    bisection on ``log10 pfail`` is exact.  Returns 0.0 when even the
    soft-error floor alone busts the target, and ``ceiling`` when the
    target is met everywhere.
    """
    if fit_target <= 0:
        raise ValueError("fit_target must be > 0")

    def meets(p: float) -> bool:
        return residual_fit(scheme, words, word_bits, p,
                            upset_rate_per_hour,
                            scrub_hours) <= fit_target

    if not meets(floor):
        return 0.0
    if meets(ceiling):
        return ceiling
    lo, hi = math.log10(floor), math.log10(ceiling)
    for _ in range(200):
        mid = 0.5 * (lo + hi)
        if meets(10.0 ** mid):
            lo = mid
        else:
            hi = mid
    return 10.0 ** lo


# ---------------------------------------------------------------------------
# configuration
# ---------------------------------------------------------------------------

_CAPACITY_SUFFIXES = {"kb": 1e-3, "mb": 1.0, "gb": 1e3, "tb": 1e6}


def parse_capacity(text: str | float) -> float:
    """Parse a capacity like ``"128Gb"`` / ``"64Mb"`` into Mbit.

    Decimal multipliers (1 Gb = 1000 Mb = 1e9 bits), matching the
    FIT/Mbit convention.  A bare number is taken as Mbit.
    """
    if isinstance(text, (int, float)):
        return float(text)
    cleaned = text.strip().lower().replace(" ", "")
    for suffix in ("bits", "bit"):
        if cleaned.endswith(suffix):
            cleaned = cleaned[:-len(suffix)] + "b"
            break
    for suffix, scale in _CAPACITY_SUFFIXES.items():
        if cleaned.endswith(suffix):
            return float(cleaned[:-len(suffix)]) * scale
    return float(cleaned)


def format_capacity(capacity_mbit: float) -> str:
    if capacity_mbit >= 1e6:
        return f"{capacity_mbit / 1e6:g} Tb"
    if capacity_mbit >= 1e3:
        return f"{capacity_mbit / 1e3:g} Gb"
    return f"{capacity_mbit:g} Mb"


DEFAULT_SCRUB_HOURS = (0.25, 1.0, 4.0, 24.0, 168.0, 720.0)


@dataclass(frozen=True)
class ArrayConfig:
    """The array-reliability question being asked.

    Every field is part of the result identity (service fingerprints
    hash all of them; see ``FINGERPRINT_CONTRACTS``).  Sequence fields
    are canonicalised to tuples so a JSON round trip cannot change the
    fingerprint.
    """

    capacity_mbit: float = 128_000.0
    data_bits: int = 64
    node: str = "16nm"
    environment: str = "sea-level"
    fit_target: float = 10.0
    scrub_hours: tuple[float, ...] = DEFAULT_SCRUB_HOURS
    schemes: tuple[str, ...] = DEFAULT_SCHEMES

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "capacity_mbit", float(self.capacity_mbit))
        object.__setattr__(
            self, "fit_target", float(self.fit_target))
        object.__setattr__(
            self, "scrub_hours",
            tuple(float(h) for h in self.scrub_hours))
        object.__setattr__(
            self, "schemes", tuple(str(s) for s in self.schemes))
        if self.capacity_mbit <= 0:
            raise ValueError("capacity_mbit must be > 0")
        if self.data_bits < 4:
            raise ValueError("data_bits must be >= 4")
        if self.fit_target <= 0:
            raise ValueError("fit_target must be > 0")
        _lookup(FIT_PER_MBIT, self.node, "technology node")
        _lookup(ENV_FLUX_MULTIPLIER, self.environment, "environment")
        if not self.scrub_hours:
            raise ValueError("scrub_hours must not be empty")
        if any(h <= 0 for h in self.scrub_hours):
            raise ValueError("scrub periods must be > 0 hours")
        if list(self.scrub_hours) != sorted(set(self.scrub_hours)):
            raise ValueError(
                "scrub_hours must be strictly increasing")
        if not self.schemes:
            raise ValueError("schemes must not be empty")
        if len(set(self.schemes)) != len(self.schemes):
            raise ValueError("duplicate scheme names")
        for name in self.schemes:
            get_scheme(name)

    @property
    def capacity_bits(self) -> int:
        return int(round(self.capacity_mbit * BITS_PER_MBIT))

    @property
    def words(self) -> int:
        """Number of protected words holding ``capacity_bits`` of
        data (check bits are extra cells, not capacity)."""
        return max(-(-self.capacity_bits // self.data_bits), 1)

    def as_dict(self) -> dict:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: dict) -> "ArrayConfig":
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown array config field(s): {', '.join(unknown)}")
        return cls(**payload)

    def with_(self, **changes) -> "ArrayConfig":
        return replace(self, **changes)


# ---------------------------------------------------------------------------
# the report
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class ScrubPoint:
    """Residual FIT of one (scheme, scrub period) cell."""

    scrub_hours: float
    bit_error_probability: float
    residual_fit: float
    log10_residual_fit: float
    meets_target: bool


@dataclass(frozen=True)
class SchemeResult:
    """Static yield and scrub curve for one ECC scheme."""

    name: str
    word_bits: int
    check_bits: int
    overhead_percent: float
    words: int
    log10_array_failure: float
    array_failure: float
    array_yield: float
    scrub: tuple[ScrubPoint, ...]

    def best_point(self) -> ScrubPoint | None:
        """Longest scrub period (cheapest policy) meeting the target."""
        for point in reversed(self.scrub):
            if point.meets_target:
                return point
        return None


@dataclass(frozen=True)
class ArrayDecision:
    """The headline answer: cheapest (scheme, scrub) meeting target."""

    feasible: bool
    scheme: str | None
    scrub_hours: float | None
    residual_fit: float | None
    fit_margin: float | None
    required_cell_pfail: float
    robust_at_upper_bound: bool | None


@dataclass(frozen=True)
class ArrayReport:
    """Everything ``analyze_array`` knows, ready for text/JSON."""

    config: ArrayConfig
    cell_pfail: float
    cell_pfail_upper: float | None
    raw_fit: float
    annual_errors: float
    bit_upset_rate_per_hour: float
    max_unprotected_mbit: float
    schemes: tuple[SchemeResult, ...]
    decision: ArrayDecision

    def as_dict(self) -> dict:
        payload = asdict(self)
        payload["schema_version"] = SCHEMA_VERSION
        return payload

    def render_text(self) -> str:
        cfg = self.config
        lines = [
            f"array: {format_capacity(cfg.capacity_mbit)} "
            f"({cfg.data_bits}-bit words), node {cfg.node}, "
            f"{cfg.environment}",
            f"cell pfail: {self.cell_pfail:.3e}"
            + (f" (upper bound {self.cell_pfail_upper:.3e})"
               if self.cell_pfail_upper is not None else ""),
            f"raw soft-error FIT: {self.raw_fit:.4g} "
            f"({self.annual_errors:.4g} upsets/year); "
            f"max unprotected capacity at "
            f"{cfg.fit_target:g} FIT: "
            f"{format_capacity(self.max_unprotected_mbit)}",
            "",
        ]
        yield_rows = []
        for res in self.schemes:
            yield_rows.append([
                res.name, str(res.word_bits), str(res.check_bits),
                f"{res.overhead_percent:.1f}%",
                f"{res.array_failure:.4g}",
                f"{res.log10_array_failure:+.2f}",
            ])
        lines.append(format_table(
            ["scheme", "word", "check", "overhead",
             "P(array fail)", "log10"],
            yield_rows, title="static yield (RTN only)"))
        lines.append("")
        scrub_rows = []
        for hours in cfg.scrub_hours:
            row = [f"{hours:g}"]
            for res in self.schemes:
                point = next(p for p in res.scrub
                             if p.scrub_hours == hours)
                mark = " *" if point.meets_target else ""
                row.append(f"{point.residual_fit:.3g}{mark}")
            scrub_rows.append(row)
        lines.append(format_table(
            ["scrub [h]"] + [res.name for res in self.schemes],
            scrub_rows,
            title=f"residual FIT vs scrub period "
                  f"(* meets {cfg.fit_target:g} FIT)"))
        lines.append("")
        d = self.decision
        if d.feasible:
            lines.append(
                f"decision: {d.scheme} with scrub every "
                f"{d.scrub_hours:g} h -> {d.residual_fit:.3g} FIT "
                f"(margin {d.fit_margin:.3g}x)")
            if d.robust_at_upper_bound is not None:
                verdict = "holds" if d.robust_at_upper_bound \
                    else "DOES NOT hold"
                lines.append(
                    f"  at the pfail upper bound the decision "
                    f"{verdict}")
        else:
            lines.append(
                f"decision: no scheme x scrub combination meets "
                f"{cfg.fit_target:g} FIT at pfail "
                f"{self.cell_pfail:.3e}")
        lines.append(
            f"  required cell pfail for the best policy: "
            f"<= {d.required_cell_pfail:.3e}")
        return "\n".join(lines)


def _scheme_result(cfg: ArrayConfig, scheme: EccScheme,
                   cell_pfail: float, rate: float) -> SchemeResult:
    word_bits = scheme.word_bits(cfg.data_bits)
    check = scheme.check_bits(cfg.data_bits)
    words = cfg.words
    log_fail = log_array_uncorrectable(scheme, words, word_bits,
                                       cell_pfail)
    points = []
    for hours in cfg.scrub_hours:
        q = combined_bit_error_probability(cell_pfail, rate, hours)
        fit = residual_fit(scheme, words, word_bits, cell_pfail,
                           rate, hours)
        log_rate = log_residual_rate_per_word(
            scheme, word_bits, cell_pfail, rate, hours)
        log10_fit = log10_from_log(log_rate) + math.log10(words) + 9.0 \
            if words > 0 else -math.inf
        points.append(ScrubPoint(
            scrub_hours=hours,
            bit_error_probability=q,
            residual_fit=fit,
            log10_residual_fit=log10_fit,
            meets_target=fit <= cfg.fit_target,
        ))
    return SchemeResult(
        name=scheme.name,
        word_bits=word_bits,
        check_bits=check,
        overhead_percent=100.0 * check / cfg.data_bits,
        words=words,
        log10_array_failure=log10_from_log(log_fail),
        array_failure=float(math.exp(log_fail)),
        array_yield=float(math.exp(
            words * log1mexp(log_word_uncorrectable(
                scheme, word_bits, cell_pfail)))),
        scrub=tuple(points),
    )


def _decide(cfg: ArrayConfig, results: tuple[SchemeResult, ...],
            cell_pfail_upper: float | None,
            rate: float) -> ArrayDecision:
    ordered = sorted(results, key=lambda r: (r.check_bits, r.name))
    chosen: tuple[SchemeResult, ScrubPoint] | None = None
    for res in ordered:
        point = res.best_point()
        if point is not None:
            chosen = (res, point)
            break
    if chosen is None:
        # infeasible: report the pfail the *strongest* scheme at the
        # *shortest* scrub period would need
        strongest = max(results, key=lambda r: (
            get_scheme(r.name).correctable_bits,
            get_scheme(r.name).burst_correctable))
        scheme = get_scheme(strongest.name)
        required = required_cell_pfail_for_policy(
            scheme, strongest.words, strongest.word_bits, rate,
            min(cfg.scrub_hours), cfg.fit_target)
        return ArrayDecision(
            feasible=False, scheme=None, scrub_hours=None,
            residual_fit=None, fit_margin=None,
            required_cell_pfail=required,
            robust_at_upper_bound=None)
    res, point = chosen
    scheme = get_scheme(res.name)
    required = required_cell_pfail_for_policy(
        scheme, res.words, res.word_bits, rate, point.scrub_hours,
        cfg.fit_target)
    robust: bool | None = None
    if cell_pfail_upper is not None:
        upper_fit = residual_fit(scheme, res.words, res.word_bits,
                                 cell_pfail_upper, rate,
                                 point.scrub_hours)
        robust = upper_fit <= cfg.fit_target
    margin = cfg.fit_target / point.residual_fit \
        if point.residual_fit > 0 else math.inf
    return ArrayDecision(
        feasible=True, scheme=res.name,
        scrub_hours=point.scrub_hours,
        residual_fit=point.residual_fit, fit_margin=margin,
        required_cell_pfail=required, robust_at_upper_bound=robust)


def analyze_array(config: ArrayConfig, cell_pfail: float,
                  cell_pfail_upper: float | None = None) -> ArrayReport:
    """Run the full chain and answer the decision question.

    ``cell_pfail_upper`` (typically ``pfail + ci_halfwidth`` from an
    estimator run) marks the decision as robust only when it still
    holds at the bound.
    """
    if not 0.0 <= cell_pfail <= 0.5:
        raise ValueError(
            f"cell_pfail must lie in [0, 0.5], got {cell_pfail}")
    if cell_pfail_upper is not None:
        if not cell_pfail <= cell_pfail_upper <= 1.0:
            raise ValueError(
                "cell_pfail_upper must lie in [cell_pfail, 1]")
        cell_pfail_upper = float(min(cell_pfail_upper, 0.5))
    rate = bit_upset_rate(config.node, config.environment)
    results = tuple(
        _scheme_result(config, get_scheme(name), cell_pfail, rate)
        for name in config.schemes)
    decision = _decide(config, results, cell_pfail_upper, rate)
    return ArrayReport(
        config=config,
        cell_pfail=float(cell_pfail),
        cell_pfail_upper=cell_pfail_upper,
        raw_fit=raw_fit(config.capacity_mbit, config.node,
                        config.environment),
        annual_errors=annual_error_count(
            config.capacity_mbit, config.node, config.environment),
        bit_upset_rate_per_hour=rate,
        max_unprotected_mbit=max_capacity_under_fit(
            config.fit_target, config.node, config.environment),
        schemes=results,
        decision=decision,
    )
