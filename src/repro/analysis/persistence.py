"""Save/load estimation results as JSON.

Long experiment campaigns (Fig. 8 sweeps at paper-scale budgets) want
their per-point results on disk; this module round-trips
:class:`~repro.core.estimate.FailureEstimate` objects, including their
convergence traces, through plain JSON so results stay tool-agnostic.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.core.estimate import FailureEstimate, TracePoint
from repro.health.events import HealthReport

#: bumped when the on-disk layout changes incompatibly.
SCHEMA_VERSION = 1


def estimate_to_dict(estimate: FailureEstimate) -> dict:
    """Plain-dict form of an estimate (JSON-serialisable).

    The health report travels as an optional ``health`` key (additive,
    so the schema version is unchanged: old readers ignore it, old
    files simply load with ``health=None``).
    """
    out = {
        "schema": SCHEMA_VERSION,
        "pfail": estimate.pfail,
        "ci_halfwidth": estimate.ci_halfwidth,
        "n_simulations": estimate.n_simulations,
        "n_statistical_samples": estimate.n_statistical_samples,
        "method": estimate.method,
        "wall_time_s": estimate.wall_time_s,
        "metadata": _plain(estimate.metadata),
        "trace": [
            {
                "n_simulations": p.n_simulations,
                "estimate": p.estimate,
                "ci_halfwidth": p.ci_halfwidth,
                "n_statistical_samples": p.n_statistical_samples,
            }
            for p in estimate.trace
        ],
    }
    if isinstance(estimate.health, HealthReport):
        out["health"] = estimate.health.as_dict()
    return out


def estimate_from_dict(data: dict) -> FailureEstimate:
    """Inverse of :func:`estimate_to_dict`.

    Unknown *future* schemas are rejected with a dedicated message: a
    newer build wrote the file and this one cannot know how to read it.
    Anything else that does not match the current version is plain
    corruption/incompatibility.
    """
    schema = data.get("schema")
    if isinstance(schema, int) and schema > SCHEMA_VERSION:
        raise ValueError(
            f"result file has schema {schema}, newer than this build's "
            f"{SCHEMA_VERSION}; upgrade the repro package to read it")
    if schema != SCHEMA_VERSION:
        raise ValueError(
            f"unsupported schema {schema!r}; "
            f"this build reads version {SCHEMA_VERSION}")
    trace = [TracePoint(**point) for point in data.get("trace", [])]
    health = (HealthReport.from_dict(data["health"])
              if isinstance(data.get("health"), dict) else None)
    return FailureEstimate(
        pfail=data["pfail"], ci_halfwidth=data["ci_halfwidth"],
        n_simulations=data["n_simulations"],
        n_statistical_samples=data["n_statistical_samples"],
        method=data["method"], wall_time_s=data.get("wall_time_s", 0.0),
        trace=trace, metadata=data.get("metadata", {}), health=health)


def save_estimate(estimate: FailureEstimate, path,
                  overwrite: bool = False) -> Path:
    """Write ``estimate`` to ``path`` as JSON, atomically.

    By default an existing file is *not* clobbered (``FileExistsError``);
    campaigns that intend to refresh a result pass ``overwrite=True``.
    Either way the write goes through a temp-then-rename, so a reader
    never sees a torn file.  Returns the path written.
    """
    from repro.checkpoint.atomic import atomic_write_text

    path = Path(path)
    if not overwrite and path.exists():
        raise FileExistsError(
            f"refusing to overwrite existing result {path}; pass "
            f"overwrite=True to replace it")
    atomic_write_text(
        path, json.dumps(estimate_to_dict(estimate), indent=2) + "\n")
    return path


def load_estimate(path) -> FailureEstimate:
    """Read an estimate previously written by :func:`save_estimate`."""
    return estimate_from_dict(json.loads(Path(path).read_text()))


def _plain(value):
    """Recursively coerce numpy scalars/arrays to JSON-native types."""
    import numpy as np

    if isinstance(value, dict):
        return {str(k): _plain(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [_plain(v) for v in value]
    if isinstance(value, np.ndarray):
        return _plain(value.tolist())
    if isinstance(value, (np.floating, np.integer, np.bool_)):
        return value.item()
    return value
