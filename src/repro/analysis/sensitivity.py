"""Device-criticality analysis from failure-region geometry.

The particle cloud ECRIPSE builds in stage 1 *is* a map of the failure
region; its coordinate statistics tell a designer which transistor's
variability drives failures -- information a plain P_fail number hides.

Two complementary views:

* :func:`device_criticality` -- importance weights from the particle
  positions (how far along each device axis the failure region sits);
* :func:`margin_gradient` -- local sensitivities of the margin at a given
  point by central differences (the classical design-of-experiments
  view).
"""

from __future__ import annotations

import numpy as np


def device_criticality(particles: np.ndarray,
                       names: tuple[str, ...] | None = None) -> dict:
    """Rank dimensions by the failure cloud's displacement and spread.

    Parameters
    ----------
    particles:
        Failure-region points (N, D), whitened units (e.g.
        ``estimator.filter_bank.positions()``).
    names:
        Optional dimension labels.

    Returns
    -------
    dict with per-dimension arrays:
    ``mean_shift`` (signed mean coordinate), ``rms`` (root-mean-square
    coordinate) and ``criticality`` (rms normalised to sum to 1) -- the
    fraction of the failure cloud's squared radius each device axis
    carries.
    """
    particles = np.atleast_2d(np.asarray(particles, dtype=float))
    if particles.size == 0:
        raise ValueError("need at least one particle")
    dim = particles.shape[1]
    if names is not None and len(names) != dim:
        raise ValueError(f"{len(names)} names for {dim} dimensions")
    mean_shift = particles.mean(axis=0)
    rms = np.sqrt(np.mean(particles ** 2, axis=0))
    total = np.sum(rms ** 2)
    criticality = rms ** 2 / total if total > 0 else np.zeros(dim)
    return {
        "names": tuple(names) if names is not None else tuple(
            str(i) for i in range(dim)),
        "mean_shift": mean_shift,
        "rms": rms,
        "criticality": criticality,
    }


def margin_gradient(margin_fn, x: np.ndarray, step: float = 0.05
                    ) -> np.ndarray:
    """Central-difference gradient of a margin function at ``x``.

    ``margin_fn`` maps (B, D) points to (B,) margins (e.g.
    ``evaluator.cell_margin``); the returned gradient is in margin units
    per whitened sigma, so ``-gradient * sigma_device`` is the margin
    lost per volt of threshold shift.
    """
    x = np.asarray(x, dtype=float).reshape(1, -1)
    if step <= 0:
        raise ValueError(f"step must be positive, got {step}")
    dim = x.shape[1]
    probes = np.repeat(x, 2 * dim, axis=0)
    for d in range(dim):
        probes[2 * d, d] += step
        probes[2 * d + 1, d] -= step
    values = np.asarray(margin_fn(probes), dtype=float)
    return (values[0::2] - values[1::2]) / (2.0 * step)


def rank_devices(criticality: dict, top: int | None = None) -> list[tuple]:
    """Sorted ``(name, criticality)`` list, most critical first."""
    pairs = sorted(zip(criticality["names"], criticality["criticality"]),
                   key=lambda item: item[1], reverse=True)
    return pairs[:top] if top is not None else pairs
