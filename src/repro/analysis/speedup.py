"""Run-vs-run speedup reports (simulation count and wall clock)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.convergence import simulations_to_accuracy
from repro.core.estimate import FailureEstimate


@dataclass(frozen=True)
class SpeedupReport:
    """Comparison of two estimator runs at a common accuracy target.

    Attributes
    ----------
    target_relative_error:
        The accuracy at which the runs are compared.
    reference_sims, fast_sims:
        Simulations each run needed (``None`` = never converged).
    simulation_ratio:
        reference/fast simulation counts (the paper's "1/36 simulations").
    wall_clock_ratio:
        Total wall-clock ratio of the two runs (the paper's "15.6x"); note
        this compares *whole runs*, it is not normalised to the accuracy
        target.
    """

    target_relative_error: float
    reference_sims: int | None
    fast_sims: int | None
    simulation_ratio: float | None
    wall_clock_ratio: float | None
    estimates_agree: bool

    def summary(self) -> str:
        if self.simulation_ratio is None:
            return (f"no speedup measurable at rel. err. "
                    f"{self.target_relative_error:.1%} "
                    f"(reference: {self.reference_sims}, "
                    f"fast: {self.fast_sims})")
        wall = ("" if self.wall_clock_ratio is None
                else f", wall-clock ratio {self.wall_clock_ratio:.1f}x")
        return (f"{self.simulation_ratio:.1f}x fewer simulations at "
                f"rel. err. {self.target_relative_error:.1%} "
                f"({self.reference_sims} vs {self.fast_sims}){wall}")


def compare_runs(reference: FailureEstimate, fast: FailureEstimate,
                 target_relative_error: float = 0.01) -> SpeedupReport:
    """Build a :class:`SpeedupReport` for two completed runs.

    ``estimates_agree`` checks that the two final confidence intervals
    overlap -- a speedup against a wrong answer is meaningless.
    """
    n_ref = simulations_to_accuracy(reference.trace, target_relative_error)
    n_fast = simulations_to_accuracy(fast.trace, target_relative_error)
    ratio = None
    if n_ref is not None and n_fast:
        ratio = n_ref / n_fast
    wall = None
    if fast.wall_time_s > 0 and reference.wall_time_s > 0:
        wall = reference.wall_time_s / fast.wall_time_s
    agree = (reference.ci_low <= fast.ci_high
             and fast.ci_low <= reference.ci_high)
    return SpeedupReport(
        target_relative_error=target_relative_error,
        reference_sims=n_ref, fast_sims=n_fast,
        simulation_ratio=ratio, wall_clock_ratio=wall,
        estimates_agree=agree)
