"""Statistical helpers: binomial and weighted-mean confidence intervals."""

from __future__ import annotations

import numpy as np

#: two-sided 95 % normal quantile.
Z95 = 1.959963984540054


def wilson_interval(successes: int, trials: int, z: float = Z95
                    ) -> tuple[float, float]:
    """Wilson score interval for a binomial proportion.

    Returns ``(estimate, ci_halfwidth)`` where the estimate is the plain
    proportion and the half-width is half the Wilson interval length --
    well-behaved even with zero successes (unlike the Wald interval, which
    collapses to width 0 there).

    >>> p, hw = wilson_interval(0, 1000)
    >>> p == 0.0 and hw > 0.0
    True
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    if not 0 <= successes <= trials:
        raise ValueError(
            f"successes must lie in [0, {trials}], got {successes}")
    p = successes / trials
    z2 = z * z
    denom = 1.0 + z2 / trials
    centre = (p + z2 / (2 * trials)) / denom
    spread = (z / denom) * np.sqrt(p * (1 - p) / trials
                                   + z2 / (4 * trials * trials))
    return p, float(spread)


def binomial_ci_halfwidth(p: float, n: int, z: float = Z95) -> float:
    """Wald (normal-approximation) half-width; fine for large counts."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if not 0.0 <= p <= 1.0:
        raise ValueError(f"p must lie in [0, 1], got {p}")
    return float(z * np.sqrt(p * (1.0 - p) / n))


def weighted_mean_ci(values: np.ndarray, z: float = Z95
                     ) -> tuple[float, float]:
    """Mean and CI half-width of i.i.d. contributions (IS estimator terms).

    ``values`` are the per-sample products ``w_k * y_k`` of an importance-
    sampling sum; the estimator is their plain mean and the CI follows from
    the sample variance.
    """
    values = np.asarray(values, dtype=float).ravel()
    if values.size == 0:
        raise ValueError("need at least one value")
    mean = float(values.mean())
    if values.size == 1:
        return mean, float("inf")
    stderr = float(values.std(ddof=1) / np.sqrt(values.size))
    return mean, z * stderr
