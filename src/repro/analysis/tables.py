"""Plain-text table rendering for benchmark and experiment reports."""

from __future__ import annotations

from typing import Sequence


def format_table(headers: Sequence[str], rows: Sequence[Sequence],
                 title: str | None = None) -> str:
    """Render rows as an aligned ASCII table.

    Cells are stringified with ``str``; numeric alignment is right, text
    alignment left.

    >>> print(format_table(["a", "b"], [[1, "x"], [22, "yy"]]))
     a  b
    --  --
     1  x
    22  yy
    """
    if not headers:
        raise ValueError("need at least one column")
    str_rows = []
    for row in rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row {row!r} has {len(row)} cells for {len(headers)} "
                "columns")
        str_rows.append([_render(cell) for cell in row])

    widths = [len(h) for h in headers]
    for row in str_rows:
        widths = [max(w, len(c)) for w, c in zip(widths, row)]

    numeric = [all(_is_numeric(row[i]) for row in str_rows) if str_rows
               else False for i in range(len(headers))]

    def fmt(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            parts.append(cell.rjust(widths[i]) if numeric[i]
                         else cell.ljust(widths[i]))
        return "  ".join(parts).rstrip()

    lines = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), 1))
    lines.append(fmt(headers))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in str_rows)
    return "\n".join(lines)


def _render(cell) -> str:
    if isinstance(cell, float):
        # exactly-0.0 cells render as "0"; near-zero must stay visible,
        # so a tolerance would be wrong here.
        if cell == 0.0:  # repro: allow-float-eq
            return "0"
        if abs(cell) < 1e-2 or abs(cell) >= 1e5:
            return f"{cell:.3e}"
        return f"{cell:.4g}"
    return str(cell)


def _is_numeric(text: str) -> bool:
    try:
        float(text)
    except ValueError:
        return False
    return True
