"""Deterministic fault injection and resilience for the service stack.

PR 4 gave the numerical core a chaos layer (:mod:`repro.health`); this
package extends the same discipline to storage and serving:

- :mod:`repro.chaos.fsops` -- the injectable filesystem fault plane
  (fail / tear / delay / kill the Nth matching durable operation);
- :mod:`repro.chaos.config` -- the daemon's resilience knobs (leases,
  attempt budgets, fault schedules), all fingerprint-excluded;
- :mod:`repro.chaos.harness` -- the crash-consistency harness that
  enumerates every durable write point in a job lifecycle and proves
  each one safe to die at;
- :mod:`repro.chaos.clock` -- the package's one sanctioned wall-clock
  seam (REP002 scope excludes exactly that file).
"""

from repro.chaos.config import ChaosConfig
from repro.chaos.fsops import (ChaosFsOps, ChaosKill, FaultClause, FsOps,
                               default_fs, fs_installed, install_fs,
                               parse_fault_schedule)

__all__ = [
    "ChaosConfig",
    "ChaosFsOps",
    "ChaosKill",
    "FaultClause",
    "FsOps",
    "default_fs",
    "fs_installed",
    "install_fs",
    "parse_fault_schedule",
]
