"""CLI entry point: ``python -m repro.chaos`` runs the harness.

Exit status 0 when every case satisfies the crash-consistency
invariants, 1 otherwise (CI's ``service-chaos`` job gates on this).
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

from repro.chaos.harness import DEFAULT_SPEC, run_harness


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Crash-consistency harness: enumerate every "
                    "durable write in a job lifecycle and inject a "
                    "fault at each (see docs/ROBUSTNESS.md).")
    parser.add_argument("--quick", action="store_true",
                        help="kill-mode only (the CI sweep); the full "
                             "run adds injected failures and torn "
                             "writes")
    parser.add_argument("--root", default=None, metavar="DIR",
                        help="scratch directory (default: a fresh "
                             "temporary directory)")
    parser.add_argument("--json", action="store_true", dest="as_json",
                        help="machine-readable report on stdout")
    args = parser.parse_args(argv)

    progress = None if args.as_json \
        else lambda line: print(line, flush=True)
    if args.root is not None:
        root = Path(args.root)
        root.mkdir(parents=True, exist_ok=True)
        report = run_harness(root, quick=args.quick,
                             progress=progress)
    else:
        with tempfile.TemporaryDirectory(prefix="ecripse-chaos-") \
                as scratch:
            report = run_harness(scratch, quick=args.quick,
                                 progress=progress)

    if args.as_json:
        print(json.dumps({
            "spec": DEFAULT_SPEC.as_dict(),
            "write_points": report.write_points,
            "cases": len(report.cases),
            "passed": report.passed,
            "violations": [
                {"clause": c.clause, "path": c.path,
                 "outcome": c.outcome, "detail": c.detail}
                for c in report.violations],
        }, indent=1, sort_keys=True))
    else:
        verdict = "PASS" if report.passed else "FAIL"
        print(f"{verdict}: {len(report.cases)} cases over "
              f"{report.write_points} durable write points "
              f"({len(report.violations)} violations); reference "
              f"pfail={report.reference_pfail:.6e} over "
              f"{report.reference_simulations} simulations",
              flush=True)
        for case in report.violations:
            print(f"  VIOLATION {case.clause} on {case.path}: "
                  f"{case.detail}", file=sys.stderr)
    return 0 if report.passed else 1


if __name__ == "__main__":
    raise SystemExit(main())
