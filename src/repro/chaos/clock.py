"""The chaos layer's sanctioned wall clock.

This module is the only file in :mod:`repro.chaos` allowed to touch the
wall clock (the REP002 lint scope excludes exactly this file, mirroring
``repro/checkpoint/trigger.py`` and ``repro/service/scheduler.py``):
fault *delays*, harness timeouts and case timings are operational
telemetry -- nothing downstream of an estimate may ever depend on them.
Keeping the reads behind one seam also lets tests substitute a fake
clock without monkeypatching :mod:`time` process-wide.
"""

from __future__ import annotations

import time


def now() -> float:
    """Unix timestamp for harness reports -- never for estimator logic."""
    return time.time()


def monotonic() -> float:
    """Monotonic seconds for measuring case durations and timeouts."""
    return time.monotonic()


def sleep(seconds: float) -> None:
    """Block for ``seconds`` (fault-injection ``delay`` mode)."""
    if seconds > 0:
        time.sleep(seconds)
