"""Resilience configuration for the service daemon.

:class:`ChaosConfig` bundles everything the daemon needs to survive a
hostile environment: the (optional) filesystem fault schedule, the job
lease the watchdog enforces, and the poison-job attempt budget.  None
of these fields may influence an estimate -- a job retried under a
shorter lease must still hit the result cache written under a longer
one -- so every field is *excluded* from fingerprint identity, and the
REP009 fingerprint-drift lint pins that classification to the
:data:`_RESILIENCE_FIELDS` constant below (the same contract shape as
``JobSpec._NONRESULT_FIELDS``).
"""

from __future__ import annotations

from dataclasses import dataclass

#: every ChaosConfig field, by construction resilience-only: the REP009
#: contract asserts this literal equals the excluded-field set, so a
#: new field cannot silently become identity-bearing.
_RESILIENCE_FIELDS = frozenset({
    "inject_fs", "lease_s", "watchdog_interval_s", "max_attempts",
    "heartbeat_s",
})


@dataclass(frozen=True)
class ChaosConfig:
    """Operational resilience knobs (never identity-bearing).

    Parameters
    ----------
    inject_fs:
        Fault schedule for the filesystem plane (see
        :mod:`repro.chaos.fsops`); ``None`` runs on the real
        filesystem.  Test/CI only -- a production daemon never sets it.
    lease_s:
        How long a worker owns a ``running`` job before the watchdog
        may reclaim it.  Workers renew at every checkpoint boundary,
        so the lease only expires when a worker hangs or dies.
    watchdog_interval_s:
        Sweep cadence; ``None`` derives ``lease_s / 4`` (a hung worker
        is reclaimed well within one lease interval).
    max_attempts:
        Attempt budget per job: once a job has started this many times
        and still not finished, the next failure or lease expiry
        dead-letters it instead of re-queueing.  A per-job
        ``JobSpec.max_attempts`` overrides this default.
    heartbeat_s:
        Idle interval after which a ``follow`` event stream emits a
        heartbeat line so clients can keep a read timeout armed.
    """

    inject_fs: str | None = None
    lease_s: float = 60.0
    watchdog_interval_s: float | None = None
    max_attempts: int = 3
    heartbeat_s: float = 10.0

    def __post_init__(self) -> None:
        if self.lease_s <= 0:
            raise ValueError(
                f"lease_s must be > 0, got {self.lease_s}")
        if (self.watchdog_interval_s is not None
                and self.watchdog_interval_s <= 0):
            raise ValueError(
                f"watchdog_interval_s must be > 0, got "
                f"{self.watchdog_interval_s}")
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.heartbeat_s <= 0:
            raise ValueError(
                f"heartbeat_s must be > 0, got {self.heartbeat_s}")

    @property
    def sweep_interval_s(self) -> float:
        """The effective watchdog cadence."""
        if self.watchdog_interval_s is not None:
            return self.watchdog_interval_s
        return self.lease_s / 4.0
