"""The injectable filesystem fault plane.

Every durable write the checkpoint and service layers perform goes
through an :class:`FsOps` instance -- a thin seam over the dozen
filesystem calls that matter for crash consistency (atomic publishes,
staging writes, event-log appends, lock files).  The default plane is
the real filesystem; :class:`ChaosFsOps` wraps the same calls with a
deterministic fault schedule so a test (or ``ecripse serve
--inject-fs``) can fail, tear, delay or "kill -9" the process at
exactly the Nth matching operation.

Schedule grammar (clauses joined by ``,``)::

    op[@substr]:index[:mode]

``op`` is one operation name (``replace``, ``rename``, ``write``,
``append``, ``create``, ``touch``, ``link``, ``unlink``, ``fsync``,
``fsync_dir``, ``mkdir``, ``rmdir``) or a group alias (``durable`` =
replace|rename|append, ``any``); ``@substr`` filters by target path;
``index`` is the 1-based ordinal of the matching call that faults; and
``mode`` is one of:

=============  =======================================================
``fail``       raise ``OSError`` instead of performing the operation
``torn``       write operations only: persist a prefix of the data and
               *succeed* (the classic torn write; other ops degrade to
               ``fail``)
``kill``       raise :class:`ChaosKill` (a ``BaseException``) *before*
               the operation -- the simulated ``kill -9``: nothing
               downstream runs, but ``with`` blocks unwind exactly the
               way dying mid-syscall leaves the disk
``torn-kill``  persist a prefix, then raise :class:`ChaosKill` -- a
               torn write cut short by a crash
``delay``      sleep ``delay_s``, then perform the operation normally
=============  =======================================================

Example: ``rename:3:fail`` fails the third rename;
``write@manifest:1:torn`` tears the first manifest write.

Firing is a pure function of each clause's private call counter, so the
same workload sees the same fault sequence on every run -- the property
the crash-consistency harness (:mod:`repro.chaos.harness`) builds on.
"""

from __future__ import annotations

import os
import threading
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Iterator

from repro.chaos import clock

#: every operation the seam routes (the full vocabulary of ``op``).
FS_OPS: tuple[str, ...] = (
    "replace", "rename", "link", "unlink", "write", "append",
    "create", "touch", "fsync", "fsync_dir", "mkdir", "rmdir",
)

#: operations that publish durable, reader-visible state -- the write
#: points the crash-consistency harness enumerates.
DURABLE_OPS: tuple[str, ...] = ("replace", "rename", "append")

#: group aliases usable as the ``op`` of a clause.
OP_GROUPS: dict[str, frozenset[str]] = {
    "durable": frozenset(DURABLE_OPS),
    "any": frozenset(FS_OPS),
}

#: fault modes (see module docstring).
FAULT_MODES: tuple[str, ...] = (
    "fail", "torn", "kill", "torn-kill", "delay")

#: operations where ``torn`` keeps its partial-data meaning.
_TEARABLE_OPS = frozenset({"write", "append"})


class ChaosKill(BaseException):
    """The simulated ``kill -9``.

    Deliberately a ``BaseException``: the service worker's broad
    ``except Exception`` job boundary must *not* convert a simulated
    process death into a tidy ``failed`` record -- a real ``kill -9``
    never gets that courtesy.  Only the harness (or a test) catches it.
    """


@dataclass(frozen=True)
class FaultClause:
    """One parsed schedule clause: fault the Nth matching operation."""

    op: str
    index: int
    mode: str = "fail"
    match: str = ""

    def __post_init__(self) -> None:
        if self.op not in FS_OPS and self.op not in OP_GROUPS:
            known = ", ".join(sorted((*FS_OPS, *OP_GROUPS)))
            raise ValueError(
                f"unknown fs operation {self.op!r}; expected one of "
                f"{known}")
        if self.index < 1:
            raise ValueError(
                f"fault index must be >= 1, got {self.index}")
        if self.mode not in FAULT_MODES:
            raise ValueError(
                f"unknown fault mode {self.mode!r}; expected one of "
                f"{', '.join(FAULT_MODES)}")

    def matches(self, op: str, path: str) -> bool:
        """Does an ``op`` call on ``path`` count against this clause?"""
        group = OP_GROUPS.get(self.op)
        if group is not None:
            if op not in group:
                return False
        elif op != self.op:
            return False
        return self.match in path

    def spec(self) -> str:
        """The clause back in schedule-grammar form."""
        target = f"{self.op}@{self.match}" if self.match else self.op
        return f"{target}:{self.index}:{self.mode}"


def parse_fault_schedule(spec: str) -> tuple[FaultClause, ...]:
    """Parse a comma-joined schedule string into clauses."""
    clauses = []
    for raw in spec.split(","):
        raw = raw.strip()
        if not raw:
            continue
        parts = raw.split(":")
        if not 2 <= len(parts) <= 3:
            raise ValueError(
                f"malformed fault clause {raw!r}; use "
                f"op[@substr]:index[:mode]")
        target, match = parts[0], ""
        if "@" in target:
            target, match = target.split("@", 1)
        try:
            index = int(parts[1])
        except ValueError:
            raise ValueError(
                f"malformed fault clause {raw!r}: index {parts[1]!r} "
                f"is not an integer") from None
        mode = parts[2] if len(parts) == 3 else "fail"
        clauses.append(FaultClause(op=target, index=index, mode=mode,
                                   match=match))
    if not clauses:
        raise ValueError(f"empty fault schedule {spec!r}")
    return tuple(clauses)


class FsOps:
    """The real filesystem plane (and the seam's interface).

    Subclasses interpose by overriding :meth:`_before` (called with the
    operation name and target path before every call; may raise, or
    return a torn-mode marker that the write operations honour).
    """

    # -- interposition hook -------------------------------------------
    def _before(self, op: str, path: str | Path) -> str | None:
        return None

    # -- atomic publishes ---------------------------------------------
    def replace(self, src: str | Path, dst: str | Path) -> None:
        self._before("replace", dst)
        os.replace(src, dst)

    def rename(self, src: str | Path, dst: str | Path) -> None:
        self._before("rename", dst)
        os.rename(src, dst)

    def link(self, src: str | Path, dst: str | Path) -> None:
        self._before("link", dst)
        os.link(src, dst)

    def unlink(self, path: str | Path, missing_ok: bool = False) -> None:
        self._before("unlink", path)
        Path(path).unlink(missing_ok=missing_ok)

    # -- data writes ---------------------------------------------------
    def write_bytes(self, path: str | Path, data: bytes) -> None:
        """Plain (non-atomic) write -- staging files only."""
        action = self._before("write", path)
        if action in ("torn", "torn-kill"):
            data = data[:max(1, len(data) // 2)]
        with open(path, "wb") as handle:
            handle.write(data)
            handle.flush()
        if action == "torn-kill":
            raise ChaosKill(f"chaos: killed after torn write of {path}")

    def write_text(self, path: str | Path, text: str) -> None:
        self.write_bytes(path, text.encode("utf-8"))

    def append_text(self, path: str | Path, text: str) -> None:
        action = self._before("append", path)
        if action in ("torn", "torn-kill"):
            text = text[:max(1, len(text) // 2)]
        with open(path, "a") as handle:
            handle.write(text)
        if action == "torn-kill":
            raise ChaosKill(f"chaos: killed after torn append to {path}")

    # -- creation / flags ---------------------------------------------
    def create_exclusive(self, path: str | Path, data: bytes) -> bool:
        """``O_CREAT | O_EXCL`` create; False when the file exists."""
        self._before("create", path)
        try:
            fd = os.open(path, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return False
        try:
            os.write(fd, data)
        finally:
            os.close(fd)
        return True

    def touch(self, path: str | Path) -> None:
        self._before("touch", path)
        Path(path).touch()

    def mkdir(self, path: str | Path, parents: bool = False,
              exist_ok: bool = False) -> None:
        self._before("mkdir", path)
        Path(path).mkdir(parents=parents, exist_ok=exist_ok)

    def rmdir(self, path: str | Path) -> None:
        self._before("rmdir", path)
        Path(path).rmdir()

    # -- durability ----------------------------------------------------
    def fsync(self, path: str | Path) -> None:
        self._before("fsync", path)
        fd = os.open(path, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def fsync_dir(self, path: str | Path) -> None:
        """Best-effort directory fsync (platform dependent)."""
        self._before("fsync_dir", path)
        try:
            fd = os.open(path, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform dependent
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform dependent
            pass
        finally:
            os.close(fd)


class ChaosFsOps(FsOps):
    """A fault-scheduled :class:`FsOps` (see module docstring).

    Parameters
    ----------
    schedule:
        Schedule string, pre-parsed clauses, or ``None`` for a purely
        observing plane (useful with ``record=True``).
    delay_s:
        Sleep applied by ``delay``-mode clauses.
    record:
        Keep an ordered log of every operation (``(op, path)``) --
        the harness's write-point enumeration pass.
    sleep:
        Injectable sleeper (tests pass a stub; the default is the
        chaos clock seam).
    """

    def __init__(self, schedule: str | tuple[FaultClause, ...] | None
                 = None, *, delay_s: float = 0.02, record: bool = False,
                 sleep: Callable[[float], None] = clock.sleep) -> None:
        if isinstance(schedule, str):
            self.clauses = parse_fault_schedule(schedule)
        else:
            self.clauses = tuple(schedule or ())
        self.delay_s = float(delay_s)
        self.record = bool(record)
        self._sleep = sleep
        self._lock = threading.Lock()
        self._seen = [0] * len(self.clauses)
        self._log: list[tuple[str, str]] = []
        self._injected: list[dict] = []

    # -- introspection -------------------------------------------------
    @property
    def log(self) -> list[tuple[str, str]]:
        """Copy of the recorded ``(op, path)`` stream."""
        with self._lock:
            return list(self._log)

    @property
    def injected(self) -> list[dict]:
        """Copy of the faults actually fired, in order."""
        with self._lock:
            return list(self._injected)

    def op_counts(self, ops: tuple[str, ...] = DURABLE_OPS
                  ) -> dict[str, int]:
        """How many recorded calls each operation in ``ops`` saw."""
        counts = dict.fromkeys(ops, 0)
        for op, _ in self.log:
            if op in counts:
                counts[op] += 1
        return counts

    # -- the interposition ---------------------------------------------
    def _before(self, op: str, path: str | Path) -> str | None:
        target = str(path)
        with self._lock:
            if self.record:
                self._log.append((op, target))
            mode = self._decide(op, target)
        if mode is None:
            return None
        if mode == "delay":
            self._sleep(self.delay_s)
            return None
        if mode in ("torn", "torn-kill") and op not in _TEARABLE_OPS:
            # tearing is a data-write concept; degrade gracefully
            mode = "fail" if mode == "torn" else "kill"
        if mode == "kill":
            raise ChaosKill(
                f"chaos: simulated kill -9 at {op} of {target}")
        if mode == "fail":
            raise OSError(
                f"chaos: injected {op} failure on {target}")
        return mode  # torn / torn-kill, honoured by the write ops

    def _decide(self, op: str, target: str) -> str | None:
        """Which mode (if any) fires for this call; counters advance
        for every matching clause.  Callers hold the lock."""
        fired: str | None = None
        for slot, clause in enumerate(self.clauses):
            if not clause.matches(op, target):
                continue
            self._seen[slot] += 1
            if fired is None and self._seen[slot] == clause.index:
                fired = clause.mode
                self._injected.append({
                    "clause": clause.spec(), "op": op, "path": target,
                    "mode": clause.mode})
        return fired


# ---------------------------------------------------------------------
# The process-wide default plane.
# ---------------------------------------------------------------------
_default_fs: FsOps = FsOps()
_install_lock = threading.Lock()


def default_fs() -> FsOps:
    """The currently installed filesystem plane."""
    return _default_fs


def install_fs(fs: FsOps | None) -> FsOps:
    """Install ``fs`` process-wide (``None`` restores the real plane);
    returns the previously installed plane."""
    global _default_fs
    with _install_lock:
        previous = _default_fs
        _default_fs = fs if fs is not None else FsOps()
        return previous


@contextmanager
def fs_installed(fs: FsOps) -> Iterator[FsOps]:
    """Temporarily install ``fs`` as the process-wide plane."""
    previous = install_fs(fs)
    try:
        yield fs
    finally:
        install_fs(previous)
