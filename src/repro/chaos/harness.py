"""Crash-consistency harness for the job service.

The harness answers one question exhaustively: *is there any durable
write in a job's lifecycle where dying loses data?*  It runs a
reference job on a clean filesystem plane, records every filesystem
operation the lifecycle performs (:class:`~repro.chaos.fsops.ChaosFsOps`
with ``record=True``), then replays the same job once per enumerated
write point with a deterministic fault injected exactly there --
simulated ``kill -9``, injected ``OSError``, or a torn write cut short
by a crash.  After each fault the daemon is "restarted" (a fresh
:class:`~repro.service.server.ServiceDaemon` over the same state tree
runs its recovery scan) and driven to quiescence, and the invariants
are checked:

* **No acked job is lost.**  Every job id the submit call returned is
  still loadable and lands in a terminal state -- ``done`` with a
  result bit-identical to the reference run, or ``dead`` with its
  error and attempt history preserved.
* **No double-charged simulations.**  A ``done`` record reports
  exactly the reference simulation count: recovery resumed from a
  checkpoint instead of silently re-running (and re-billing) work.
* **The result cache never serves torn values.**  Reading the cache
  entry either misses cleanly or returns the reference estimate;
  it never raises and never returns different numbers.
* **Duplicate submits stay free.**  Once the job is ``done``,
  re-submitting the same spec is a pure cache hit.

Each case is one process-internal "crash": :class:`ChaosKill` unwinds
the synchronous drive loop the way ``kill -9`` leaves the disk, and
injected ``OSError`` exercises the worker's failure/retry path.  Entry
points: :func:`run_harness` (library) and ``python -m repro.chaos``
(CLI; the CI ``service-chaos`` job runs ``--quick``).
"""

from __future__ import annotations

import shutil
from dataclasses import dataclass, field
from pathlib import Path

from repro.chaos import clock
from repro.chaos.fsops import (
    DURABLE_OPS,
    ChaosFsOps,
    ChaosKill,
    FaultClause,
    install_fs,
)
from repro.errors import ServiceError
from repro.service.model import JobState
from repro.service.server import ServeConfig, ServiceDaemon
from repro.service.spec import JobSpec

#: the default workload: small enough for CI, yet crossing several
#: checkpoint publishes, event appends and record replaces.
DEFAULT_SPEC = JobSpec(kind="naive", n_samples=1500, seed=13,
                       target_relative_error=1e-9, checkpoint_every=500)

#: scheduler pops allowed per drive (a retry loop that does not
#: converge within this budget is itself a failure).
_DRIVE_BUDGET = 50

#: fault modes exercised per write point.  ``torn-kill`` only makes
#: sense where partial data can land (appends; on ``replace``/
#: ``rename`` it degrades to a duplicate ``kill``), so it is applied
#: selectively in :func:`enumerate_cases`.
QUICK_MODES = ("kill",)
FULL_MODES = ("kill", "fail")


@dataclass(frozen=True)
class WritePoint:
    """One durable filesystem operation observed in the recording."""

    op: str
    path: str
    ordinal: int  # 1-based ordinal among calls of this op

    def clause(self, mode: str) -> FaultClause:
        return FaultClause(op=self.op, index=self.ordinal, mode=mode)


@dataclass(frozen=True)
class CaseResult:
    """Outcome of one fault-injection case."""

    clause: str
    path: str
    ok: bool
    outcome: str  # done-identical | dead | unacked | violation
    detail: str = ""


@dataclass
class HarnessReport:
    """Everything one harness run established."""

    reference_pfail: float
    reference_simulations: int
    write_points: int
    cases: list[CaseResult] = field(default_factory=list)

    @property
    def passed(self) -> bool:
        return all(case.ok for case in self.cases)

    @property
    def violations(self) -> list[CaseResult]:
        return [case for case in self.cases if not case.ok]


def _fresh_daemon(root: Path) -> ServiceDaemon:
    """A daemon core (no HTTP/worker threads) over ``root``."""
    return ServiceDaemon(ServeConfig(root=root, port=0, workers=1))


def _drive(daemon: ServiceDaemon) -> None:
    """Run queued jobs synchronously until the scheduler drains.

    Mirrors the worker loop's exception boundary: estimator/injected
    failures are settled durably (retry or dead-letter); only
    :class:`ChaosKill` escapes, because a real ``kill -9`` would.
    """
    for _ in range(_DRIVE_BUDGET):
        job_id = daemon.scheduler.pop(0)
        if job_id is None:
            return
        try:
            daemon._run_job(job_id)
        except ChaosKill:
            raise
        except Exception as exc:  # repro: allow-broad-except
            # the worker-loop boundary: settle and keep draining
            daemon._note_worker_error(job_id, exc)
    raise RuntimeError(
        f"drive did not converge within {_DRIVE_BUDGET} pops")


def _recover_and_drive(root: Path) -> ServiceDaemon:
    """The restarted daemon: recovery scan, then drain the queue."""
    daemon = _fresh_daemon(root)
    for job_id in daemon.store.recover(clock.now()):
        record = daemon.store.load(job_id)
        daemon.scheduler.submit(job_id, record.spec.priority)
    _drive(daemon)
    return daemon


def record_write_points(root: Path,
                        spec: JobSpec) -> tuple[list[WritePoint], dict]:
    """Enumerate every durable write in one clean job lifecycle.

    Runs the reference job under a purely observing chaos plane and
    returns the durable write points plus the reference result
    (``pfail``, ``n_simulations``, ``fingerprint``).
    """
    plane = ChaosFsOps(record=True)
    previous = install_fs(plane)
    try:
        daemon = _fresh_daemon(root / "reference")
        record = daemon.submit(spec.as_dict())
        _drive(daemon)
        done = daemon.store.load(record.id)
    finally:
        install_fs(previous)
    if done.state is not JobState.DONE:
        raise RuntimeError(
            f"reference run did not complete: {done.state.value} "
            f"({done.error})")
    ordinals: dict[str, int] = dict.fromkeys(DURABLE_OPS, 0)
    points = []
    for op, path in plane.log:
        if op not in ordinals:
            continue
        ordinals[op] += 1
        points.append(WritePoint(op=op, path=path,
                                 ordinal=ordinals[op]))
    reference = {"pfail": done.pfail,
                 "n_simulations": done.n_simulations,
                 "fingerprint": done.fingerprint}
    return points, reference


def enumerate_cases(points: list[WritePoint],
                    quick: bool) -> list[tuple[WritePoint, str]]:
    """The (write point, fault mode) grid one harness run covers."""
    modes = QUICK_MODES if quick else FULL_MODES
    cases = [(point, mode) for point in points for mode in modes]
    if not quick:
        # torn writes cut short by a crash -- only appends can tear
        cases.extend((point, "torn-kill") for point in points
                     if point.op == "append")
    return cases


def _check_invariants(daemon: ServiceDaemon, acked_id: str | None,
                      spec: JobSpec, reference: dict) -> CaseResult:
    """Apply the module-docstring invariants to a recovered tree."""
    def violation(detail: str) -> CaseResult:
        return CaseResult(clause="", path="", ok=False,
                          outcome="violation", detail=detail)

    # the cache never serves torn values
    try:
        cached = daemon.store.load_result(reference["fingerprint"])
    except ServiceError as exc:
        return violation(f"result cache corrupt after crash: {exc}")
    if cached is not None and cached.pfail != reference["pfail"]:
        return violation(
            f"result cache drifted: {cached.pfail!r} != "
            f"{reference['pfail']!r}")

    if acked_id is None:
        # crash before the submit was acknowledged: nothing promised,
        # so the only requirement is that a fresh submit still works
        record = daemon.submit(spec.as_dict())
        _drive(daemon)
        final = daemon.store.load(record.id)
        if final.state is not JobState.DONE \
                or final.pfail != reference["pfail"]:
            return violation(
                f"post-crash resubmit broken: {final.state.value} "
                f"pfail={final.pfail!r}")
        return CaseResult(clause="", path="", ok=True,
                          outcome="unacked")

    try:
        final = daemon.store.load(acked_id)
    except ServiceError as exc:
        return violation(f"acked job {acked_id} lost: {exc}")
    if final.state is JobState.DEAD:
        if final.error is None or not final.history:
            return violation(
                f"dead job {acked_id} lost its error/history")
        return CaseResult(clause="", path="", ok=True, outcome="dead",
                          detail=final.error)
    if final.state is not JobState.DONE:
        return violation(
            f"acked job {acked_id} stranded in {final.state.value}")
    if final.pfail != reference["pfail"]:
        return violation(
            f"result drifted: {final.pfail!r} != "
            f"{reference['pfail']!r}")
    if final.n_simulations != reference["n_simulations"]:
        return violation(
            f"simulations double-charged: {final.n_simulations} != "
            f"{reference['n_simulations']}")
    # duplicate submits stay free
    duplicate = daemon.submit(spec.as_dict())
    if not duplicate.cached or duplicate.pfail != reference["pfail"]:
        return violation("duplicate submit was not a pure cache hit")
    return CaseResult(clause="", path="", ok=True,
                      outcome="done-identical")


def run_case(root: Path, spec: JobSpec, point: WritePoint, mode: str,
             reference: dict) -> CaseResult:
    """One crash: inject ``mode`` at ``point``, restart, check."""
    clause = point.clause(mode)
    plane = ChaosFsOps((clause,))
    previous = install_fs(plane)
    acked_id: str | None = None
    try:
        daemon = _fresh_daemon(root)
        try:
            record = daemon.submit(spec.as_dict())
            acked_id = record.id
            _drive(daemon)
        except ChaosKill:
            pass  # the simulated dead process; its memory is gone
        except (OSError, ServiceError):
            pass  # injected failure surfaced before the job was acked
    finally:
        install_fs(previous)
    recovered = _recover_and_drive(root)
    result = _check_invariants(recovered, acked_id, spec, reference)
    tail = Path(point.path).name
    return CaseResult(clause=clause.spec(), path=tail, ok=result.ok,
                      outcome=result.outcome, detail=result.detail)


def run_harness(root: str | Path, spec: JobSpec | None = None,
                quick: bool = False,
                progress=None) -> HarnessReport:
    """Full harness sweep under ``root`` (a scratch directory).

    ``progress`` (optional) is called with one line per finished case.
    """
    root = Path(root)
    spec = spec if spec is not None else DEFAULT_SPEC
    points, reference = record_write_points(root, spec)
    report = HarnessReport(reference_pfail=reference["pfail"],
                           reference_simulations=reference[
                               "n_simulations"],
                           write_points=len(points))
    for index, (point, mode) in enumerate(
            enumerate_cases(points, quick=quick)):
        case_root = root / f"case-{index:03d}"
        result = run_case(case_root / "state", spec, point, mode,
                          reference)
        report.cases.append(result)
        if progress is not None:
            status = "ok " if result.ok else "FAIL"
            progress(f"[{status}] {result.clause:<24} "
                     f"{result.path:<28} {result.outcome}"
                     + (f": {result.detail}" if result.detail else ""))
        shutil.rmtree(case_root, ignore_errors=True)
    return report
