"""Crash-safe checkpoint/resume for long estimation campaigns.

A run killed at any checkpoint boundary and resumed from disk produces
a bit-identical :class:`~repro.core.estimate.FailureEstimate` (pfail,
simulation counts, trace) to the uninterrupted run, on every
:mod:`repro.runtime` backend.  See ``docs/CHECKPOINT.md`` for the
on-disk format and the guarantees.
"""

from repro.checkpoint.atomic import atomic_write_bytes, atomic_write_text
from repro.checkpoint.codec import decode_state, encode_state
from repro.checkpoint.config import CheckpointConfig, parse_every
from repro.checkpoint.integrate import run_checkpointed
from repro.checkpoint.lockfile import FileLock, LockTimeout
from repro.checkpoint.manager import Checkpointable, CheckpointManager
from repro.checkpoint.store import SCHEMA_VERSION, CheckpointStore
from repro.checkpoint.trigger import CheckpointTrigger
from repro.errors import CheckpointCrash, CheckpointError

__all__ = [
    "SCHEMA_VERSION",
    "Checkpointable",
    "CheckpointConfig",
    "CheckpointCrash",
    "CheckpointError",
    "CheckpointManager",
    "CheckpointStore",
    "CheckpointTrigger",
    "FileLock",
    "LockTimeout",
    "atomic_write_bytes",
    "atomic_write_text",
    "decode_state",
    "encode_state",
    "parse_every",
    "run_checkpointed",
]
