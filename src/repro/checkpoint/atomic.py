"""Atomic filesystem publication primitives.

Everything the checkpoint subsystem (and the JSON result persistence)
puts on disk goes through these helpers: content is written to a
temporary sibling, flushed and fsynced, then published with a single
``os.replace``/``os.rename`` -- so a reader never observes a partially
written file, and a crash mid-write leaves only a ``.tmp`` orphan that
is ignored (and cleaned up) by the next run.
"""

from __future__ import annotations

import os
from pathlib import Path

#: suffix marking unpublished temporaries; readers must skip these.
TMP_PREFIX = ".tmp-"


def _fsync_dir(directory: Path) -> None:
    """Flush a directory entry so a rename survives power loss.

    Best effort: some filesystems (and platforms) refuse to open
    directories; losing the fsync only weakens crash durability, never
    atomicity, so those errors are ignored.
    """
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:  # pragma: no cover - platform dependent
        return
    try:
        os.fsync(fd)
    except OSError:  # pragma: no cover - platform dependent
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> None:
    """Write ``data`` to ``path`` atomically (write-temp-then-rename).

    An existing file at ``path`` is replaced in one step; concurrent
    readers see either the old content or the new, never a mixture.
    """
    path = Path(path)
    tmp = path.parent / f"{TMP_PREFIX}{path.name}.{os.getpid()}"
    with open(tmp, "wb") as handle:
        handle.write(data)
        handle.flush()
        os.fsync(handle.fileno())
    try:
        os.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    _fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str) -> None:
    """Atomic UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"))


def publish_dir(tmp_dir: str | Path, final_dir: str | Path) -> None:
    """Atomically publish a fully-written staging directory.

    ``tmp_dir`` must be a sibling of ``final_dir`` (same filesystem);
    the rename either installs the complete directory or nothing.
    """
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    os.rename(tmp_dir, final_dir)
    _fsync_dir(final_dir.parent)


def fsync_file(path: str | Path) -> None:
    """fsync an already-written file (staging-directory contents)."""
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)
