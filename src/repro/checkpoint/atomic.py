"""Atomic filesystem publication primitives.

Everything the checkpoint subsystem (and the JSON result persistence)
puts on disk goes through these helpers: content is written to a
temporary sibling, flushed and fsynced, then published with a single
``os.replace``/``os.rename`` -- so a reader never observes a partially
written file, and a crash mid-write leaves only a ``.tmp`` orphan that
is ignored (and cleaned up) by the next run.

Every filesystem touch routes through an :class:`~repro.chaos.fsops`
plane: callers may pass an explicit ``fs`` (tests), or install one
process-wide (``repro.chaos.fsops.install_fs``) to drive the whole
stack -- result cache included -- through a deterministic fault
schedule.  The default plane is the real filesystem and adds no
overhead beyond one attribute lookup.
"""

from __future__ import annotations

import os
from pathlib import Path

from repro.chaos.fsops import FsOps, default_fs

#: suffix marking unpublished temporaries; readers must skip these.
TMP_PREFIX = ".tmp-"


def atomic_write_bytes(path: str | Path, data: bytes,
                       fs: FsOps | None = None) -> None:
    """Write ``data`` to ``path`` atomically (write-temp-then-rename).

    An existing file at ``path`` is replaced in one step; concurrent
    readers see either the old content or the new, never a mixture.
    """
    plane = fs if fs is not None else default_fs()
    path = Path(path)
    tmp = path.parent / f"{TMP_PREFIX}{path.name}.{os.getpid()}"
    plane.write_bytes(tmp, data)
    plane.fsync(tmp)
    try:
        plane.replace(tmp, path)
    except OSError:
        tmp.unlink(missing_ok=True)
        raise
    plane.fsync_dir(path.parent)


def atomic_write_text(path: str | Path, text: str,
                      fs: FsOps | None = None) -> None:
    """Atomic UTF-8 text variant of :func:`atomic_write_bytes`."""
    atomic_write_bytes(path, text.encode("utf-8"), fs=fs)


def publish_dir(tmp_dir: str | Path, final_dir: str | Path,
                fs: FsOps | None = None) -> None:
    """Atomically publish a fully-written staging directory.

    ``tmp_dir`` must be a sibling of ``final_dir`` (same filesystem);
    the rename either installs the complete directory or nothing.
    """
    plane = fs if fs is not None else default_fs()
    tmp_dir, final_dir = Path(tmp_dir), Path(final_dir)
    plane.rename(tmp_dir, final_dir)
    plane.fsync_dir(final_dir.parent)


def fsync_file(path: str | Path, fs: FsOps | None = None) -> None:
    """fsync an already-written file (staging-directory contents)."""
    plane = fs if fs is not None else default_fs()
    plane.fsync(path)
