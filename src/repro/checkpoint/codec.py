"""State-tree codec: split a snapshot into a JSON payload + array pack.

Estimator snapshots are nested trees of builtin scalars, lists, dicts
and numpy arrays.  JSON handles everything except the arrays exactly
(Python's float repr round-trips bit-identically; ints are arbitrary
precision), so the codec replaces every ndarray leaf with a named
placeholder and collects the arrays into a side table destined for one
``.npz`` file.  Decoding re-inlines the arrays.

The type policy is deliberately strict: anything outside the supported
set raises :class:`~repro.errors.CheckpointError` at *save* time, so a
snapshot that writes successfully is guaranteed to load.
"""

from __future__ import annotations

import numpy as np

from repro.errors import CheckpointError

#: reserved dict key marking an extracted-array placeholder.
ARRAY_KEY = "__ndarray__"

_SCALARS = (str, bool, int, float, type(None))


def encode_state(tree: object) -> tuple[object, dict[str, np.ndarray]]:
    """Extract ndarrays from ``tree``; return (payload, arrays).

    ``payload`` is JSON-serialisable; ``arrays`` maps generated names
    (``"a0"``, ``"a1"``, ...) to the extracted arrays, in deterministic
    depth-first order.  Tuples are encoded as lists (JSON has no tuple),
    so :func:`decode_state` returns lists where tuples went in --
    snapshot producers must not rely on tuple identity.
    """
    arrays: dict[str, np.ndarray] = {}
    payload = _encode(tree, arrays, path="$")
    return payload, arrays


def _encode(node: object, arrays: dict[str, np.ndarray],
            path: str) -> object:
    if isinstance(node, np.ndarray):
        name = f"a{len(arrays)}"
        if node.dtype == object:
            raise CheckpointError(
                f"object-dtype array at {path} cannot be checkpointed")
        arrays[name] = node
        return {ARRAY_KEY: name}
    if isinstance(node, np.generic):
        # numpy scalars degrade exactly to their Python equivalents.
        return _encode(node.item(), arrays, path)
    if isinstance(node, bool) or node is None or isinstance(node, str):
        return node
    if isinstance(node, int):
        return node
    if isinstance(node, float):
        if not np.isfinite(node):
            # json.dump would emit non-standard NaN/Infinity tokens.
            raise CheckpointError(
                f"non-finite float {node!r} at {path} cannot be "
                f"checkpointed")
        return node
    if isinstance(node, (list, tuple)):
        return [_encode(item, arrays, f"{path}[{i}]")
                for i, item in enumerate(node)]
    if isinstance(node, dict):
        out = {}
        for key, value in node.items():
            if not isinstance(key, str):
                raise CheckpointError(
                    f"non-string dict key {key!r} at {path}")
            if key == ARRAY_KEY:
                raise CheckpointError(
                    f"reserved key {ARRAY_KEY!r} used at {path}")
            out[key] = _encode(value, arrays, f"{path}.{key}")
        return out
    raise CheckpointError(
        f"unsupported type {type(node).__name__} at {path}")


def decode_state(payload: object,
                 arrays: dict[str, np.ndarray]) -> object:
    """Inverse of :func:`encode_state` (tuples come back as lists)."""
    return _decode(payload, arrays, path="$")


def _decode(node: object, arrays: dict[str, np.ndarray],
            path: str) -> object:
    if isinstance(node, dict):
        if set(node) == {ARRAY_KEY}:
            name = node[ARRAY_KEY]
            try:
                return arrays[name]
            except KeyError:
                raise CheckpointError(
                    f"payload references missing array {name!r} at "
                    f"{path}") from None
        return {key: _decode(value, arrays, f"{path}.{key}")
                for key, value in node.items()}
    if isinstance(node, list):
        return [_decode(item, arrays, f"{path}[{i}]")
                for i, item in enumerate(node)]
    if isinstance(node, _SCALARS):
        return node
    raise CheckpointError(
        f"unsupported type {type(node).__name__} in payload at {path}")
