"""User-facing checkpoint configuration (CLI surface).

One frozen :class:`CheckpointConfig` describes the checkpoint policy of
a whole experiment invocation; each estimator run inside it gets its
own subdirectory via :meth:`CheckpointConfig.manager`, so e.g. fig. 7's
three runs never mix snapshots.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.checkpoint.manager import CheckpointManager


def parse_every(spec: str) -> tuple[int | None, float | None]:
    """Parse a ``--checkpoint-every`` value.

    ``"5000"`` means every 5000 simulations; ``"30s"`` means every 30
    seconds (fractional allowed).  Returns
    ``(every_simulations, every_seconds)``.
    """
    text = spec.strip().lower()
    if not text:
        raise ValueError("empty --checkpoint-every value")
    try:
        if text.endswith("s"):
            seconds = float(text[:-1])
            if seconds <= 0:
                raise ValueError
            return None, seconds
        sims = int(text)
        if sims < 1:
            raise ValueError
        return sims, None
    except ValueError:
        raise ValueError(
            f"invalid --checkpoint-every value {spec!r}; use a "
            f"simulation count like '5000' or a duration like "
            f"'30s'") from None


@dataclass(frozen=True)
class CheckpointConfig:
    """Checkpoint policy for one experiment invocation.

    Attributes
    ----------
    directory:
        Root directory; each named run becomes a subdirectory.
    every_simulations, every_seconds:
        Cadence thresholds; both ``None`` snapshots every boundary.
    keep:
        Snapshots retained per run.
    resume:
        Restore from the newest snapshot (and reuse completed
        results) instead of starting fresh.
    crash_after:
        Test-only: inject a :class:`~repro.errors.CheckpointCrash`
        after the N-th durable save (counted per invocation, across
        runs).
    """

    directory: Path
    every_simulations: int | None = 5000
    every_seconds: float | None = None
    keep: int = 3
    resume: bool = False
    crash_after: int | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "directory", Path(self.directory))
        if self.keep < 1:
            raise ValueError(f"keep must be >= 1, got {self.keep}")

    def scoped(self, name: str) -> Path:
        """Directory for the run called ``name``."""
        if not name or "/" in name or name.startswith("."):
            raise ValueError(f"invalid run name {name!r}")
        return self.directory / name

    def manager(self, name: str,
                crash_budget: list[int] | None = None
                ) -> CheckpointManager:
        """Build the manager for run ``name``.

        ``crash_budget`` is a single-element mutable cell carrying how
        many saves remain before the injected crash; it lets one
        ``--crash-after-checkpoints N`` span the several sequential
        runs of a campaign (each run consumes the saves it makes).
        """
        crash_after = self.crash_after
        if crash_budget is not None:
            crash_after = crash_budget[0] if crash_budget[0] >= 1 else None
        return CheckpointManager(
            self.scoped(name),
            every_simulations=self.every_simulations,
            every_seconds=self.every_seconds,
            keep=self.keep,
            crash_after=crash_after)
