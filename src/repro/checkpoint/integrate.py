"""Glue between experiments and the checkpoint machinery.

:func:`run_checkpointed` wraps one named estimator run with the full
resume protocol:

1. already-finished run (``result.json`` present, ``resume``): restore
   the final snapshot (so downstream runs can reuse boundary/classifier
   state) and return the saved result without spending simulations;
2. interrupted run: restore the newest snapshot and continue;
3. fresh run: start from scratch.

In every case the final estimator state is snapshotted *before* the
result file is written, so the "finished" state on disk is always
restorable.
"""

from __future__ import annotations

from typing import Any

from repro.checkpoint.config import CheckpointConfig


def run_checkpointed(cp: CheckpointConfig | None, name: str,
                     estimator: Any, *,
                     crash_budget: list[int] | None = None,
                     **run_kwargs: Any) -> Any:
    """Run ``estimator.run(**run_kwargs)`` under checkpoint policy
    ``cp``; with ``cp=None`` this is a plain ``estimator.run``.

    ``crash_budget`` (a single-element list) threads one
    ``--crash-after-checkpoints`` countdown across the sequential runs
    of a campaign; the element is decremented by the saves this run
    performs.
    """
    if cp is None:
        return estimator.run(**run_kwargs)

    manager = cp.manager(name, crash_budget=crash_budget)
    try:
        if cp.resume:
            result = manager.load_result()
            if result is not None:
                manager.restore_into(estimator)
                return result
            manager.restore_into(estimator)
        estimate = estimator.run(checkpoint=manager, **run_kwargs)
        # Final state first, result second: a consumer that finds the
        # result can always also restore the finished estimator (fig. 7b
        # and the bias sweep reuse its boundary/classifier that way).
        manager.save_final(estimator, estimate.n_simulations)
        manager.save_result(estimate)
        return estimate
    finally:
        if crash_budget is not None:
            crash_budget[0] -= manager.saves
