"""Advisory lock files for stores shared between processes.

The service daemon runs several jobs concurrently, and two jobs may
legitimately share an on-disk store (a common solve-cache directory, or
-- after an operator mistake -- one checkpoint root).  Every individual
write is already atomic (temp-then-rename), but *compound* operations
are not: ``CheckpointStore.save`` picks the next free index and then
publishes it, and ``prune`` deletes directories it listed a moment
earlier.  Interleaving a prune with a publish can delete the snapshot
the other process just wrote, or allocate the same index twice.

:class:`FileLock` closes that window with the portable
``O_CREAT | O_EXCL`` idiom: the lock file is created atomically, carries
the owner's pid, and is removed on release.  Liveness is preserved by
*stale-lock breaking* -- a lock whose owner pid no longer exists is
removed by the next acquirer, so a ``kill -9``'d job never wedges the
store (the daemon's whole durability story assumes hard kills).
"""

from __future__ import annotations

import itertools
import os
import time
from pathlib import Path

from repro.chaos.fsops import FsOps, default_fs
from repro.errors import CheckpointError

#: per-process uniquifier for break-aside file names (pid + counter is
#: unique across processes too, since the pid is embedded in the name).
_BREAK_SEQ = itertools.count()


class LockTimeout(CheckpointError):
    """Raised when a lock cannot be acquired within the timeout."""


class FileLock:
    """An exclusive advisory lock backed by an ``O_EXCL``-created file.

    Parameters
    ----------
    path:
        Lock-file location (conventionally ``<store>/.lock``).
    timeout_s:
        How long :meth:`acquire` polls before raising
        :class:`LockTimeout`.
    poll_s:
        Sleep between acquisition attempts.
    fs:
        Filesystem plane for every mutation (create, break-aside
        rename/link, release unlink); ``None`` resolves the
        process-wide default at each call, so an installed chaos plane
        reaches locks constructed earlier.

    Re-entrant within one instance (a held lock counts acquisitions),
    so a locked compound operation may call another locked helper.
    """

    def __init__(self, path: str | Path, timeout_s: float = 30.0,
                 poll_s: float = 0.02, fs: FsOps | None = None) -> None:
        if timeout_s <= 0:
            raise ValueError(f"timeout_s must be > 0, got {timeout_s}")
        self.path = Path(path)
        self.timeout_s = float(timeout_s)
        self.poll_s = float(poll_s)
        self._fs = fs
        self._depth = 0

    @property
    def fs(self) -> FsOps:
        return self._fs if self._fs is not None else default_fs()

    # -- acquisition ---------------------------------------------------
    def acquire(self) -> "FileLock":
        """Block until the lock is held; breaks stale locks."""
        if self._depth > 0:
            self._depth += 1
            return self
        deadline = time.monotonic() + self.timeout_s
        while True:
            if self._try_create():
                self._depth = 1
                return self
            self._break_if_stale()
            if time.monotonic() >= deadline:
                raise LockTimeout(
                    f"could not acquire {self.path} within "
                    f"{self.timeout_s:.1f}s (held by pid "
                    f"{self._owner_pid()!r}); remove the file if the "
                    f"owner is gone")
            time.sleep(self.poll_s)

    def release(self) -> None:
        """Drop the lock (outermost release deletes the file)."""
        if self._depth == 0:
            return
        self._depth -= 1
        if self._depth == 0:
            try:
                self.fs.unlink(self.path)
            except FileNotFoundError:  # broken as stale; nothing to do
                pass

    @property
    def held(self) -> bool:
        return self._depth > 0

    def __enter__(self) -> "FileLock":
        return self.acquire()

    def __exit__(self, *exc: object) -> None:
        self.release()

    # -- internals -----------------------------------------------------
    def _try_create(self) -> bool:
        self.path.parent.mkdir(parents=True, exist_ok=True)
        return self.fs.create_exclusive(
            self.path, str(os.getpid()).encode())

    def _owner_pid(self) -> int | None:
        try:
            return int(self.path.read_text().strip())
        except (OSError, ValueError):
            return None

    def _break_if_stale(self) -> None:
        """Remove the lock if its recorded owner is no longer alive.

        A torn lock file (created but not yet written) reads as owner
        ``None`` and is left alone -- its creator is mid-acquire and
        will fill it in momentarily.

        Breaking never unlinks the lock path directly: between reading
        the dead pid and an unlink, another waiter may already have
        broken the stale lock and a *live* owner acquired a fresh one,
        so an in-place unlink could destroy a held lock.  Instead the
        file is renamed aside atomically (exactly one waiter wins the
        rename), its owner re-checked in the renamed file, and only a
        confirmed-dead owner is discarded; anything else is restored
        with ``link`` (which refuses to clobber a lock created in the
        meantime).
        """
        pid = self._owner_pid()
        if pid is None or pid == os.getpid() or _pid_alive(pid):
            return
        aside = self.path.with_name(
            f"{self.path.name}.break-{os.getpid()}-{next(_BREAK_SEQ)}")
        try:
            self.fs.rename(self.path, aside)
        except OSError:  # gone: another waiter broke it first, or the
            return       # fault plane vetoed the break -- retry later
        try:
            owner = int(aside.read_text().strip())
        except (OSError, ValueError):
            owner = None
        if owner is not None and not _pid_alive(owner):
            # Confirmed stale -- the lock is broken; the next O_EXCL
            # create wins it.
            aside.unlink(missing_ok=True)
            return
        # We renamed a different file than the one we inspected: a live
        # owner re-acquired after someone else broke the stale lock, or
        # a mid-acquire creator has not written its pid yet.  Restore
        # it; if a third waiter slipped a new lock in during this
        # microsecond window the link fails and the aside copy is
        # dropped (best effort -- the window requires two back-to-back
        # lost races and is vanishingly small).
        try:
            self.fs.link(aside, self.path)
        except OSError:
            pass
        aside.unlink(missing_ok=True)


def _pid_alive(pid: int) -> bool:
    """True when ``pid`` names a live process we could signal."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:  # pragma: no cover - alive, different user
        return True
    return True
