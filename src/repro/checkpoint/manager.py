"""Checkpoint manager: the object estimators actually talk to.

A :class:`CheckpointManager` binds together a store (where), a trigger
(when), a retention policy (how many) and the optional crash injector
used by the kill/resume test harness.  Estimators call
:meth:`maybe_save` at every safe boundary; the manager decides whether
that boundary becomes a durable snapshot.
"""

from __future__ import annotations

from pathlib import Path
from typing import Any, Callable, Protocol, runtime_checkable

from repro.checkpoint.codec import decode_state, encode_state
from repro.checkpoint.store import CheckpointStore
from repro.checkpoint.trigger import CheckpointTrigger
from repro.errors import CheckpointCrash, CheckpointError, ShutdownRequested
from repro.runtime.signals import default_coordinator


@runtime_checkable
class Checkpointable(Protocol):
    """What an estimator must provide to be checkpointed."""

    def state_snapshot(self) -> dict: ...

    def restore_state(self, state: dict) -> None: ...

    def fingerprint(self) -> str: ...


class CheckpointManager:
    """Periodic, crash-safe snapshotting for one estimator run.

    Parameters
    ----------
    directory:
        Root of the checkpoint tree for this run.
    every_simulations, every_seconds:
        Cadence thresholds (see :class:`CheckpointTrigger`).  Both
        ``None`` means snapshot at every boundary.
    keep:
        Retention: how many published snapshots to keep on disk.
    crash_after:
        Test-only crash injector: raise
        :class:`~repro.errors.CheckpointCrash` immediately after the
        N-th durable save of this manager's lifetime.
    """

    def __init__(self, directory: str | Path,
                 every_simulations: int | None = None,
                 every_seconds: float | None = None,
                 keep: int = 3,
                 crash_after: int | None = None) -> None:
        if crash_after is not None and crash_after < 1:
            raise ValueError(
                f"crash_after must be >= 1, got {crash_after}")
        self.store = CheckpointStore(directory)
        self.trigger = CheckpointTrigger(every_simulations, every_seconds)
        self.keep = keep
        self.crash_after = crash_after
        self.saves = 0
        #: optional per-run interrupt hook returning a reason string
        #: when the run should stop at the next safe boundary (job
        #: cancellation in :mod:`repro.service`); the process-wide
        #: signal coordinator is consulted as well.
        self.interrupt: Callable[[], str | None] | None = None
        #: optional ``listener(n_simulations, kind)`` called after each
        #: durable save (the service worker streams progress this way).
        self.listener: Callable[[int, str], None] | None = None

    # -- saving --------------------------------------------------------
    def maybe_save(self, estimator: Checkpointable,
                   n_simulations: int) -> bool:
        """Snapshot ``estimator`` if the trigger says this boundary is
        due; returns True when a snapshot was written.

        A pending graceful-shutdown request (process signal via
        :mod:`repro.runtime.signals`, or this manager's
        :attr:`interrupt` hook) overrides the cadence: the boundary is
        force-saved and :class:`~repro.errors.ShutdownRequested` is
        raised *after* the snapshot is durably on disk, so the unwound
        run resumes bit-identically.
        """
        reason = self._interrupt_reason()
        if reason is not None:
            self._save(estimator, n_simulations, kind="periodic")
            self.trigger.mark_fired(n_simulations)
            raise ShutdownRequested(reason)
        if not self.trigger.should_fire(n_simulations):
            return False
        self._save(estimator, n_simulations, kind="periodic")
        self.trigger.mark_fired(n_simulations)
        return True

    def _interrupt_reason(self) -> str | None:
        if self.interrupt is not None:
            reason = self.interrupt()
            if reason is not None:
                return reason
        coordinator = default_coordinator()
        if coordinator.requested:
            return coordinator.reason or "shutdown"
        return None

    def save_final(self, estimator: Checkpointable,
                   n_simulations: int) -> None:
        """Unconditional end-of-run snapshot (kind ``"final"``).

        Written *before* the result file so a consumer that finds a
        result can always also restore the finished estimator state
        (fig. 7/8 reuse the stage-1 boundary and classifier this way).
        """
        self._save(estimator, n_simulations, kind="final")

    def _save(self, estimator: Checkpointable, n_simulations: int,
              kind: str) -> None:
        payload, arrays = encode_state(estimator.state_snapshot())
        self.store.save(payload, arrays,
                        fingerprint=estimator.fingerprint(),
                        step=n_simulations, kind=kind)
        self.store.prune(max(self.keep, 1))
        self.saves += 1
        if self.listener is not None:
            self.listener(int(n_simulations), kind)
        if self.crash_after is not None and self.saves >= self.crash_after:
            raise CheckpointCrash(
                f"injected crash after checkpoint #{self.saves} "
                f"(--crash-after-checkpoints={self.crash_after})")

    # -- resuming ------------------------------------------------------
    def has_checkpoint(self) -> bool:
        return bool(self.store.list_checkpoints())

    def restore_into(self, estimator: Checkpointable) -> dict | None:
        """Restore the newest snapshot into ``estimator``.

        Returns the manifest of the snapshot used, or ``None`` when the
        directory holds no checkpoint yet (fresh start).  Raises
        :class:`CheckpointError` when snapshots exist but none can be
        verified, or the fingerprint does not match.
        """
        loaded = self.store.load_latest(
            expected_fingerprint=estimator.fingerprint())
        if loaded is None:
            return None
        manifest, payload, arrays = loaded
        state = decode_state(payload, arrays)
        if not isinstance(state, dict):
            raise CheckpointError(
                "checkpoint payload is not a state dictionary")
        estimator.restore_state(state)
        return manifest

    # -- results -------------------------------------------------------
    @property
    def result_path(self) -> Path:
        return self.store.root / "result.json"

    def save_result(self, estimate: Any) -> Path:
        """Persist the finished estimate next to the checkpoints."""
        from repro.analysis.persistence import save_estimate

        return save_estimate(estimate, self.result_path, overwrite=True)

    def load_result(self) -> Any | None:
        """The previously completed result, or None if the run never
        finished (or its result file is unreadable)."""
        from repro.analysis.persistence import load_estimate

        if not self.result_path.exists():
            return None
        try:
            return load_estimate(self.result_path)
        except (ValueError, CheckpointError, OSError):
            return None
