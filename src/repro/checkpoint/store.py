"""Versioned on-disk checkpoint store.

Layout, one directory per checkpoint::

    <root>/
        ckpt-00000001/
            manifest.json   # schema, fingerprint, step, checksum, payload
            arrays.npz      # numpy arrays referenced by the payload
        ckpt-00000002/
        ...

A checkpoint is written into a hidden staging directory and published
with a single ``os.rename``, so a directory whose name matches
``ckpt-*`` is always complete.  Loading verifies the schema version and
the npz checksum; :meth:`CheckpointStore.load_latest` walks newest to
oldest and skips snapshots that fail verification, so a torn write (or
bit rot) costs at most one checkpoint interval of work.
"""

from __future__ import annotations

import hashlib
import io
import json
import re
from pathlib import Path

import numpy as np

from repro.chaos.fsops import FsOps, default_fs
from repro.checkpoint.atomic import TMP_PREFIX, fsync_file, publish_dir
from repro.checkpoint.lockfile import FileLock
from repro.checkpoint.trigger import wall_clock_time
from repro.errors import CheckpointError

#: bump when the snapshot layout changes incompatibly.
SCHEMA_VERSION = 1

_CKPT_RE = re.compile(r"^ckpt-(\d{8})$")
_MANIFEST = "manifest.json"
_ARRAYS = "arrays.npz"


def _npz_bytes(arrays: dict[str, np.ndarray]) -> bytes:
    buffer = io.BytesIO()
    np.savez(buffer, **arrays)
    return buffer.getvalue()


class CheckpointStore:
    """Owns one checkpoint directory tree (see module docstring)."""

    def __init__(self, root: str | Path,
                 fs: FsOps | None = None) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._fs = fs
        # Serialises compound operations (index allocation + publish,
        # retention pruning) against other *processes* sharing this
        # directory; single-process writes were always ordered.
        self._lock = FileLock(self.root / ".store.lock", fs=fs)
        self._clean_stale_tmp()

    @property
    def fs(self) -> FsOps:
        """The filesystem plane every durable write routes through."""
        return self._fs if self._fs is not None else default_fs()

    # -- write ---------------------------------------------------------
    def save(self, payload: object, arrays: dict[str, np.ndarray],
             *, fingerprint: str, step: int,
             kind: str = "periodic") -> Path:
        """Durably write one checkpoint; returns its directory.

        ``step`` orders checkpoints (later saves must pass larger
        steps); ``kind`` is ``"periodic"`` or ``"final"``.  The index
        allocation and the publish happen under the store lock, so two
        processes sharing the directory can never claim the same slot
        or prune a snapshot mid-publish.
        """
        with self._lock:
            index = self._next_index()
            final_dir = self.root / f"ckpt-{index:08d}"
            tmp_dir = self.root / f"{TMP_PREFIX}ckpt-{index:08d}"
            self.fs.mkdir(tmp_dir)

            npz = _npz_bytes(arrays)
            manifest = {
                "schema": SCHEMA_VERSION,
                "fingerprint": fingerprint,
                "step": int(step),
                "kind": kind,
                "written_at": wall_clock_time(),
                "arrays_sha256": hashlib.sha256(npz).hexdigest(),
                "payload": payload,
            }
            self.fs.write_bytes(tmp_dir / _ARRAYS, npz)
            fsync_file(tmp_dir / _ARRAYS, fs=self.fs)
            # Inside the unpublished staging dir a plain write is fine;
            # the rename below is the atomicity barrier.
            self.fs.write_text(
                tmp_dir / _MANIFEST,
                json.dumps(manifest, indent=1, sort_keys=True))
            fsync_file(tmp_dir / _MANIFEST, fs=self.fs)
            publish_dir(tmp_dir, final_dir, fs=self.fs)
            return final_dir

    # -- read ----------------------------------------------------------
    def load(self, directory: str | Path
             ) -> tuple[dict, object, dict[str, np.ndarray]]:
        """Load and verify one checkpoint directory.

        Returns ``(manifest, payload, arrays)``; raises
        :class:`CheckpointError` on any corruption or version skew.
        """
        directory = Path(directory)
        manifest_path = directory / _MANIFEST
        try:
            manifest = json.loads(manifest_path.read_text())
        except FileNotFoundError:
            raise CheckpointError(
                f"no manifest in {directory}") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise CheckpointError(
                f"corrupted manifest {manifest_path}: {exc}") from exc
        if not isinstance(manifest, dict):
            raise CheckpointError(
                f"manifest {manifest_path} is not an object")

        schema = manifest.get("schema")
        if not isinstance(schema, int):
            raise CheckpointError(
                f"manifest {manifest_path} missing schema version")
        if schema > SCHEMA_VERSION:
            raise CheckpointError(
                f"checkpoint {directory.name} has schema {schema}, "
                f"newer than this build's {SCHEMA_VERSION}; upgrade "
                f"the repro package to resume it")
        if schema < 1:
            raise CheckpointError(
                f"checkpoint {directory.name} has invalid schema "
                f"{schema}")

        npz_path = directory / _ARRAYS
        try:
            npz = npz_path.read_bytes()
        except FileNotFoundError:
            raise CheckpointError(
                f"checkpoint {directory.name} is missing its array "
                f"pack") from None
        digest = hashlib.sha256(npz).hexdigest()
        if digest != manifest.get("arrays_sha256"):
            raise CheckpointError(
                f"checkpoint {directory.name} failed checksum "
                f"verification (arrays.npz is corrupt)")
        with np.load(io.BytesIO(npz), allow_pickle=False) as pack:
            arrays = {name: pack[name] for name in pack.files}
        return manifest, manifest["payload"], arrays

    def load_latest(self, expected_fingerprint: str | None = None
                    ) -> tuple[dict, object, dict[str, np.ndarray]] | None:
        """Newest verifiable checkpoint, or ``None`` if none exists.

        Corrupt snapshots are skipped (newest first).  A fingerprint
        mismatch is *not* skipped: it means the directory holds state
        for a different problem, which is an operator error.
        """
        candidates = self.list_checkpoints()
        last_error: CheckpointError | None = None
        for directory in reversed(candidates):
            try:
                manifest, payload, arrays = self.load(directory)
            except CheckpointError as exc:
                last_error = exc
                continue
            if (expected_fingerprint is not None
                    and manifest.get("fingerprint")
                    != expected_fingerprint):
                raise CheckpointError(
                    f"checkpoint {directory.name} was written by a "
                    f"different run configuration (fingerprint "
                    f"{manifest.get('fingerprint')!r}, expected "
                    f"{expected_fingerprint!r}); refusing to resume")
            return manifest, payload, arrays
        if last_error is not None:
            raise CheckpointError(
                f"all checkpoints under {self.root} are unreadable; "
                f"newest error: {last_error}")
        return None

    # -- housekeeping --------------------------------------------------
    def list_checkpoints(self) -> list[Path]:
        """Published checkpoint directories, oldest first."""
        found = []
        for entry in self.root.iterdir():
            if entry.is_dir() and _CKPT_RE.match(entry.name):
                found.append(entry)
        return sorted(found)

    def prune(self, keep: int) -> list[Path]:
        """Delete all but the newest ``keep`` checkpoints.

        Lock-guarded: the list-then-delete sequence must not interleave
        with another process's index allocation (see :meth:`save`).
        """
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        with self._lock:
            doomed = self.list_checkpoints()[:-keep]
            for directory in doomed:
                self._rmtree(directory)
            return doomed

    def _next_index(self) -> int:
        existing = self.list_checkpoints()
        if not existing:
            return 1
        match = _CKPT_RE.match(existing[-1].name)
        assert match is not None
        return int(match.group(1)) + 1

    def _clean_stale_tmp(self) -> None:
        for entry in self.root.iterdir():
            if entry.name.startswith(TMP_PREFIX) and entry.is_dir():
                self._rmtree(entry)

    @staticmethod
    def _rmtree(directory: Path) -> None:
        for child in directory.iterdir():
            child.unlink()
        directory.rmdir()
