"""Checkpoint cadence control, and the sanctioned wall-clock reader.

This module is the single place in :mod:`repro.checkpoint` allowed to
touch the wall clock (``repro.lint`` REP002 excludes exactly this file).
Cadence decisions use the monotonic ``perf_counter`` so suspended or
clock-stepped hosts cannot produce negative intervals; the wall-clock
timestamp exists only to label manifests for humans.
"""

from __future__ import annotations

import time


def wall_clock_time() -> float:
    """Unix timestamp for manifest labelling -- never for logic.

    Checkpoint correctness must not depend on this value; it is carried
    in manifests purely so an operator can tell snapshots apart.
    """
    return time.time()


class CheckpointTrigger:
    """Decide *when* to snapshot: every N simulations and/or T seconds.

    With both thresholds ``None`` the trigger fires at every boundary
    offered to it (the behaviour kill/resume tests rely on).  Otherwise
    it fires when either threshold has been crossed since the last save.
    """

    def __init__(self, every_simulations: int | None = None,
                 every_seconds: float | None = None) -> None:
        if every_simulations is not None and every_simulations < 1:
            raise ValueError(
                f"every_simulations must be >= 1, got {every_simulations}")
        if every_seconds is not None and every_seconds <= 0:
            raise ValueError(
                f"every_seconds must be > 0, got {every_seconds}")
        self.every_simulations = every_simulations
        self.every_seconds = every_seconds
        self._last_count = 0
        self._last_time = time.perf_counter()

    def should_fire(self, n_simulations: int) -> bool:
        """True when a snapshot is due at this boundary."""
        if self.every_simulations is None and self.every_seconds is None:
            return True
        if (self.every_simulations is not None
                and n_simulations - self._last_count
                >= self.every_simulations):
            return True
        if (self.every_seconds is not None
                and time.perf_counter() - self._last_time
                >= self.every_seconds):
            return True
        return False

    def mark_fired(self, n_simulations: int) -> None:
        """Reset both thresholds after a successful save."""
        self._last_count = n_simulations
        self._last_time = time.perf_counter()
