"""Experimental configuration: the paper's Table I as typed dataclasses.

The six transistors of the 6T cell are identified by the paper's names::

    L1, L2 -- pMOS loads      (W = 60 nm)
    D1, D2 -- nMOS drivers    (W = 30 nm)
    A1, A2 -- nMOS access     (W = 30 nm)

all with L = 16 nm.  Throughout the package, per-device vectors follow
:data:`DEVICE_ORDER`; :data:`MIRROR_PERMUTATION` maps a vector onto the
electrically mirrored cell (side 1 <-> side 2), which is how the stored-data
symmetry is exploited (see :mod:`repro.rtn.model`).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

import numpy as np

#: Canonical per-device vector ordering.
DEVICE_ORDER: tuple[str, ...] = ("L1", "D1", "A1", "L2", "D2", "A2")

#: Index permutation swapping cell side 1 and side 2.
MIRROR_PERMUTATION: tuple[int, ...] = (3, 4, 5, 0, 1, 2)

#: Device polarity by role: +1 nMOS, -1 pMOS.
DEVICE_POLARITY: dict[str, int] = {
    "L1": -1, "L2": -1, "D1": +1, "D2": +1, "A1": +1, "A2": +1,
}


@dataclass(frozen=True)
class DeviceGeometry:
    """Channel geometry of one transistor [nm]."""

    w_nm: float
    l_nm: float

    def __post_init__(self):
        if self.w_nm <= 0 or self.l_nm <= 0:
            raise ValueError(
                f"geometry must be positive, got W={self.w_nm}, L={self.l_nm}")

    @property
    def area_nm2(self) -> float:
        """Gate area W*L [nm^2]."""
        return self.w_nm * self.l_nm


@dataclass(frozen=True)
class CellGeometry:
    """Geometry of the 6T cell (paper Table I defaults)."""

    load: DeviceGeometry = DeviceGeometry(w_nm=60.0, l_nm=16.0)
    driver: DeviceGeometry = DeviceGeometry(w_nm=30.0, l_nm=16.0)
    access: DeviceGeometry = DeviceGeometry(w_nm=30.0, l_nm=16.0)
    tox_nm: float = 0.95

    def __post_init__(self):
        if self.tox_nm <= 0:
            raise ValueError(f"tox must be positive, got {self.tox_nm}")

    def device(self, name: str) -> DeviceGeometry:
        """Geometry for device ``name`` (one of :data:`DEVICE_ORDER`)."""
        role = _role_of(name)
        return {"L": self.load, "D": self.driver, "A": self.access}[role]

    def geometries(self) -> list[DeviceGeometry]:
        """Per-device geometry following :data:`DEVICE_ORDER`."""
        return [self.device(name) for name in DEVICE_ORDER]


def _role_of(name: str) -> str:
    if name not in DEVICE_ORDER:
        raise KeyError(f"unknown device {name!r}; expected one of "
                       f"{DEVICE_ORDER}")
    return name[0]


@dataclass(frozen=True)
class RtnTimeConstants:
    """Capture/emission time constants in the ON and OFF gate states.

    Units are arbitrary-but-consistent (the paper's Table I gives bare
    numbers); only ratios enter the stationary occupancy.  ``tau_e`` is the
    mean dwell time in the *captured* (high-|Vth|) state, ``tau_c`` the mean
    dwell time in the *empty* state (i.e. mean time to capture), following
    the paper's Section II-D definitions.
    """

    tau_e_on: float = 1.2
    tau_e_off: float = 0.1
    tau_c_on: float = 0.01
    tau_c_off: float = 0.12

    def __post_init__(self):
        for label, value in (("tau_e_on", self.tau_e_on),
                             ("tau_e_off", self.tau_e_off),
                             ("tau_c_on", self.tau_c_on),
                             ("tau_c_off", self.tau_c_off)):
            if value <= 0:
                raise ValueError(f"{label} must be positive, got {value}")

    def tau_c(self, on_fraction):
        """Duty-averaged capture time constant, paper eq. (7)."""
        a = np.asarray(on_fraction, dtype=float)
        _check_fraction(a, "on_fraction")
        return a * self.tau_c_on + (1.0 - a) * self.tau_c_off

    def tau_e(self, on_fraction):
        """Duty-averaged emission time constant, paper eq. (8)."""
        a = np.asarray(on_fraction, dtype=float)
        _check_fraction(a, "on_fraction")
        return a * self.tau_e_on + (1.0 - a) * self.tau_e_off


def _check_fraction(a, label: str) -> None:
    if np.any((a < 0.0) | (a > 1.0)):
        raise ValueError(f"{label} must lie in [0, 1]")


@dataclass(frozen=True)
class PaperConditions:
    """Top-level experimental conditions (Table I plus Section IV text).

    Attributes
    ----------
    avth_mv_nm:
        Pelgrom coefficient A_VTH [mV*nm]; same for nMOS and pMOS.
    trap_density_per_nm2:
        Oxide defect density lambda [nm^-2]; the paper notes the smallest
        transistor then contains 1.92 defects on average.
    vdd_nominal:
        Supply for Fig. 6 and Fig. 8 experiments [V].
    vdd_low:
        Reduced supply used in Fig. 7 so naive MC converges [V].
    access_on_fraction:
        Fraction of time the wordline is high; the paper does not specify
        it, we default to 0 (access transistors gated off between reads).
    """

    geometry: CellGeometry = field(default_factory=CellGeometry)
    time_constants: RtnTimeConstants = field(default_factory=RtnTimeConstants)
    avth_mv_nm: float = 500.0
    trap_density_per_nm2: float = 4.0e-3
    vdd_nominal: float = 0.7
    vdd_low: float = 0.5
    access_on_fraction: float = 0.0

    def __post_init__(self):
        if self.avth_mv_nm <= 0:
            raise ValueError("A_VTH must be positive")
        if self.trap_density_per_nm2 < 0:
            raise ValueError("trap density must be non-negative")
        if not 0.0 <= self.access_on_fraction <= 1.0:
            raise ValueError("access_on_fraction must lie in [0, 1]")
        for vdd in (self.vdd_nominal, self.vdd_low):
            if vdd <= 0:
                raise ValueError("supply voltages must be positive")

    def mean_traps(self, device: str) -> float:
        """Expected trap count lambda * W * L for ``device``."""
        area = self.geometry.device(device).area_nm2
        return self.trap_density_per_nm2 * area

    def with_(self, **changes) -> "PaperConditions":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)


#: The default, paper-faithful conditions.
TABLE_I = PaperConditions()
