"""Physical constants used throughout the library.

All values are CODATA-2018 and expressed in SI units unless a suffix says
otherwise.  Device geometry in this package is usually given in nanometres;
helpers here convert to SI where a formula needs it.
"""

from __future__ import annotations

#: Elementary charge [C].
ELEMENTARY_CHARGE = 1.602176634e-19

#: Boltzmann constant [J/K].
BOLTZMANN = 1.380649e-23

#: Vacuum permittivity [F/m].
EPSILON_0 = 8.8541878128e-12

#: Relative permittivity of SiO2 gate dielectric.
EPSILON_SIO2 = 3.9

#: Relative permittivity of silicon.
EPSILON_SI = 11.7

#: Default simulation temperature [K].
ROOM_TEMPERATURE = 300.0

#: Nanometre in metres.
NM = 1e-9


def thermal_voltage(temperature_k: float = ROOM_TEMPERATURE) -> float:
    """Return the thermal voltage kT/q [V] at ``temperature_k`` kelvin.

    >>> round(thermal_voltage(300.0), 6)
    0.025852
    """
    if temperature_k <= 0:
        raise ValueError(f"temperature must be positive, got {temperature_k}")
    return BOLTZMANN * temperature_k / ELEMENTARY_CHARGE


def oxide_capacitance_per_area(tox_nm: float) -> float:
    """Unit-area gate-oxide capacitance C_ox [F/m^2] for thickness ``tox_nm``.

    C_ox = eps_0 * eps_SiO2 / t_ox.  The paper's Table I uses
    t_ox = 0.95 nm.

    >>> cox = oxide_capacitance_per_area(0.95)
    >>> 0.03 < cox < 0.04
    True
    """
    if tox_nm <= 0:
        raise ValueError(f"oxide thickness must be positive, got {tox_nm}")
    return EPSILON_0 * EPSILON_SIO2 / (tox_nm * NM)
