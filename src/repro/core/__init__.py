"""Failure-probability estimators (the paper's core contribution).

Building blocks:

* :mod:`repro.core.indicator` -- indicator protocol and simulation counting;
* :mod:`repro.core.estimate` -- result/trace containers;
* :mod:`repro.core.importance` -- Gaussian-mixture alternative
  distributions and importance-weight algebra;
* :mod:`repro.core.particles` -- resampling and ensemble diagnostics;
* :mod:`repro.core.boundary` -- step (1): initial particles on the failure
  boundary by radial bisection;
* :mod:`repro.core.filter` -- steps (2)-(4): the particle-filter bank.

Estimators:

* :class:`repro.core.naive.NaiveMonteCarlo` -- the reference;
* :class:`repro.core.ecripse.EcripseEstimator` -- the proposed method
  (two-stage particle-filter importance sampling + classifier blockade);
* :class:`repro.core.conventional.ConventionalSisEstimator` -- the
  state-of-the-art baseline [8] (no classifier, every sample simulated);
* :class:`repro.core.meanshift.MeanShiftEstimator` -- mean-shift
  importance sampling [4]/[6];
* :class:`repro.core.blockade_mc.StatisticalBlockadeEstimator` -- the
  classifier-as-blockade Monte Carlo of [12];
* :class:`repro.core.sweep.BiasSweep` -- duty-ratio sweeps that share
  initial particles (and optionally the classifier) across bias points.
"""

from __future__ import annotations

from repro.core.indicator import CountingIndicator, SimulationCounter
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.importance import GaussianMixture
from repro.core.boundary import find_failure_boundary
from repro.core.filter import ParticleFilter, ParticleFilterBank
from repro.core.naive import NaiveMonteCarlo
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.conventional import ConventionalSisEstimator
from repro.core.meanshift import MeanShiftEstimator
from repro.core.blockade_mc import StatisticalBlockadeEstimator
from repro.core.crossentropy import CrossEntropyEstimator
from repro.core.sweep import BiasSweep, BiasSweepResult

__all__ = [
    "CountingIndicator",
    "SimulationCounter",
    "FailureEstimate",
    "TracePoint",
    "GaussianMixture",
    "find_failure_boundary",
    "ParticleFilter",
    "ParticleFilterBank",
    "NaiveMonteCarlo",
    "EcripseConfig",
    "EcripseEstimator",
    "ConventionalSisEstimator",
    "MeanShiftEstimator",
    "StatisticalBlockadeEstimator",
    "CrossEntropyEstimator",
    "BiasSweep",
    "BiasSweepResult",
]
