"""Statistical blockade (Singhee & Rutenbar, the paper's reference [12]).

The original classifier-accelerated Monte Carlo: train a classifier on a
*variance-broadened* sample of the space, then run plain Monte Carlo where
only the samples the classifier flags as (possibly) failing are simulated.
Unlike ECRIPSE there is no importance sampling -- the statistical
efficiency per sample is naive-MC's, only the per-sample cost drops -- so
at SRAM-grade failure probabilities it still needs naive-MC-sized sample
counts.  Included as the second baseline the paper positions itself
against (Section II-C).
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.indicator import (
    CountingIndicator,
    Indicator,
    SimulationCounter,
)
from repro.errors import EstimationError
from repro.ml.blockade import ClassifierBlockade
from repro.rng import as_generator, spawn
from repro.variability.space import VariabilitySpace


class StatisticalBlockadeEstimator:
    """Classifier-blockaded plain Monte Carlo.

    Parameters
    ----------
    training_sigma:
        Broadening factor of the training distribution (samples are drawn
        from N(0, sigma^2 I) so the rare tail is represented).
    n_training:
        Simulated training samples.
    band_quantile:
        Uncertainty band for conservative simulation of near-boundary MC
        samples (the original paper shifts the classification threshold;
        the band plays the same safety role).
    """

    method = "statistical-blockade"

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, training_sigma: float = 2.5,
                 n_training: int = 2000, classifier_degree: int = 4,
                 band_quantile: float = 0.15, batch_size: int = 5000,
                 seed=None) -> None:
        if training_sigma < 1.0:
            raise ValueError("training_sigma must be >= 1")
        if n_training < 10:
            raise ValueError("n_training must be >= 10")
        self.space = space
        self.rtn_model = rtn_model
        self.training_sigma = training_sigma
        self.n_training = n_training
        self.batch_size = batch_size
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        rng = as_generator(seed)
        self._rng_train, self._rng_mc, rng_clf = spawn(rng, 3)
        self.blockade = ClassifierBlockade(
            dim=space.dim, degree=classifier_degree,
            band_quantile=band_quantile,
            seed=int(rng_clf.integers(2**31)))

    # ------------------------------------------------------------------
    def run(self, n_samples: int,
            target_relative_error: float | None = None) -> FailureEstimate:
        """Blockaded Monte Carlo over ``n_samples`` statistical samples."""
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = time.perf_counter()
        self._train()
        if not self.blockade.is_trained:
            raise EstimationError(
                "blockade training produced a single-class set; increase "
                "training_sigma or n_training")

        fails = 0
        drawn = 0
        trace: list[TracePoint] = []
        while drawn < n_samples:
            batch = min(self.batch_size, n_samples - drawn)
            x = self.space.sample(batch, self._rng_mc)
            shifts, states = self.rtn_model.sample(batch, self._rng_mc)
            total = self.rtn_model.mirror(x + shifts, states)

            prediction = self.blockade.predict(total)
            suspicious = prediction.labels | prediction.uncertain
            if np.any(suspicious):
                confirmed = self.indicator.evaluate(total[suspicious])
                fails += int(np.sum(confirmed))
            drawn += batch

            estimate, halfwidth = wilson_interval(fails, drawn)
            trace.append(TracePoint(
                n_simulations=self.counter.count, estimate=estimate,
                ci_halfwidth=halfwidth, n_statistical_samples=drawn))
            if (target_relative_error is not None and estimate > 0
                    and halfwidth / estimate <= target_relative_error):
                break

        estimate, halfwidth = wilson_interval(fails, drawn)
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count, n_statistical_samples=drawn,
            method=self.method, wall_time_s=time.perf_counter() - start,
            trace=trace,
            metadata={"failures": fails,
                      "training_samples": self.n_training,
                      "training_sigma": self.training_sigma})

    # ------------------------------------------------------------------
    def _train(self) -> None:
        x = self.space.sample(self.n_training, self._rng_train)
        x = x * self.training_sigma
        shifts, states = self.rtn_model.sample(self.n_training,
                                               self._rng_train)
        total = self.rtn_model.mirror(x + shifts, states)
        labels = self.indicator.evaluate(total)
        self.blockade.train(total, labels)
