"""Step (1): initial particles near the failure boundary.

Random directions on the D-sphere are searched radially with bisection
until the pass/fail transition is bracketed (paper Fig. 4a).  All
directions are bisected *together*, so each refinement level costs one
batched indicator evaluation -- the butterfly evaluator amortises the
whole level into a single vectorised call.

The returned boundary points are reused across bias conditions (the
paper's initialisation sharing): the failure boundary of the deterministic
indicator does not depend on the RTN bias, only the RTN sampling does.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.indicator import CountingIndicator


def sphere_directions(n: int, dim: int, rng: np.random.Generator
                      ) -> np.ndarray:
    """``n`` independent uniform directions on the unit (dim-1)-sphere."""
    if n < 1 or dim < 1:
        raise ValueError(f"need n >= 1 and dim >= 1, got n={n}, dim={dim}")
    raw = rng.standard_normal((n, dim))
    norms = np.linalg.norm(raw, axis=1, keepdims=True)
    # Resample the (measure-zero) degenerate rows instead of dividing by 0.
    # Exact comparison is intended: any nonzero norm divides safely, only
    # literal 0.0 does not, so a tolerance would reject valid draws.
    while np.any(norms == 0.0):  # pragma: no cover  # repro: allow-float-eq
        bad = norms[:, 0] == 0.0  # repro: allow-float-eq
        raw[bad] = rng.standard_normal((int(bad.sum()), dim))
        norms = np.linalg.norm(raw, axis=1, keepdims=True)
    return raw / norms


@dataclass
class BoundarySearchResult:
    """Outcome of the radial boundary search.

    Attributes
    ----------
    points:
        Boundary points (one per direction that failed at ``r_max``),
        shape (M, D) with M <= n_directions.
    radii:
        Distance of each boundary point from the origin, shape (M,).
    n_simulations:
        Simulations spent by the search.
    n_directions_failed:
        Directions whose ray hit the failure region at all.
    """

    points: np.ndarray
    radii: np.ndarray
    n_simulations: int
    n_directions_failed: int

    def as_dict(self) -> dict:
        """Plain-dict form for checkpoint snapshots."""
        return {"points": self.points.copy(),
                "radii": self.radii.copy(),
                "n_simulations": self.n_simulations,
                "n_directions_failed": self.n_directions_failed}

    @classmethod
    def from_dict(cls, data: dict) -> "BoundarySearchResult":
        """Inverse of :meth:`as_dict`."""
        return cls(points=np.asarray(data["points"], dtype=float),
                   radii=np.asarray(data["radii"], dtype=float),
                   n_simulations=int(data["n_simulations"]),
                   n_directions_failed=int(data["n_directions_failed"]))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` cached boundary points with replacement.

        Costs no simulations: the boundary acts as a persistent seed
        bank, which is what lets the health layer re-seed a collapsed
        particle filter deterministically (the caller supplies the
        consuming generator, typically the filter's own stream).
        """
        if n < 1:
            raise ValueError(f"cannot draw {n} boundary points")
        picks = rng.integers(0, self.points.shape[0], size=n)
        return self.points[picks].copy()


def find_failure_boundary(indicator: CountingIndicator, n_directions: int,
                          rng: np.random.Generator, r_max: float = 8.0,
                          n_bisections: int = 12) -> BoundarySearchResult:
    """Locate the failure boundary along random radial directions.

    Directions that do not fail at radius ``r_max`` are dropped (their ray
    misses the failure region within the searched ball).  For each
    remaining direction the transition radius is bisected to
    ``r_max / 2**n_bisections`` resolution and the midpoint of the final
    bracket is returned.

    Raises
    ------
    ValueError
        If no direction reaches the failure region -- either ``r_max`` is
        too small or the failure probability is ~0 in the searched ball.
    """
    if r_max <= 0:
        raise ValueError(f"r_max must be positive, got {r_max}")
    if n_bisections < 1:
        raise ValueError("n_bisections must be >= 1")
    start_count = indicator.count

    directions = sphere_directions(n_directions, indicator.dim, rng)
    fails_at_rmax = indicator.evaluate(directions * r_max)
    directions = directions[fails_at_rmax]
    if directions.shape[0] == 0:
        raise ValueError(
            f"no failures found at radius {r_max} along {n_directions} "
            "directions; increase r_max or check the indicator")

    lo = np.zeros(directions.shape[0])
    hi = np.full(directions.shape[0], r_max)
    for _ in range(n_bisections):
        mid = 0.5 * (lo + hi)
        failing = indicator.evaluate(directions * mid[:, None])
        hi = np.where(failing, mid, hi)
        lo = np.where(failing, lo, mid)
    radii = 0.5 * (lo + hi)

    return BoundarySearchResult(
        points=directions * radii[:, None],
        radii=radii,
        n_simulations=indicator.count - start_count,
        n_directions_failed=directions.shape[0],
    )
