"""The conventional baseline: particle-filter sequential importance
sampling without a classifier (Katayama et al., ICCAD 2010 -- the paper's
reference [8]).

Structurally this is the same two-stage flow as ECRIPSE (the paper builds
on [8]); the differences that make it the *baseline* are:

* every indicator label -- in the particle-filter measurement step and for
  every stage-2 statistical sample -- comes from a transistor-level
  simulation;
* no initialisation sharing across bias conditions (each run performs its
  own boundary search unless one is passed explicitly).

Those are exactly the two costs the paper's contributions remove, so the
simulation-count gap between this class and
:class:`~repro.core.ecripse.EcripseEstimator` is the paper's headline
speedup (Fig. 6).
"""

from __future__ import annotations

from dataclasses import replace

from repro.core.ecripse import EcripseConfig, EcripseEstimator


class ConventionalSisEstimator(EcripseEstimator):
    """Particle-filter importance sampling with all labels simulated."""

    method = "conventional-sis"

    def __init__(self, space, indicator, rtn_model,
                 config: EcripseConfig | None = None, seed=None,
                 initial_boundary=None) -> None:
        config = replace(config if config is not None else EcripseConfig(),
                         use_classifier=False)
        super().__init__(space, indicator, rtn_model, config=config,
                         seed=seed, initial_boundary=initial_boundary)
