"""Cross-entropy (CE) adaptive importance sampling baseline.

A further point of comparison beyond the paper's own baselines: the CE
method (Rubinstein) adapts a single diagonal Gaussian toward the failure
region by iterating

1. draw samples from the current proposal;
2. keep the "elite" fraction closest to failure (smallest margin);
3. refit the proposal to the elites by likelihood-ratio-weighted moments,

lowering the margin level until the failure region itself is reached, and
finally estimating P_fail by importance sampling from the adapted
proposal.

Because the proposal is a *single* Gaussian, CE handles the SRAM cell's
two symmetric failure lobes badly: it either collapses onto one lobe
(underestimating P_fail by up to 2x) or inflates its variance to straddle
both, paying a large efficiency penalty relative to the two-mode mixture
the paper's filter bank represents.  The estimator is included for
exactly that comparison; it requires an indicator that exposes a signed
``margin``.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stats import weighted_mean_ci
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.indicator import CountingIndicator, SimulationCounter
from repro.errors import EstimationError
from repro.rng import as_generator
from repro.variability.space import VariabilitySpace


class CrossEntropyEstimator:
    """Cross-entropy adaptive importance sampling.

    Parameters
    ----------
    space:
        Whitened variability space.
    indicator:
        Failure indicator exposing ``margin(x)`` (signed; negative =
        fail).
    elite_fraction:
        Fraction of samples refitted each adaptation round.
    n_per_iteration:
        Samples (= simulations) per adaptation round.
    max_iterations:
        Adaptation-round cap.
    sigma_floor:
        Lower bound on proposal sigmas (prevents premature collapse).
    """

    method = "cross-entropy-is"

    def __init__(self, space: VariabilitySpace, indicator,
                 elite_fraction: float = 0.1, n_per_iteration: int = 2000,
                 max_iterations: int = 20, sigma_floor: float = 0.2,
                 batch_size: int = 2000, seed=None) -> None:
        if not 0.0 < elite_fraction < 1.0:
            raise ValueError("elite_fraction must lie in (0, 1)")
        if n_per_iteration < 10:
            raise ValueError("n_per_iteration must be >= 10")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if sigma_floor <= 0:
            raise ValueError("sigma_floor must be positive")
        if not hasattr(indicator, "margin"):
            raise TypeError(
                "cross-entropy adaptation needs an indicator with a "
                "signed margin()")
        self.space = space
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        self.elite_fraction = elite_fraction
        self.n_per_iteration = n_per_iteration
        self.max_iterations = max_iterations
        self.sigma_floor = sigma_floor
        self.batch_size = batch_size
        self.rng = as_generator(seed)
        self.mean = np.zeros(space.dim)
        self.sigma = np.ones(space.dim)

    # ------------------------------------------------------------------
    def _log_proposal(self, x: np.ndarray) -> np.ndarray:
        z = (x - self.mean) / self.sigma
        return (-0.5 * np.sum(z * z, axis=1)
                - 0.5 * self.space.dim * np.log(2 * np.pi)
                - np.sum(np.log(self.sigma)))

    def _adapt(self) -> int:
        """Run adaptation rounds until the elite level reaches failure.

        Returns the number of rounds used.
        """
        for round_index in range(1, self.max_iterations + 1):
            x = (self.mean
                 + self.sigma * self.rng.standard_normal(
                     (self.n_per_iteration, self.space.dim)))
            margins = self.indicator.margin(x)
            level = np.quantile(margins, self.elite_fraction)
            elite = margins <= max(level, 0.0) if level > 0 else margins <= 0
            if not np.any(elite):
                elite = margins <= level
            weights = np.exp(self.space.log_pdf(x[elite])
                             - self._log_proposal(x[elite]))
            total = weights.sum()
            if total <= 0:
                raise EstimationError(
                    "cross-entropy adaptation produced zero-weight elites")
            mean = (weights[:, None] * x[elite]).sum(axis=0) / total
            var = (weights[:, None]
                   * (x[elite] - mean) ** 2).sum(axis=0) / total
            self.mean = mean
            self.sigma = np.maximum(np.sqrt(var), self.sigma_floor)
            if level <= 0.0:
                return round_index
        return self.max_iterations

    # ------------------------------------------------------------------
    def run(self, target_relative_error: float = 0.05,
            max_simulations: int = 500_000) -> FailureEstimate:
        """Adapt the proposal (CE rounds), then importance-sample P_fail.

        Stops when the 95 % CI relative error reaches the target or the
        simulation cap is hit.
        """
        start = time.perf_counter()
        rounds = self._adapt()

        values: list[np.ndarray] = []
        trace: list[TracePoint] = []
        while self.counter.count < max_simulations:
            x = (self.mean + self.sigma
                 * self.rng.standard_normal((self.batch_size,
                                             self.space.dim)))
            fails = self.indicator.evaluate(x)
            ratios = np.exp(self.space.log_pdf(x) - self._log_proposal(x))
            values.append(ratios * fails)
            flat = np.concatenate(values)
            estimate, halfwidth = weighted_mean_ci(flat)
            trace.append(TracePoint(
                n_simulations=self.counter.count, estimate=estimate,
                ci_halfwidth=halfwidth, n_statistical_samples=flat.size))
            if (len(values) >= 4 and estimate > 0
                    and halfwidth / estimate <= target_relative_error):
                break

        flat = np.concatenate(values)
        estimate, halfwidth = weighted_mean_ci(flat)
        if estimate <= 0.0:
            raise EstimationError(
                "cross-entropy importance sampling found no failures")
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count,
            n_statistical_samples=flat.size, method=self.method,
            wall_time_s=time.perf_counter() - start, trace=trace,
            metadata={"adaptation_rounds": rounds,
                      "proposal_mean": self.mean.tolist(),
                      "proposal_sigma": self.sigma.tolist()})
