"""ECRIPSE: the paper's two-stage, classifier-assisted estimator.

Algorithm 1 of the paper:

1. **Initial sample selection** -- particles are placed on the failure
   boundary found by radial bisection (:mod:`repro.core.boundary`); an
   existing boundary can be passed in to share initialisation across bias
   conditions (Fig. 7b / Fig. 8).
2-4. **Particle filtering** -- a bank of filters tracks the failure lobes;
   candidate weights are ``P_fail^RTN(x) * P_RDF(x)`` (eq. 16-17) where
   the inner RTN failure probability is estimated from M RTN draws whose
   labels come mostly from the classifier: only K randomly chosen draws
   per iteration are simulated and used as training data (Section III-B,
   step 3).  Label errors here only perturb the alternative distribution,
   never the estimate.
5. **Importance sampling** -- the final particles define a Gaussian-mixture
   alternative distribution (eq. 18) from which statistical samples are
   drawn in batches; each batch's RTN draws are labelled by the classifier
   except inside an uncertainty band around the hyperplane, which is
   simulated and fed back as incremental training data (eq. 19).

Transistor-level simulations are counted by a
:class:`~repro.core.indicator.SimulationCounter`; classifier evaluations
are free, which is the entire point of the method.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field, replace

import numpy as np

from repro.core.boundary import BoundarySearchResult, find_failure_boundary
from repro.core.estimate import FailureEstimate, RunningMean, TracePoint
from repro.core.filter import ParticleFilterBank
from repro.core.importance import (
    DefensiveMixture,
    GaussianMixture,
    importance_ratios,
)
from repro.core.indicator import (
    CountingIndicator,
    Indicator,
    SimulationCounter,
)
from repro.errors import CheckpointError, EstimationError
from repro.health import HealthConfig, HealthMonitor
from repro.perf.profile import StageProfiler, merge_spans
from repro.ml.blockade import ClassifierBlockade
from repro.rng import (
    as_generator,
    rng_from_state,
    rng_state,
    spawn,
    stable_seed,
)
from repro.runtime import (
    ExecutionConfig,
    Executor,
    evaluate_indicator_stats,
)
from repro.variability.space import VariabilitySpace


@dataclass(frozen=True)
class EcripseConfig:
    """Tuning knobs of :class:`EcripseEstimator`.

    Stage-1 (particle filter) parameters
    ------------------------------------
    n_filters:
        Independent particle filters (paper: several, to cover both
        symmetric failure lobes; 1 reproduces the degeneracy failure mode).
    n_particles:
        Particles per filter.
    n_iterations:
        Predict/measure/resample rounds ("ten times of repetition is
        enough" -- Section III-B).
    kernel_sigma:
        Proposal / mixture kernel standard deviation, whitened units.
    m_rtn:
        RTN draws per candidate for the eq. (17) inner estimate (forced to
        1 for the null RTN model).
    k_train:
        Simulated (labelled) samples per particle-filter iteration.

    Initialisation parameters
    -------------------------
    n_boundary_directions, boundary_r_max, n_bisections:
        Radial boundary search (step 1).

    Stage-2 (importance sampling) parameters
    ----------------------------------------
    stage2_batch:
        Statistical samples per stage-2 batch.
    defensive_fraction:
        Prior mass blended into the stage-2 alternative distribution
        (bounds importance weights by its reciprocal).
    is_sigma_scale:
        Stage-2 kernel sigma relative to the particle-filter kernel; >1
        widens the mixture so it covers the optimal distribution's spread
        in the directions the particles under-explore.
    m_rtn_stage2:
        RTN draws per statistical sample in stage 2.
    max_statistical_samples:
        Hard cap on stage-2 statistical samples.
    min_stage2_batches:
        Batches to run before the stopping rule may fire.

    Classifier parameters
    ---------------------
    use_classifier:
        ``False`` simulates every label (the conventional baseline and the
        A1 ablation).
    classifier_degree:
        Polynomial degree of the feature map (paper: 4).
    classifier_c:
        SVM cost.
    band_quantile:
        Training-|decision| quantile defining the stage-2 uncertainty
        band.
    retrain_trigger:
        Incremental-retrain threshold (new labels).

    Execution parameters
    --------------------
    execution:
        :class:`~repro.runtime.config.ExecutionConfig` selecting the
        backend / worker count / chunking of the transistor-level
        simulation batches and the particle-filter prediction tasks.
        The default (serial) reproduces the single-core behaviour; for a
        fixed seed every backend returns the bit-identical estimate.

    Health parameters
    -----------------
    health:
        :class:`~repro.health.policy.HealthConfig` selecting the
        degradation policy and guardrail thresholds (see
        :mod:`repro.health`).  The default (``strict``, no injection)
        reproduces the legacy behaviour exactly on healthy runs.  Part
        of the config, so it participates in the checkpoint
        fingerprint: an injected or recovering run can never resume
        from an incompatible snapshot.
    """

    n_filters: int = 2
    n_particles: int = 100
    n_iterations: int = 10
    kernel_sigma: float = 0.35
    m_rtn: int = 8
    k_train: int = 256
    n_boundary_directions: int = 64
    boundary_r_max: float = 8.0
    n_bisections: int = 12
    stage2_batch: int = 2000
    m_rtn_stage2: int = 4
    max_statistical_samples: int = 2_000_000
    min_stage2_batches: int = 4
    defensive_fraction: float = 0.1
    is_sigma_scale: float = 2.5
    use_classifier: bool = True
    classifier_degree: int = 4
    classifier_c: float = 10.0
    band_quantile: float = 0.12
    retrain_trigger: int = 500
    execution: ExecutionConfig = field(default_factory=ExecutionConfig)
    health: HealthConfig = field(default_factory=HealthConfig)

    def __post_init__(self) -> None:
        if self.n_iterations < 1:
            raise ValueError("n_iterations must be >= 1")
        if self.m_rtn < 1 or self.m_rtn_stage2 < 1:
            raise ValueError("RTN draw counts must be >= 1")
        if self.k_train < 2:
            raise ValueError("k_train must be >= 2")
        if self.stage2_batch < 2:
            raise ValueError("stage2_batch must be >= 2")
        if self.min_stage2_batches < 1:
            raise ValueError("min_stage2_batches must be >= 1")
        if not 0.0 < self.defensive_fraction < 1.0:
            raise ValueError("defensive_fraction must lie in (0, 1)")
        if self.is_sigma_scale <= 0:
            raise ValueError("is_sigma_scale must be positive")

    def with_(self, **changes) -> "EcripseConfig":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)

    @classmethod
    def quick(cls, **changes) -> "EcripseConfig":
        """The reduced-budget smoke configuration (``--quick``).

        One definition shared by the CLI and the service job builder,
        so a job submitted with ``"quick": true`` reproduces the CLI's
        ``--quick`` estimate bit-for-bit.
        """
        return cls(n_particles=60, n_iterations=6, k_train=128,
                   stage2_batch=1500,
                   max_statistical_samples=300_000).with_(**changes)


class EcripseEstimator:
    """The proposed failure-probability estimator.

    Parameters
    ----------
    space:
        Whitened RDF variability space.
    indicator:
        Deterministic failure indicator in the total-shift space (for RTN
        runs: the stored-"0" lobe indicator; states are mirrored onto it).
    rtn_model:
        RTN sampler (:class:`~repro.rtn.model.RtnModel`) or the null model.
    config:
        :class:`EcripseConfig`.
    initial_boundary:
        A previous run's :attr:`boundary` to skip step (1) (bias sweeps).
    classifier:
        A previous run's :attr:`blockade` to reuse accumulated training
        data (valid across bias conditions at a fixed supply because the
        deterministic indicator does not depend on the duty ratio).
    """

    method = "ecripse"

    #: mutable state that deliberately does not ride snapshots:
    #: ``mixture`` is a pure function of the filter bank, rebuilt by
    #: :meth:`_finalize_stage1` on restore; ``_perf_baseline`` is
    #: recaptured at the top of every :meth:`run`.
    _SNAPSHOT_EXCLUDED = ("mixture", "_perf_baseline")

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, config: EcripseConfig | None = None, seed=None,
                 initial_boundary: BoundarySearchResult | None = None,
                 classifier: ClassifierBlockade | None = None) -> None:
        self.space = space
        self.rtn_model = rtn_model
        self.config = config if config is not None else EcripseConfig()
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        # The initial boundary search must cover every failure lobe the
        # (possibly state-mirrored) weight function can reach; indicators
        # that only score one lobe advertise a wider boundary indicator.
        boundary_source = getattr(indicator, "boundary_indicator", None)
        self.boundary_search_indicator = CountingIndicator(
            boundary_source if boundary_source is not None else indicator,
            self.counter)
        self.executor = Executor(self.config.execution,
                                 counter=self.counter)
        rng = as_generator(seed)
        (self._rng_boundary, self._rng_bank, self._rng_stage1,
         self._rng_stage2, rng_clf) = spawn(rng, 5)
        self.boundary = initial_boundary
        if classifier is not None:
            self.blockade = classifier
        else:
            self.blockade = ClassifierBlockade(
                dim=space.dim, degree=self.config.classifier_degree,
                band_quantile=self.config.band_quantile,
                c=self.config.classifier_c,
                retrain_trigger=self.config.retrain_trigger,
                seed=int(rng_clf.integers(2**31)))
        self.filter_bank: ParticleFilterBank | None = None
        self.mixture: DefensiveMixture | None = None
        self.health = HealthMonitor(self.config.health)
        self.profiler = StageProfiler()
        self._perf_baseline: dict = {}
        # Resumable-run progress markers (see state_snapshot); a fresh
        # estimator starts in phase "init" with empty accumulators.
        self._phase = "init"
        self._stage1_iter = 0
        self._stage2_batches = 0
        self._stage2_done = False
        self._sims_boundary = 0
        self._sims_stage1 = 0
        self._accumulator = RunningMean()
        self._trace: list[TracePoint] = []

    # ------------------------------------------------------------------
    def run(self, target_relative_error: float = 0.01,
            max_simulations: int | None = None,
            checkpoint=None) -> FailureEstimate:
        """Estimate P_fail.

        Stops when the 95 % CI relative error drops below the target (after
        a minimum number of batches), when ``max_simulations`` is exceeded,
        or when the statistical-sample cap is reached -- whichever first.

        ``checkpoint`` (a
        :class:`~repro.checkpoint.manager.CheckpointManager`) snapshots
        the full estimator state at every safe boundary -- after the
        boundary search, after each particle-filter iteration and after
        each stage-2 batch -- so a killed run, restored via
        ``restore_into`` and re-``run``, finishes with the bit-identical
        estimate and trace the uninterrupted run produces.
        """
        if target_relative_error <= 0:
            raise ValueError("target_relative_error must be positive")
        start = time.perf_counter()
        cfg = self.config
        # Perf counters live on the (possibly sweep-shared) evaluator,
        # so this run's contribution is reported as a delta over the
        # baseline captured here.
        self._perf_baseline = self._evaluator_perf_stats()

        try:
            if self._phase == "init":
                if self.boundary is None:
                    with self.profiler.span("boundary-search"):
                        self.boundary = find_failure_boundary(
                            self.boundary_search_indicator,
                            cfg.n_boundary_directions,
                            self._rng_boundary, r_max=cfg.boundary_r_max,
                            n_bisections=cfg.n_bisections)
                self._sims_boundary = self.counter.count
                self._phase = "stage1"
                if checkpoint is not None:
                    checkpoint.maybe_save(self, self.counter.count)
            if self._phase == "stage1":
                self._run_stage1(checkpoint)
            estimate = self._run_stage2(
                target_relative_error, max_simulations, checkpoint)
        finally:
            self.executor.close()

        estimate.wall_time_s = time.perf_counter() - start
        estimate.trace = list(self._trace)
        execution = self.executor.aggregate()
        merge_spans(execution.spans, self.profiler.as_dict())
        estimate.metadata.update({
            "boundary_simulations": self._sims_boundary,
            "stage1_simulations": self._sims_stage1,
            "stage2_simulations": (self.counter.count
                                   - self._sims_stage1
                                   - self._sims_boundary),
            "classifier_trainings": self.blockade.train_count,
            "classifier_samples": self.blockade.n_training_samples,
            "use_classifier": cfg.use_classifier,
            "n_filters": cfg.n_filters,
            "execution": execution.as_dict(),
            "perf": self._perf_metadata(),
        })
        estimate.health = self.health.report
        return estimate

    # ------------------------------------------------------------------
    # perf telemetry
    # ------------------------------------------------------------------
    def _evaluator(self):
        """The cell evaluator behind the indicator, if there is one.

        ``FunctionIndicator``-style test doubles have no evaluator;
        every perf hook degrades to span-only telemetry for them.
        """
        return getattr(self.indicator.indicator, "evaluator", None)

    def _evaluator_perf_stats(self) -> dict:
        evaluator = self._evaluator()
        stats = getattr(evaluator, "perf_stats", None)
        return stats() if callable(stats) else {}

    def _perf_metadata(self) -> dict:
        """This run's perf contribution (counter deltas + spans).

        Counters are process-local telemetry: a run resumed in a fresh
        process reports only the work done since the restore.
        """
        perf: dict = {"spans": self.profiler.as_dict()}
        for key, value in self._evaluator_perf_stats().items():
            if key == "cache_entries":
                perf[key] = value
            else:
                perf[key] = value - self._perf_baseline.get(key, 0)
        return perf

    # ------------------------------------------------------------------
    # stage 1: particle filtering
    # ------------------------------------------------------------------
    def _run_stage1(self, checkpoint=None) -> None:
        cfg = self.config
        if self.filter_bank is None:
            self.filter_bank = ParticleFilterBank(
                self.boundary.points, cfg.n_filters, cfg.n_particles,
                cfg.kernel_sigma, self._rng_bank)
        m = 1 if self.rtn_model.is_null else cfg.m_rtn
        while self._stage1_iter < cfg.n_iterations:
            with self.profiler.span("stage1-predict"):
                candidates = self.filter_bank.predict_all(self.executor)
            total = self._total_shift_samples(candidates, m,
                                              self._rng_stage1)
            with self.profiler.span("stage1-label"):
                labels = self._labels_stage1(total)
            p_fail_rtn = labels.reshape(candidates.shape[0], m).mean(axis=1)
            weights = p_fail_rtn * self.space.pdf(candidates)
            weights = self.health.stage1_weights(weights, cfg.n_particles)
            with self.profiler.span("stage1-resample"):
                self.filter_bank.resample_all(candidates, weights)
            self._stage1_iter += 1
            self.health.check_stage1(self.filter_bank, weights,
                                     self.boundary, self._stage1_iter)
            if checkpoint is not None:
                checkpoint.maybe_save(self, self.counter.count)
        self._sims_stage1 = self.counter.count - self._sims_boundary
        self._phase = "stage2"
        self._finalize_stage1()
        if checkpoint is not None:
            checkpoint.maybe_save(self, self.counter.count)

    def _finalize_stage1(self) -> None:
        """Build the stage-2 mixture from the finished filter bank.

        Deterministic in the bank's particles, so it is *recomputed*
        (not stored) when a stage-2 snapshot is restored.
        """
        cfg = self.config
        if self.filter_bank is None:
            raise EstimationError("stage 2 requires a completed stage 1")
        # Filters whose lobe carries no weight under this bias condition
        # (e.g. the mirrored lobe at duty ratio 0) never resampled; their
        # kernels would only dilute the mixture, so they are dropped --
        # the defensive prior still guards anything they might have seen.
        # Filters the health monitor quarantined (collapsed beyond the
        # re-seed budget) are dropped for the same reason.
        quarantined = self.health.quarantined_filters
        live = [f.positions
                for j, f in enumerate(self.filter_bank.filters)
                if j not in quarantined
                and f.history and f.history[-1].mean_weight > 0.0]
        positions = (np.vstack(live) if live
                     else self.filter_bank.positions())
        kernel = GaussianMixture(positions,
                                 cfg.kernel_sigma * cfg.is_sigma_scale
                                 * self.health.sigma_multiplier)
        self.mixture = DefensiveMixture(self.space, kernel,
                                        cfg.defensive_fraction)

    def _total_shift_samples(self, x: np.ndarray, m: int,
                             rng: np.random.Generator) -> np.ndarray:
        """Combine RDF points with RTN draws, mirrored to the canonical
        stored-"0" frame; returns (len(x) * m, D)."""
        shifts, states = self.rtn_model.sample((x.shape[0], m), rng)
        total = self.rtn_model.mirror(x[:, None, :] + shifts, states)
        return total.reshape(x.shape[0] * m, self.space.dim)

    def _absorb_worker_stats(self, stats: dict, where: str) -> None:
        """Merge one chunk's evaluator-counter delta into the parent.

        Only process-pool chunks carry counts the parent's evaluator
        never saw (the worker labelled on its own unpickled copy);
        serial / thread / fallback chunks ran on the parent's evaluator
        object, so merging them would double count.
        """
        if where != "process" or not stats:
            return
        absorb = getattr(self._evaluator(), "absorb_stats", None)
        if callable(absorb):
            absorb(stats)

    def _simulate_labels(self, total: np.ndarray) -> np.ndarray:
        """Transistor-level labels for ``total``, chunk-parallel.

        Counts every row as a simulation *before* dispatch (preserving
        the budget circuit-breaker semantics of
        :class:`~repro.core.indicator.CountingIndicator`) and labels the
        chunks through the executor.  Labelling is pure per row, so the
        result is independent of both the chunking and the backend.
        The stats task + sink keep the parent's perf counters honest on
        the process backend, and the declared bool result dtype lets
        large blocks ride the zero-copy shared-memory transport.
        """
        total = np.atleast_2d(np.asarray(total, dtype=float))

        def dispatch() -> np.ndarray:
            return self.executor.map_chunks(
                evaluate_indicator_stats, total, self.indicator.indicator,
                simulations=total.shape[0], label="simulate-labels",
                stats_sink=self._absorb_worker_stats, result_dtype=bool)

        # The health guard retries ConvergenceError batches (and is the
        # solver fault-injection seam); injection raises *before*
        # dispatch, so a recovered batch is bit-identical to a healthy
        # one -- nothing was counted or labelled by the failed attempt.
        return self.health.guarded_simulation(dispatch, self._phase)

    def _labels_stage1(self, total: np.ndarray) -> np.ndarray:
        """Fail labels for stage-1 samples: K simulated, rest classified."""
        cfg = self.config
        n = total.shape[0]
        if not cfg.use_classifier:
            return self._simulate_labels(total)
        if n <= cfg.k_train:
            labels = self._simulate_labels(total)
            self._feed_classifier(total, labels, "stage1")
            return labels

        picks = self._rng_stage1.choice(n, size=cfg.k_train, replace=False)
        simulated = self._simulate_labels(total[picks])
        self._feed_classifier(total[picks], simulated, "stage1")

        labels = np.zeros(n, dtype=bool)
        labels[picks] = simulated
        rest = np.ones(n, dtype=bool)
        rest[picks] = False
        if self.blockade.is_trained and not self.health.blockade_active:
            with self.profiler.span("classifier-predict"):
                labels[rest] = self.blockade.predict(total[rest]).labels
        else:
            # Single-class training data so far (or the health layer's
            # classifier blockade engaged): simulate everything.
            labels[rest] = self._simulate_labels(total[rest])
        return labels

    def _feed_classifier(self, x: np.ndarray, labels: np.ndarray,
                         stage: str) -> None:
        """Feed simulated labels to the blockade through the health seam.

        The monitor may thin the batch (one-class fault injection) and
        watches the fed labels for degenerate single-class batches: the
        strict policy raises on an injected one, the others engage
        blockade mode until both classes reappear.
        """
        x_fed, fed = self.health.training_batch(x, labels)
        with self.profiler.span("classifier-train"):
            self.blockade.update(x_fed, fed, force_retrain=True)
        self.health.check_training_batch(self.blockade, fed, stage)

    # ------------------------------------------------------------------
    # stage 2: importance sampling
    # ------------------------------------------------------------------
    def _run_stage2(self, target_relative_error: float,
                    max_simulations: int | None,
                    checkpoint=None) -> FailureEstimate:
        cfg = self.config
        if self._phase != "stage2":
            raise EstimationError("stage 2 requires a completed stage 1")
        if self.mixture is None:
            self._finalize_stage1()
        m = 1 if self.rtn_model.is_null else cfg.m_rtn_stage2
        accumulator = self._accumulator
        while (not self._stage2_done
               and accumulator.count < cfg.max_statistical_samples):
            with self.profiler.span("stage2-sample"):
                x = self.mixture.sample(cfg.stage2_batch, self._rng_stage2)
                ratios = importance_ratios(self.space, self.mixture, x)
                ratios = self.health.clip_ratios(
                    ratios, self.mixture.weight_bound, self._stage2_batches)
                total = self._total_shift_samples(x, m, self._rng_stage2)
            with self.profiler.span("stage2-label"):
                labels = self._labels_stage2(total)
            y = labels.reshape(x.shape[0], m).mean(axis=1)
            accumulator.update(ratios * y)
            self._stage2_batches += 1
            if self.health.check_stage2_batch(ratios, self._stage2_batches):
                # ESS collapse: rebuild the mixture with the widened
                # kernel; subsequent batches sample the wider proposal.
                self._finalize_stage1()

            self._trace.append(TracePoint(
                n_simulations=self.counter.count,
                estimate=accumulator.mean,
                ci_halfwidth=accumulator.ci95_halfwidth,
                n_statistical_samples=accumulator.count))
            # The stop decision is taken *before* the snapshot below, so
            # a resumed run never executes a batch the uninterrupted run
            # would have skipped.
            if (self._stage2_batches >= cfg.min_stage2_batches
                    and accumulator.mean > 0
                    and accumulator.ci95_halfwidth / accumulator.mean
                    <= target_relative_error):
                self._stage2_done = True
            elif (max_simulations is not None
                    and self.counter.count >= max_simulations):
                self._stage2_done = True
            if checkpoint is not None:
                checkpoint.maybe_save(self, self.counter.count)

        if accumulator.mean <= 0.0:
            # Strict keeps the historical EstimationError; the other
            # policies degrade to a rule-of-three upper bound.
            return self.health.zero_failure_estimate(
                accumulator, self.counter.count, self.method)
        return FailureEstimate(
            pfail=accumulator.mean,
            ci_halfwidth=accumulator.ci95_halfwidth,
            n_simulations=self.counter.count,
            n_statistical_samples=accumulator.count,
            method=self.method)

    def _labels_stage2(self, total: np.ndarray) -> np.ndarray:
        """Fail labels for stage-2 samples: classifier everywhere except
        the uncertainty band, which is simulated and fed back."""
        cfg = self.config
        if not cfg.use_classifier:
            return self._simulate_labels(total)
        if not self.blockade.is_trained or self.health.blockade_active:
            labels = self._simulate_labels(total)
            if not cfg.health.strict:
                # Blockade mode: keep feeding true labels so the
                # classifier can train the moment both classes appear.
                # (Strict preserves the legacy simulate-only path.)
                self._feed_classifier(total, labels, "stage2")
            return labels
        with self.profiler.span("classifier-predict"):
            prediction = self.blockade.predict(total)
        labels = prediction.labels.copy()
        uncertain = prediction.uncertain
        if np.any(uncertain):
            simulated = self._simulate_labels(total[uncertain])
            labels[uncertain] = simulated
            self.blockade.update(total[uncertain], simulated)
        return labels

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hex id of the estimation *problem*.

        Covers the method, the space dimensionality, the configuration
        and the RTN model -- but not the execution backend, so a run
        checkpointed under one backend may legally resume under another
        (the estimate is backend-invariant by construction).
        """
        cfg = self.config.with_(execution=ExecutionConfig())
        return format(stable_seed(
            self.method, self.space.dim, cfg,
            type(self.rtn_model).__name__,
            getattr(self.rtn_model, "alpha", None)), "016x")

    def state_snapshot(self) -> dict:
        """Complete resumable state at a safe boundary.

        The stage-2 mixture is deliberately absent: it is a pure
        function of the filter bank and is rebuilt by
        :meth:`_finalize_stage1` on restore.
        """
        return {
            "phase": self._phase,
            "stage1_iter": self._stage1_iter,
            "stage2_batches": self._stage2_batches,
            "stage2_done": self._stage2_done,
            "sims_boundary": self._sims_boundary,
            "sims_stage1": self._sims_stage1,
            "counter": self.counter.state(),
            "rngs": {
                "boundary": rng_state(self._rng_boundary),
                "bank": rng_state(self._rng_bank),
                "stage1": rng_state(self._rng_stage1),
                "stage2": rng_state(self._rng_stage2),
            },
            "boundary": (None if self.boundary is None
                         else self.boundary.as_dict()),
            "filter_bank": (None if self.filter_bank is None
                            else self.filter_bank.state()),
            "blockade": self.blockade.state(),
            "accumulator": self._accumulator.state(),
            "trace": [point.as_dict() for point in self._trace],
            "health": self.health.state(),
            "solve_cache": self._cache_snapshot(),
        }

    def _cache_snapshot(self) -> dict | None:
        """The evaluator's solve-cache state, if one is attached.

        Riding the checkpoint lets a resumed run start with the warm
        cache the killed run had built up -- pure acceleration, so older
        snapshots without the key restore fine (cold cache).
        """
        cache = getattr(self._evaluator(), "cache", None)
        return None if cache is None else cache.state()

    def _cache_restore(self, state: dict | None) -> None:
        cache = getattr(self._evaluator(), "cache", None)
        if cache is not None and state is not None:
            # A fingerprint mismatch (different solve configuration)
            # just leaves the cache cold; results never depend on it.
            cache.restore_state(state)

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_snapshot`; continues bit-identically.

        Raises :class:`~repro.errors.CheckpointError` when the snapshot
        tree does not have the expected shape.
        """
        try:
            phase = str(state["phase"])
            if phase not in ("init", "stage1", "stage2"):
                raise ValueError(f"unknown phase {phase!r}")
            self._phase = phase
            self._stage1_iter = int(state["stage1_iter"])
            self._stage2_batches = int(state["stage2_batches"])
            self._stage2_done = bool(state["stage2_done"])
            self._sims_boundary = int(state["sims_boundary"])
            self._sims_stage1 = int(state["sims_stage1"])
            self.counter.restore_state(state["counter"])
            rngs = state["rngs"]
            self._rng_boundary = rng_from_state(rngs["boundary"])
            self._rng_bank = rng_from_state(rngs["bank"])
            self._rng_stage1 = rng_from_state(rngs["stage1"])
            self._rng_stage2 = rng_from_state(rngs["stage2"])
            self.boundary = (
                None if state["boundary"] is None
                else BoundarySearchResult.from_dict(state["boundary"]))
            self.filter_bank = (
                None if state["filter_bank"] is None
                else ParticleFilterBank.from_state(state["filter_bank"]))
            self.blockade.restore_state(state["blockade"])
            self._accumulator.restore_state(state["accumulator"])
            self._trace = [TracePoint.from_dict(point)
                           for point in state["trace"]]
            # The monitor must come back before the mixture rebuild
            # below: the rebuild consults its widening multiplier and
            # quarantine set.
            self.health.restore_state(state["health"])
            # Older snapshots predate the solve cache; .get degrades to
            # a cold cache instead of rejecting them.
            self._cache_restore(state.get("solve_cache"))
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"invalid {self.method} snapshot: {exc}") from exc
        self.mixture = None
        if self._phase == "stage2":
            self._finalize_stage1()
