"""Result containers: failure estimates and convergence traces."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass(frozen=True)
class TracePoint:
    """One point of a convergence trace.

    Attributes
    ----------
    n_simulations:
        Cumulative transistor-level simulations when the point was logged.
    estimate:
        Failure-probability estimate at that moment.
    ci_halfwidth:
        Half-width of the 95 % confidence interval.
    n_statistical_samples:
        Cumulative statistical samples (classifier-evaluated ones
        included); for classifier-free methods this equals
        ``n_simulations`` up to initialisation overhead.
    """

    n_simulations: int
    estimate: float
    ci_halfwidth: float
    n_statistical_samples: int = 0

    @property
    def relative_error(self) -> float:
        """The paper's Fig. 6(b) metric: CI95 half-width / estimate."""
        if self.estimate <= 0.0:
            return float("inf")
        return self.ci_halfwidth / self.estimate

    def as_dict(self) -> dict:
        """Plain-dict form (JSON persistence and checkpoint snapshots)."""
        return {
            "n_simulations": self.n_simulations,
            "estimate": self.estimate,
            "ci_halfwidth": self.ci_halfwidth,
            "n_statistical_samples": self.n_statistical_samples,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "TracePoint":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)


@dataclass
class FailureEstimate:
    """A completed failure-probability estimation run.

    Attributes
    ----------
    pfail:
        The estimate of P_fail.
    ci_halfwidth:
        95 % confidence half-width (statistical only; classifier bias, if
        any, is not included -- same caveat as the paper).
    n_simulations:
        Total transistor-level simulations spent, including initialisation
        and classifier training labels.
    n_statistical_samples:
        Total Monte-Carlo samples contributing to the estimate.
    method:
        Human-readable estimator name.
    wall_time_s:
        Wall-clock duration of the run.
    trace:
        Convergence history.
    metadata:
        Estimator-specific extras (stage budgets, classifier stats, ...).
    health:
        The run's :class:`~repro.health.events.HealthReport` (``None``
        for estimators that do not carry a health monitor).  When
        :attr:`~repro.health.events.HealthReport.upper_bound` is set,
        ``pfail`` is a rule-of-three bound rather than a point estimate;
        :attr:`~repro.health.events.HealthReport.biased` flags engaged
        weight clipping.  Kept untyped to avoid a circular import --
        the health layer builds on this module.
    """

    pfail: float
    ci_halfwidth: float
    n_simulations: int
    n_statistical_samples: int
    method: str
    wall_time_s: float = 0.0
    trace: list[TracePoint] = field(default_factory=list)
    metadata: dict = field(default_factory=dict)
    health: object = None

    @property
    def ci_low(self) -> float:
        return max(self.pfail - self.ci_halfwidth, 0.0)

    @property
    def ci_high(self) -> float:
        return self.pfail + self.ci_halfwidth

    @property
    def relative_error(self) -> float:
        if self.pfail <= 0.0:
            return float("inf")
        return self.ci_halfwidth / self.pfail

    def simulations_to_accuracy(self, target_relative_error: float
                                ) -> int | None:
        """First simulation count at which the trace reached the target
        relative error, or ``None`` if it never did."""
        if target_relative_error <= 0:
            raise ValueError("target relative error must be positive")
        for point in self.trace:
            if point.relative_error <= target_relative_error:
                return point.n_simulations
        return None

    def summary(self) -> str:
        """One-line human-readable summary."""
        return (f"{self.method}: Pfail = {self.pfail:.3e} "
                f"+/- {self.ci_halfwidth:.1e} "
                f"(rel. err. {self.relative_error:.1%}, "
                f"{self.n_simulations} simulations, "
                f"{self.wall_time_s:.1f} s)")


class RunningMean:
    """Streaming mean/variance accumulator (Welford) for batched updates."""

    def __init__(self) -> None:
        self.count = 0
        self._mean = 0.0
        self._m2 = 0.0

    def update(self, values: np.ndarray) -> None:
        values = np.asarray(values, dtype=float).ravel()
        if values.size == 0:
            return
        batch_count = values.size
        batch_mean = float(values.mean())
        batch_m2 = float(np.sum((values - batch_mean) ** 2))
        total = self.count + batch_count
        delta = batch_mean - self._mean
        self._mean += delta * batch_count / total
        self._m2 += batch_m2 + delta * delta * self.count * batch_count / total
        self.count = total

    @property
    def mean(self) -> float:
        return self._mean

    @property
    def variance(self) -> float:
        """Unbiased sample variance (0 before two samples)."""
        if self.count < 2:
            return 0.0
        return self._m2 / (self.count - 1)

    @property
    def std_error(self) -> float:
        """Standard error of the mean."""
        if self.count < 1:
            return float("inf")
        return float(np.sqrt(self.variance / self.count))

    @property
    def ci95_halfwidth(self) -> float:
        return 1.96 * self.std_error

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpoint snapshot of the accumulator (exact floats)."""
        return {"count": self.count, "mean": self._mean, "m2": self._m2}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot bit-exactly."""
        self.count = int(state["count"])
        self._mean = float(state["mean"])
        self._m2 = float(state["m2"])
