"""Steps (2)-(4): the particle filter bank.

Each :class:`ParticleFilter` tracks one failure lobe: *prediction* draws
candidates from the mixture-of-Gaussians proposal centred on the current
particles (paper eq. 15), *measurement* assigns the weights computed by
the caller (eq. 16), and *resampling* draws the next generation inside
that filter only.  Running several filters side by side
(:class:`ParticleFilterBank`) is the paper's fix for particle degeneracy:
with a single filter the ensemble collapses onto one of the two symmetric
failure regions and the failure probability is underestimated (the A2
ablation benchmark demonstrates exactly this).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.particles import (
    kmeans_directions,
    systematic_resample,
    unique_fraction,
)
from repro.rng import rng_from_state, rng_state, spawn


def predict_candidates(positions: np.ndarray, kernel_sigma: float,
                       rng: np.random.Generator
                       ) -> tuple[np.ndarray, np.random.Generator]:
    """Draw one filter's candidate generation (paper eq. 15).

    Module-level (and returning the generator) so it can run as a
    runtime task on any backend: the process backend ships a pickled
    generator out and its advanced state back, while the thread/serial
    backends advance the caller's generator in place.
    """
    n = positions.shape[0]
    parents = rng.integers(0, n, size=n)
    noise = rng.standard_normal(positions.shape)
    return positions[parents] + kernel_sigma * noise, rng


@dataclass
class FilterDiagnostics:
    """Per-iteration health metrics of one filter."""

    iteration: int
    mean_weight: float
    unique_ancestors: float
    centroid_norm: float

    def as_dict(self) -> dict:
        """Plain-dict form for checkpoint snapshots."""
        return {"iteration": self.iteration,
                "mean_weight": self.mean_weight,
                "unique_ancestors": self.unique_ancestors,
                "centroid_norm": self.centroid_norm}

    @classmethod
    def from_dict(cls, data: dict) -> "FilterDiagnostics":
        """Inverse of :meth:`as_dict`."""
        return cls(**data)


class ParticleFilter:
    """One particle filter over the whitened variability space."""

    def __init__(self, positions: np.ndarray, kernel_sigma: float,
                 rng: np.random.Generator) -> None:
        positions = np.atleast_2d(np.asarray(positions, dtype=float))
        if positions.size == 0:
            raise ValueError("a filter needs at least one initial particle")
        if kernel_sigma <= 0:
            raise ValueError(
                f"kernel_sigma must be positive, got {kernel_sigma}")
        self.positions = positions
        self.n_particles = positions.shape[0]
        self.kernel_sigma = float(kernel_sigma)
        self.rng = rng
        self.history: list[FilterDiagnostics] = []
        self._iteration = 0

    # ------------------------------------------------------------------
    def predict(self) -> np.ndarray:
        """Draw candidate particles from the mixture proposal (eq. 15)."""
        candidates, self.rng = predict_candidates(
            self.positions, self.kernel_sigma, self.rng)
        return candidates

    def resample(self, candidates: np.ndarray, weights: np.ndarray) -> None:
        """Resample the next generation from ``candidates`` by ``weights``.

        If every weight is zero (no candidate touches the failure region)
        the filter keeps its current particles instead of collapsing.
        """
        candidates = np.atleast_2d(np.asarray(candidates, dtype=float))
        weights = np.asarray(weights, dtype=float)
        if weights.shape != (candidates.shape[0],):
            raise ValueError(
                f"weights shape {weights.shape} does not match "
                f"{candidates.shape[0]} candidates")
        self._iteration += 1
        if not np.any(weights > 0):
            self.history.append(FilterDiagnostics(
                iteration=self._iteration, mean_weight=0.0,
                unique_ancestors=1.0,
                centroid_norm=float(
                    np.linalg.norm(self.positions.mean(axis=0)))))
            return
        indices = systematic_resample(weights, self.n_particles, self.rng)
        self.positions = candidates[indices]
        self.history.append(FilterDiagnostics(
            iteration=self._iteration,
            mean_weight=float(weights.mean()),
            unique_ancestors=unique_fraction(indices),
            centroid_norm=float(np.linalg.norm(self.positions.mean(axis=0)))))

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpoint snapshot: particles, kernel, RNG stream, history."""
        return {
            "positions": self.positions.copy(),
            "kernel_sigma": self.kernel_sigma,
            "rng": rng_state(self.rng),
            "iteration": self._iteration,
            "history": [d.as_dict() for d in self.history],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ParticleFilter":
        """Rebuild a filter mid-run from a :meth:`state` snapshot."""
        flt = cls(np.asarray(state["positions"], dtype=float),
                  float(state["kernel_sigma"]),
                  rng_from_state(state["rng"]))
        flt._iteration = int(state["iteration"])
        flt.history = [FilterDiagnostics.from_dict(d)
                       for d in state["history"]]
        return flt


class ParticleFilterBank:
    """A set of independent particle filters iterated in lock step.

    Parameters
    ----------
    boundary_points:
        Points on the failure boundary (from
        :func:`repro.core.boundary.find_failure_boundary`).
    n_filters:
        Number of independent filters; boundary points are split between
        them by directional k-means so each starts on its own lobe.
    n_particles:
        Particles per filter.
    kernel_sigma:
        Proposal kernel standard deviation (the paper's diagonal sigma).
    """

    def __init__(self, boundary_points: np.ndarray, n_filters: int,
                 n_particles: int, kernel_sigma: float,
                 rng: np.random.Generator) -> None:
        boundary_points = np.atleast_2d(
            np.asarray(boundary_points, dtype=float))
        if n_filters < 1:
            raise ValueError(f"n_filters must be >= 1, got {n_filters}")
        if n_particles < 2:
            raise ValueError(f"n_particles must be >= 2, got {n_particles}")
        labels = kmeans_directions(boundary_points, n_filters, rng)
        child_rngs = spawn(rng, n_filters + 1)
        seed_rng = child_rngs[-1]

        self.filters: list[ParticleFilter] = []
        for j in range(n_filters):
            members = boundary_points[labels == j]
            if members.shape[0] == 0:
                members = boundary_points  # degenerate cluster: share all
            picks = seed_rng.integers(0, members.shape[0], size=n_particles)
            self.filters.append(ParticleFilter(
                members[picks], kernel_sigma, child_rngs[j]))
        self.n_filters = n_filters
        self.n_particles = n_particles

    # ------------------------------------------------------------------
    def predict_all(self, executor=None) -> np.ndarray:
        """Candidates from every filter, stacked to (F * N, D).

        With an :class:`~repro.runtime.executor.Executor`, prediction
        runs as one task per filter.  Each filter consumes only its own
        generator, so the stack is bit-identical to the serial path on
        every backend (the process backend returns each generator's
        advanced state, which is written back here).
        """
        if executor is None:
            return np.vstack([f.predict() for f in self.filters])
        tasks = [(f.positions, f.kernel_sigma, f.rng)
                 for f in self.filters]
        results = executor.map_tasks(predict_candidates, tasks,
                                     sizes=[f.n_particles
                                            for f in self.filters],
                                     label="filter-predict")
        stacked = []
        for flt, (candidates, rng) in zip(self.filters, results):
            flt.rng = rng
            stacked.append(candidates)
        return np.vstack(stacked)

    def resample_all(self, candidates: np.ndarray,
                     weights: np.ndarray) -> None:
        """Distribute stacked candidates/weights back to their filters."""
        n = self.n_particles
        expected = self.n_filters * n
        if candidates.shape[0] != expected or weights.shape[0] != expected:
            raise ValueError(
                f"expected {expected} stacked candidates/weights, got "
                f"{candidates.shape[0]}/{weights.shape[0]}")
        for j, flt in enumerate(self.filters):
            flt.resample(candidates[j * n:(j + 1) * n],
                         weights[j * n:(j + 1) * n])

    def positions(self) -> np.ndarray:
        """All particles of all filters, shape (F * N, D)."""
        return np.vstack([f.positions for f in self.filters])

    def reseed_filter(self, index: int, boundary) -> None:
        """Re-seed one collapsed filter from the boundary cache.

        Replaces the filter's particles with fresh draws from the
        :class:`~repro.core.boundary.BoundarySearchResult` seed bank,
        consuming only the filter's *own* generator -- the other
        filters' streams are untouched, so recovery of one lobe leaves
        the rest of the run bit-identical.  Costs no simulations and
        keeps the filter's history/iteration counters (the collapse
        stays visible in the diagnostics).
        """
        if not 0 <= index < self.n_filters:
            raise ValueError(
                f"filter index {index} out of range 0..{self.n_filters - 1}")
        flt = self.filters[index]
        flt.positions = boundary.sample(self.n_particles, flt.rng)

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpoint snapshot of the whole bank."""
        return {
            "n_filters": self.n_filters,
            "n_particles": self.n_particles,
            "filters": [f.state() for f in self.filters],
        }

    @classmethod
    def from_state(cls, state: dict) -> "ParticleFilterBank":
        """Rebuild a bank mid-run without re-running k-means/seeding.

        Bypasses ``__init__`` (which would consume fresh randomness);
        each member filter is restored from its own snapshot.
        """
        bank = cls.__new__(cls)
        bank.n_filters = int(state["n_filters"])
        bank.n_particles = int(state["n_particles"])
        bank.filters = [ParticleFilter.from_state(s)
                        for s in state["filters"]]
        if len(bank.filters) != bank.n_filters:
            raise ValueError(
                f"snapshot holds {len(bank.filters)} filters, "
                f"expected {bank.n_filters}")
        return bank
