"""Importance-sampling machinery: mixture alternative distributions.

The estimated optimal alternative distribution is a uniform-weight mixture
of isotropic Gaussian kernels centred on the final particles (paper
eq. 18).  :class:`GaussianMixture` supports sampling and stable
log-density evaluation; importance ratios are computed in log space to
survive the deep tails the particles live in.
"""

from __future__ import annotations

import numpy as np

from repro.variability.space import VariabilitySpace

_LOG_2PI = float(np.log(2.0 * np.pi))


class GaussianMixture:
    """Uniform-weight mixture of isotropic/diagonal Gaussian kernels.

    Parameters
    ----------
    means:
        Kernel centres, shape (K, D).
    sigma:
        Kernel standard deviation: a scalar or a (D,) diagonal.
    """

    def __init__(self, means, sigma) -> None:
        means = np.atleast_2d(np.asarray(means, dtype=float))
        if means.ndim != 2 or means.size == 0:
            raise ValueError("means must be a non-empty (K, D) array")
        self.means = means
        self.n_kernels, self.dim = means.shape
        sigma = np.asarray(sigma, dtype=float)
        if sigma.ndim == 0:
            sigma = np.full(self.dim, float(sigma))
        if sigma.shape != (self.dim,):
            raise ValueError(
                f"sigma must be scalar or ({self.dim},), got {sigma.shape}")
        if np.any(sigma <= 0):
            raise ValueError("sigma must be positive")
        self.sigma = sigma
        self._log_norm = -0.5 * (self.dim * _LOG_2PI
                                 + 2.0 * np.sum(np.log(sigma)))

    # ------------------------------------------------------------------
    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` points, shape (n, D)."""
        if n < 0:
            raise ValueError(f"cannot draw {n} samples")
        choice = rng.integers(0, self.n_kernels, size=n)
        noise = rng.standard_normal((n, self.dim)) * self.sigma
        return self.means[choice] + noise

    def log_pdf(self, x) -> np.ndarray:
        """Log density at points ``x`` (B, D) via log-sum-exp."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.dim:
            raise ValueError(
                f"expected points of dimension {self.dim}, got {x.shape[1]}")
        # (B, K) squared Mahalanobis distances to each kernel.
        diff = (x[:, None, :] - self.means[None, :, :]) / self.sigma
        sq = np.einsum("bkd,bkd->bk", diff, diff)
        log_k = self._log_norm - 0.5 * sq
        peak = log_k.max(axis=1)
        return (peak + np.log(np.mean(np.exp(log_k - peak[:, None]), axis=1)))

    def pdf(self, x) -> np.ndarray:
        return np.exp(self.log_pdf(x))


class DefensiveMixture:
    """Alternative distribution blended with the prior.

    ``Q'(x) = f * P(x) + (1 - f) * Q(x)`` with a small defensive fraction
    ``f``.  This bounds the importance weight by ``1/f``, which removes the
    weight-variance blow-up that a too-narrow particle mixture would
    otherwise cause in the dimensions orthogonal to the failure boundary
    (a standard defensive-importance-sampling construction; the paper does
    not spell out its safeguard, this is ours and is ablated in
    ``bench_ablation_defensive``).
    """

    def __init__(self, space: VariabilitySpace, mixture: GaussianMixture,
                 defensive_fraction: float = 0.1) -> None:
        if not 0.0 < defensive_fraction < 1.0:
            raise ValueError(
                f"defensive fraction must lie in (0, 1), got "
                f"{defensive_fraction}")
        if space.dim != mixture.dim:
            raise ValueError(
                f"space dim {space.dim} != mixture dim {mixture.dim}")
        self.space = space
        self.mixture = mixture
        self.fraction = float(defensive_fraction)
        self.dim = mixture.dim

    @property
    def weight_bound(self) -> float:
        """Mathematical upper bound on importance weights, ``1/f``.

        ``P/Q' = P / (f*P + (1-f)*Q) <= 1/f`` pointwise; any weight
        above it indicates broken numerics, which is what the health
        layer's clip guard checks against.
        """
        return 1.0 / self.fraction

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        from_prior = rng.random(n) < self.fraction
        out = self.mixture.sample(n, rng)
        n_prior = int(from_prior.sum())
        if n_prior:
            out[from_prior] = self.space.sample(n_prior, rng)
        return out

    def log_pdf(self, x) -> np.ndarray:
        log_p = self.space.log_pdf(np.atleast_2d(np.asarray(x, dtype=float)))
        log_q = self.mixture.log_pdf(x)
        return np.logaddexp(np.log(self.fraction) + log_p,
                            np.log1p(-self.fraction) + log_q)

    def pdf(self, x) -> np.ndarray:
        return np.exp(self.log_pdf(x))


def importance_ratios(space: VariabilitySpace, mixture,
                      x: np.ndarray) -> np.ndarray:
    """Importance weights P(x)/Q(x) for points drawn from ``mixture``.

    Computed as ``exp(logP - logQ)`` so that points deep in the tail do not
    underflow to 0/0.
    """
    x = np.atleast_2d(np.asarray(x, dtype=float))
    return np.exp(space.log_pdf(x) - mixture.log_pdf(x))


def effective_sample_size(weights: np.ndarray) -> float:
    """Kish effective sample size of a weight vector."""
    weights = np.asarray(weights, dtype=float)
    if weights.size == 0:
        return 0.0
    if np.any(weights < 0):
        raise ValueError("weights must be non-negative")
    total = weights.sum()
    if total <= 0.0:
        return 0.0
    return float(total * total / np.sum(weights * weights))
