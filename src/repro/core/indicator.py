"""Indicator protocol and transistor-level-simulation accounting.

An *indicator* maps a batch of points in the whitened variability space to
boolean failure labels (paper eq. 1).  Every evaluation stands for one
transistor-level simulation -- the quantity all of the paper's x-axes
count -- so estimators never call an indicator directly; they wrap it in a
:class:`CountingIndicator` tied to a :class:`SimulationCounter`.
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

import numpy as np


@runtime_checkable
class Indicator(Protocol):
    """Anything that can label whitened points as fail/pass."""

    dim: int

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Boolean failure labels for points ``x`` of shape (B, dim)."""
        ...


class SimulationCounter:
    """Counts transistor-level simulations (indicator evaluations).

    An optional hard ``budget`` turns the counter into a circuit breaker:
    exceeding it raises
    :class:`~repro.errors.BudgetExceededError`, which is the safe way to
    bound the cost of an exploratory run whose convergence behaviour is
    unknown (estimator-level ``max_simulations`` stops only at batch
    boundaries).
    """

    def __init__(self, budget: int | None = None) -> None:
        if budget is not None and budget < 1:
            raise ValueError(f"budget must be >= 1, got {budget}")
        self.count = 0
        self.budget = budget

    def add(self, n: int) -> None:
        if n < 0:
            raise ValueError(f"cannot add {n} simulations")
        self.count += int(n)
        if self.budget is not None and self.count > self.budget:
            from repro.errors import BudgetExceededError

            raise BudgetExceededError(
                f"simulation budget exhausted: {self.count} > "
                f"{self.budget}", spent=self.count, budget=self.budget)

    @property
    def remaining(self) -> int | None:
        """Simulations left before the budget trips (None = unlimited)."""
        if self.budget is None:
            return None
        return max(self.budget - self.count, 0)

    def state(self) -> dict:
        """Checkpoint snapshot (count plus the configured budget)."""
        return {"count": self.count, "budget": self.budget}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot.

        The budget is restored as saved so a resumed run keeps the same
        circuit-breaker the original run was started with.
        """
        count = int(state["count"])
        if count < 0:
            raise ValueError(f"cannot restore negative count {count}")
        self.count = count
        budget = state.get("budget")
        self.budget = None if budget is None else int(budget)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"SimulationCounter(count={self.count})"


class CountingIndicator:
    """Wrap an indicator so each evaluated point increments a counter.

    Also forwards ``margin`` when the wrapped indicator provides one (the
    SRAM indicators do); margin queries count as simulations too, since
    they require the same butterfly evaluation.
    """

    def __init__(self, indicator: Indicator,
                 counter: SimulationCounter | None = None) -> None:
        self.indicator = indicator
        self.counter = counter if counter is not None else SimulationCounter()
        self.dim = indicator.dim

    @property
    def count(self) -> int:
        return self.counter.count

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.counter.add(x.shape[0])
        return self.indicator.evaluate(x)

    def margin(self, x: np.ndarray) -> np.ndarray:
        if not hasattr(self.indicator, "margin"):
            raise AttributeError(
                f"{type(self.indicator).__name__} provides no margin()")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        self.counter.add(x.shape[0])
        return self.indicator.margin(x)


class FunctionIndicator:
    """Adapt a plain callable ``f(x) -> bool array`` to the protocol.

    Handy for synthetic test problems with known failure probability.
    """

    def __init__(self, func, dim: int) -> None:
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        self._func = func
        self.dim = dim

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        x = np.atleast_2d(np.asarray(x, dtype=float))
        labels = np.asarray(self._func(x), dtype=bool)
        if labels.shape != (x.shape[0],):
            raise ValueError(
                f"indicator function returned shape {labels.shape} for "
                f"{x.shape[0]} points")
        return labels
