"""Mean-shift importance sampling (minimum-norm / MPFP baseline).

The classical SRAM importance-sampling recipe the paper cites as [4]-[6]:
find the most probable failure point(s) -- in the whitened space, the
minimum-norm point of each failure lobe -- and sample from standard-normal
kernels shifted there.  Implemented as:

1. radial boundary search (shared with the other estimators);
2. per-lobe minimum-norm boundary point (lobes separated by directional
   k-means);
3. importance sampling from a uniform mixture of unit-sigma Gaussians
   centred on those points, every sample simulated.

Its stage-2 weights have a heavier tail than the particle-filter mixture
(the alternative distribution matches the failure region less closely),
which is why the paper's approach [8] superseded it -- visible in the
``bench_baselines`` comparison.
"""

from __future__ import annotations

import time

import numpy as np

from repro.core.boundary import BoundarySearchResult, find_failure_boundary
from repro.core.estimate import FailureEstimate, RunningMean, TracePoint
from repro.core.importance import GaussianMixture, importance_ratios
from repro.core.indicator import (
    CountingIndicator,
    Indicator,
    SimulationCounter,
)
from repro.core.particles import kmeans_directions
from repro.errors import EstimationError
from repro.rng import as_generator, spawn
from repro.variability.space import VariabilitySpace


class MeanShiftEstimator:
    """Minimum-norm mean-shift importance sampling.

    Parameters
    ----------
    n_shift_points:
        Number of mean-shift centres (= failure lobes assumed); the SRAM
        cell has two.
    shift_sigma:
        Kernel sigma of the shifted Gaussians (1.0 = the classic
        mean-shifted prior).
    """

    method = "mean-shift-is"

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, n_shift_points: int = 2,
                 shift_sigma: float = 1.0, n_boundary_directions: int = 64,
                 boundary_r_max: float = 8.0, batch_size: int = 2000,
                 m_rtn: int = 4, seed=None,
                 initial_boundary: BoundarySearchResult | None = None) -> None:
        if n_shift_points < 1:
            raise ValueError("n_shift_points must be >= 1")
        if shift_sigma <= 0:
            raise ValueError("shift_sigma must be positive")
        self.space = space
        self.rtn_model = rtn_model
        self.n_shift_points = n_shift_points
        self.shift_sigma = shift_sigma
        self.n_boundary_directions = n_boundary_directions
        self.boundary_r_max = boundary_r_max
        self.batch_size = batch_size
        self.m_rtn = m_rtn
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        boundary_source = getattr(indicator, "boundary_indicator", None)
        self.boundary_search_indicator = CountingIndicator(
            boundary_source if boundary_source is not None else indicator,
            self.counter)
        rng = as_generator(seed)
        self._rng_boundary, self._rng_cluster, self._rng_sample = spawn(rng, 3)
        self.boundary = initial_boundary
        self.mixture: GaussianMixture | None = None

    # ------------------------------------------------------------------
    def run(self, target_relative_error: float = 0.01,
            max_simulations: int = 500_000) -> FailureEstimate:
        """Estimate P_fail by IS from the mean-shifted mixture.

        Every statistical sample is simulated (no classifier); stops at
        the target relative error or the simulation cap.
        """
        start = time.perf_counter()
        if self.boundary is None:
            self.boundary = find_failure_boundary(
                self.boundary_search_indicator, self.n_boundary_directions,
                self._rng_boundary, r_max=self.boundary_r_max)
        centres = self._shift_points(self.boundary.points)
        self.mixture = GaussianMixture(centres, self.shift_sigma)

        m = 1 if self.rtn_model.is_null else self.m_rtn
        accumulator = RunningMean()
        trace: list[TracePoint] = []
        batches = 0
        while self.counter.count < max_simulations:
            x = self.mixture.sample(self.batch_size, self._rng_sample)
            ratios = importance_ratios(self.space, self.mixture, x)
            shifts, states = self.rtn_model.sample((x.shape[0], m),
                                                   self._rng_sample)
            total = self.rtn_model.mirror(x[:, None, :] + shifts, states)
            labels = self.indicator.evaluate(
                total.reshape(x.shape[0] * m, self.space.dim))
            y = labels.reshape(x.shape[0], m).mean(axis=1)
            accumulator.update(ratios * y)
            batches += 1
            trace.append(TracePoint(
                n_simulations=self.counter.count,
                estimate=accumulator.mean,
                ci_halfwidth=accumulator.ci95_halfwidth,
                n_statistical_samples=accumulator.count))
            if (batches >= 4 and accumulator.mean > 0
                    and accumulator.ci95_halfwidth / accumulator.mean
                    <= target_relative_error):
                break
        if accumulator.mean <= 0.0:
            raise EstimationError(
                "mean-shift importance sampling found no failures")
        return FailureEstimate(
            pfail=accumulator.mean, ci_halfwidth=accumulator.ci95_halfwidth,
            n_simulations=self.counter.count,
            n_statistical_samples=accumulator.count, method=self.method,
            wall_time_s=time.perf_counter() - start, trace=trace,
            metadata={"shift_points": centres.tolist()})

    # ------------------------------------------------------------------
    def _shift_points(self, boundary_points: np.ndarray) -> np.ndarray:
        """Minimum-norm boundary point of each directional cluster."""
        labels = kmeans_directions(boundary_points, self.n_shift_points,
                                   self._rng_cluster)
        centres = []
        norms = np.linalg.norm(boundary_points, axis=1)
        for j in range(self.n_shift_points):
            members = np.flatnonzero(labels == j)
            if members.size == 0:
                continue
            centres.append(boundary_points[members[np.argmin(norms[members])]])
        return np.stack(centres)
