"""Naive Monte Carlo over the joint (RDF, RTN) space.

The reference method (paper eq. 2 and the black curves of Fig. 7): draw
process variability from the prior, RTN shifts and the stored state from
the RTN model, simulate every sample.  Confidence intervals use the Wilson
score, which stays sensible at small failure counts.

With an :class:`~repro.runtime.config.ExecutionConfig` the sample block
is split into chunks, each drawn from its own child generator and
simulated as one runtime task.  The chunk decomposition is
backend-independent, so for a fixed seed the ``serial``, ``thread`` and
``process`` backends produce the bit-identical estimate; it is however a
*different* (equally valid) stream decomposition than the legacy
single-stream loop, which remains the default when no execution config is
given.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.indicator import (
    CountingIndicator,
    Indicator,
    SimulationCounter,
)
from repro.rng import as_generator, spawn
from repro.runtime import ExecutionConfig, Executor
from repro.runtime.chunking import chunk_sizes
from repro.variability.space import VariabilitySpace


def sample_and_label_chunk(n: int, rng: np.random.Generator,
                           space, indicator, rtn_model) -> tuple[int, int]:
    """Draw and simulate one naive-MC chunk; returns (failures, samples).

    Module-level so the process backend can pickle it.  The indicator is
    the raw (non-counting) one -- the parent accounts for simulations as
    it consumes chunk results.
    """
    x = space.sample(n, rng)
    shifts, states = rtn_model.sample(n, rng)
    total = rtn_model.mirror(x + shifts, states)
    return int(np.sum(indicator.evaluate(total))), n


class NaiveMonteCarlo:
    """Plain Monte-Carlo failure-probability estimator.

    Parameters
    ----------
    space:
        The whitened RDF space.
    indicator:
        Failure indicator in the *total-shift* space.  For RTN runs pass
        the stored-"0" lobe indicator (the sampler mirrors states onto it);
        for RDF-only runs pass the cell-level indicator and a
        :class:`~repro.rtn.model.ZeroRtnModel`.
    rtn_model:
        RTN sampler (or the null model).
    batch_size:
        Samples per vectorised batch (also the default chunk size of the
        parallel path).
    execution:
        Optional :class:`~repro.runtime.config.ExecutionConfig`; when
        given, the run executes through the parallel runtime (one task
        per chunk, one child RNG per chunk).  ``None`` keeps the legacy
        single-stream loop bit-identical to previous releases.
    """

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, batch_size: int = 5000, seed=None,
                 execution: ExecutionConfig | None = None) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self.rtn_model = rtn_model
        self.batch_size = batch_size
        self.rng = as_generator(seed)
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        self.execution = execution
        self.executor = (Executor(execution, counter=self.counter)
                         if execution is not None else None)

    # ------------------------------------------------------------------
    def run(self, n_samples: int,
            target_relative_error: float | None = None) -> FailureEstimate:
        """Estimate P_fail from up to ``n_samples`` simulations.

        Stops early if ``target_relative_error`` (CI95 half-width over
        estimate) is reached.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if self.executor is not None:
            return self._run_chunked(n_samples, target_relative_error)
        start = time.perf_counter()
        fails = 0
        drawn = 0
        trace: list[TracePoint] = []
        while drawn < n_samples:
            batch = min(self.batch_size, n_samples - drawn)
            x = self.space.sample(batch, self.rng)
            shifts, states = self.rtn_model.sample(batch, self.rng)
            total = self.rtn_model.mirror(x + shifts, states)
            fails += int(np.sum(self.indicator.evaluate(total)))
            drawn += batch

            estimate, halfwidth = wilson_interval(fails, drawn)
            trace.append(TracePoint(
                n_simulations=self.counter.count, estimate=estimate,
                ci_halfwidth=halfwidth, n_statistical_samples=drawn))
            if (target_relative_error is not None and estimate > 0.0
                    and halfwidth / estimate <= target_relative_error):
                break

        estimate, halfwidth = wilson_interval(fails, drawn)
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count, n_statistical_samples=drawn,
            method="naive-mc", wall_time_s=time.perf_counter() - start,
            trace=trace, metadata={"failures": fails})

    # ------------------------------------------------------------------
    def _run_chunked(self, n_samples: int,
                     target_relative_error: float | None) -> FailureEstimate:
        """Parallel path: one runtime task per chunk, one child RNG each.

        The stopping rule is evaluated on the ordered chunk prefix, so
        the consumed sample count -- and therefore the estimate -- does
        not depend on the backend or on out-of-order completion (chunks
        speculatively computed past an early stop are discarded and not
        counted).
        """
        start = time.perf_counter()
        chunk = (self.execution.chunk_size if self.execution.chunk_size
                 is not None else self.batch_size)
        sizes = chunk_sizes(n_samples, chunk)
        rngs = spawn(self.rng, len(sizes))
        tasks = [(n, rng, self.space, self.indicator.indicator,
                  self.rtn_model) for n, rng in zip(sizes, rngs)]

        fails = 0
        drawn = 0
        trace: list[TracePoint] = []
        results = self.executor.iter_tasks(
            sample_and_label_chunk, tasks, sizes=sizes, label="naive-mc")
        try:
            for n_fail, n in results:
                self.counter.add(n)
                fails += n_fail
                drawn += n
                estimate, halfwidth = wilson_interval(fails, drawn)
                trace.append(TracePoint(
                    n_simulations=self.counter.count, estimate=estimate,
                    ci_halfwidth=halfwidth, n_statistical_samples=drawn))
                if (target_relative_error is not None and estimate > 0.0
                        and halfwidth / estimate <= target_relative_error):
                    break
        finally:
            results.close()
            self.executor.close()

        estimate, halfwidth = wilson_interval(fails, drawn)
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count, n_statistical_samples=drawn,
            method="naive-mc", wall_time_s=time.perf_counter() - start,
            trace=trace,
            metadata={"failures": fails,
                      "execution": self.executor.aggregate().as_dict()})
