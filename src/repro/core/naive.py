"""Naive Monte Carlo over the joint (RDF, RTN) space.

The reference method (paper eq. 2 and the black curves of Fig. 7): draw
process variability from the prior, RTN shifts and the stored state from
the RTN model, simulate every sample.  Confidence intervals use the Wilson
score, which stays sensible at small failure counts.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.indicator import CountingIndicator, Indicator, SimulationCounter
from repro.rng import as_generator
from repro.variability.space import VariabilitySpace


class NaiveMonteCarlo:
    """Plain Monte-Carlo failure-probability estimator.

    Parameters
    ----------
    space:
        The whitened RDF space.
    indicator:
        Failure indicator in the *total-shift* space.  For RTN runs pass
        the stored-"0" lobe indicator (the sampler mirrors states onto it);
        for RDF-only runs pass the cell-level indicator and a
        :class:`~repro.rtn.model.ZeroRtnModel`.
    rtn_model:
        RTN sampler (or the null model).
    batch_size:
        Samples per vectorised batch.
    """

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, batch_size: int = 5000, seed=None):
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self.rtn_model = rtn_model
        self.batch_size = batch_size
        self.rng = as_generator(seed)
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)

    # ------------------------------------------------------------------
    def run(self, n_samples: int,
            target_relative_error: float | None = None) -> FailureEstimate:
        """Estimate P_fail from up to ``n_samples`` simulations.

        Stops early if ``target_relative_error`` (CI95 half-width over
        estimate) is reached.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        start = time.perf_counter()
        fails = 0
        drawn = 0
        trace: list[TracePoint] = []
        while drawn < n_samples:
            batch = min(self.batch_size, n_samples - drawn)
            x = self.space.sample(batch, self.rng)
            shifts, states = self.rtn_model.sample(batch, self.rng)
            total = self.rtn_model.mirror(x + shifts, states)
            fails += int(np.sum(self.indicator.evaluate(total)))
            drawn += batch

            estimate, halfwidth = wilson_interval(fails, drawn)
            trace.append(TracePoint(
                n_simulations=self.counter.count, estimate=estimate,
                ci_halfwidth=halfwidth, n_statistical_samples=drawn))
            if (target_relative_error is not None and estimate > 0.0
                    and halfwidth / estimate <= target_relative_error):
                break

        estimate, halfwidth = wilson_interval(fails, drawn)
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count, n_statistical_samples=drawn,
            method="naive-mc", wall_time_s=time.perf_counter() - start,
            trace=trace, metadata={"failures": fails})
