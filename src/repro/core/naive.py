"""Naive Monte Carlo over the joint (RDF, RTN) space.

The reference method (paper eq. 2 and the black curves of Fig. 7): draw
process variability from the prior, RTN shifts and the stored state from
the RTN model, simulate every sample.  Confidence intervals use the Wilson
score, which stays sensible at small failure counts.

With an :class:`~repro.runtime.config.ExecutionConfig` the sample block
is split into chunks, each drawn from its own child generator and
simulated as one runtime task.  The chunk decomposition is
backend-independent, so for a fixed seed the ``serial``, ``thread`` and
``process`` backends produce the bit-identical estimate; it is however a
*different* (equally valid) stream decomposition than the legacy
single-stream loop, which remains the default when no execution config is
given.
"""

from __future__ import annotations

import time

import numpy as np

from repro.analysis.stats import wilson_interval
from repro.core.estimate import FailureEstimate, TracePoint
from repro.core.indicator import (
    CountingIndicator,
    Indicator,
    SimulationCounter,
)
from repro.errors import CheckpointError
from repro.perf.profile import StageProfiler, merge_spans
from repro.rng import (
    as_generator,
    rng_from_state,
    rng_state,
    spawn,
    stable_seed,
)
from repro.runtime import (
    ExecutionConfig,
    Executor,
    indicator_perf_stats,
    perf_stats_delta,
)
from repro.runtime.chunking import chunk_sizes
from repro.variability.space import VariabilitySpace


def sample_and_label_chunk(n: int, rng: np.random.Generator,
                           space, indicator, rtn_model) -> tuple[int, int]:
    """Draw and simulate one naive-MC chunk; returns (failures, samples).

    Module-level so the process backend can pickle it.  The indicator is
    the raw (non-counting) one -- the parent accounts for simulations as
    it consumes chunk results.
    """
    x = space.sample(n, rng)
    shifts, states = rtn_model.sample(n, rng)
    total = rtn_model.mirror(x + shifts, states)
    return int(np.sum(indicator.evaluate(total))), n


def sample_and_label_chunk_stats(n: int, rng: np.random.Generator,
                                 space, indicator, rtn_model
                                 ) -> tuple[tuple[int, int], dict]:
    """:func:`sample_and_label_chunk` plus the evaluator-counter delta.

    On the process backend the worker labels on its own unpickled copy
    of the evaluator, so its perf counters (device-model evals, cache
    traffic) never reach the parent; the delta measured here -- inside
    the task, against whatever counts the copy started with -- is
    exactly this chunk's contribution, merged back by the parent for
    process-pool chunks only.
    """
    before = indicator_perf_stats(indicator)
    result = sample_and_label_chunk(n, rng, space, indicator, rtn_model)
    return result, perf_stats_delta(before, indicator_perf_stats(indicator))


class NaiveMonteCarlo:
    """Plain Monte-Carlo failure-probability estimator.

    Parameters
    ----------
    space:
        The whitened RDF space.
    indicator:
        Failure indicator in the *total-shift* space.  For RTN runs pass
        the stored-"0" lobe indicator (the sampler mirrors states onto it);
        for RDF-only runs pass the cell-level indicator and a
        :class:`~repro.rtn.model.ZeroRtnModel`.
    rtn_model:
        RTN sampler (or the null model).
    batch_size:
        Samples per vectorised batch (also the default chunk size of the
        parallel path).
    execution:
        Optional :class:`~repro.runtime.config.ExecutionConfig`; when
        given, the run executes through the parallel runtime (one task
        per chunk, one child RNG per chunk).  ``None`` keeps the legacy
        single-stream loop bit-identical to previous releases.
    """

    #: per-run perf-counter baseline, recaptured at the top of every
    #: :meth:`run` -- never checkpoint state.
    _SNAPSHOT_EXCLUDED = ("_perf_baseline",)

    def __init__(self, space: VariabilitySpace, indicator: Indicator,
                 rtn_model, batch_size: int = 5000, seed=None,
                 execution: ExecutionConfig | None = None) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.space = space
        self.rtn_model = rtn_model
        self.batch_size = batch_size
        self.rng = as_generator(seed)
        self.counter = SimulationCounter()
        self.indicator = CountingIndicator(indicator, self.counter)
        self.execution = execution
        self.executor = (Executor(execution, counter=self.counter)
                         if execution is not None else None)
        # Resumable-run progress (see state_snapshot).  ``_mode`` is None
        # until run() commits to the legacy or the chunked path.
        self._mode: str | None = None
        self._n_samples = 0
        self._fails = 0
        self._drawn = 0
        self._cursor = 0
        self._stopped = False
        self._chunk: int | None = None
        self._entry_rng: dict | None = None
        self._trace: list[TracePoint] = []
        self.profiler = StageProfiler()
        self._perf_baseline: dict = {}

    # ------------------------------------------------------------------
    def run(self, n_samples: int,
            target_relative_error: float | None = None,
            checkpoint=None) -> FailureEstimate:
        """Estimate P_fail from up to ``n_samples`` simulations.

        Stops early if ``target_relative_error`` (CI95 half-width over
        estimate) is reached.  ``checkpoint`` (a
        :class:`~repro.checkpoint.manager.CheckpointManager`) snapshots
        after every batch (legacy path) or consumed chunk (parallel
        path); a restored estimator must be re-run with the same
        ``n_samples``.
        """
        if n_samples < 1:
            raise ValueError(f"n_samples must be >= 1, got {n_samples}")
        if self._mode is not None and self._n_samples != n_samples:
            raise CheckpointError(
                f"snapshot was taken for n_samples="
                f"{self._n_samples}, cannot resume with {n_samples}")
        self._n_samples = n_samples
        self._perf_baseline = self._evaluator_perf_stats()
        if self.executor is not None:
            if self._mode == "legacy":
                raise CheckpointError(
                    "snapshot comes from the single-stream path; resume "
                    "without an execution config")
            return self._run_chunked(n_samples, target_relative_error,
                                     checkpoint)
        if self._mode == "chunked":
            raise CheckpointError(
                "snapshot comes from the chunked path; resume with an "
                "execution config")
        self._mode = "legacy"
        start = time.perf_counter()
        while not self._stopped and self._drawn < n_samples:
            batch = min(self.batch_size, n_samples - self._drawn)
            with self.profiler.span("mc-sample"):
                x = self.space.sample(batch, self.rng)
                shifts, states = self.rtn_model.sample(batch, self.rng)
                total = self.rtn_model.mirror(x + shifts, states)
            with self.profiler.span("mc-label"):
                self._fails += int(np.sum(self.indicator.evaluate(total)))
            self._drawn += batch

            estimate, halfwidth = wilson_interval(self._fails, self._drawn)
            self._trace.append(TracePoint(
                n_simulations=self.counter.count, estimate=estimate,
                ci_halfwidth=halfwidth, n_statistical_samples=self._drawn))
            # Stop decision before the snapshot, so a resumed run never
            # draws a batch the uninterrupted run would have skipped.
            if (target_relative_error is not None and estimate > 0.0
                    and halfwidth / estimate <= target_relative_error):
                self._stopped = True
            if checkpoint is not None:
                checkpoint.maybe_save(self, self.counter.count)

        estimate, halfwidth = wilson_interval(self._fails, self._drawn)
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count,
            n_statistical_samples=self._drawn,
            method="naive-mc", wall_time_s=time.perf_counter() - start,
            trace=list(self._trace),
            metadata={"failures": self._fails,
                      "perf": self._perf_metadata()})

    # ------------------------------------------------------------------
    def _run_chunked(self, n_samples: int,
                     target_relative_error: float | None,
                     checkpoint=None) -> FailureEstimate:
        """Parallel path: one runtime task per chunk, one child RNG each.

        The stopping rule is evaluated on the ordered chunk prefix, so
        the consumed sample count -- and therefore the estimate -- does
        not depend on the backend or on out-of-order completion (chunks
        speculatively computed past an early stop are discarded and not
        counted).

        Resumability: the parent generator state is captured *before*
        the chunk RNGs are spawned, so a resumed run re-derives the
        identical chunk streams and simply skips the ``_cursor`` chunks
        already consumed.
        """
        start = time.perf_counter()
        self._mode = "chunked"
        chunk = (self.execution.chunk_size if self.execution.chunk_size
                 is not None else self.batch_size)
        if self._chunk is None:
            self._chunk = int(chunk)
            self._entry_rng = rng_state(self.rng)
        elif self._chunk != chunk:
            raise CheckpointError(
                f"snapshot was chunked at {self._chunk} samples, cannot "
                f"resume with chunk size {chunk}")
        sizes = chunk_sizes(n_samples, self._chunk)
        rngs = spawn(rng_from_state(self._entry_rng), len(sizes))
        tasks = [(n, rng, self.space, self.indicator.indicator,
                  self.rtn_model) for n, rng in zip(sizes, rngs)]

        try:
            if not self._stopped and self._cursor < len(sizes):
                results = self.executor.iter_tasks(
                    sample_and_label_chunk_stats, tasks[self._cursor:],
                    sizes=sizes[self._cursor:], label="naive-mc",
                    with_records=True)
                try:
                    for ((n_fail, n), stats), record in results:
                        self._absorb_worker_stats(stats, record.where)
                        self.counter.add(n)
                        self._fails += n_fail
                        self._drawn += n
                        self._cursor += 1
                        estimate, halfwidth = wilson_interval(
                            self._fails, self._drawn)
                        self._trace.append(TracePoint(
                            n_simulations=self.counter.count,
                            estimate=estimate, ci_halfwidth=halfwidth,
                            n_statistical_samples=self._drawn))
                        if (target_relative_error is not None
                                and estimate > 0.0
                                and halfwidth / estimate
                                <= target_relative_error):
                            self._stopped = True
                        if checkpoint is not None:
                            checkpoint.maybe_save(self, self.counter.count)
                        if self._stopped:
                            break
                finally:
                    results.close()
        finally:
            self.executor.close()

        estimate, halfwidth = wilson_interval(self._fails, self._drawn)
        execution = self.executor.aggregate()
        merge_spans(execution.spans, self.profiler.as_dict())
        return FailureEstimate(
            pfail=estimate, ci_halfwidth=halfwidth,
            n_simulations=self.counter.count,
            n_statistical_samples=self._drawn,
            method="naive-mc", wall_time_s=time.perf_counter() - start,
            trace=list(self._trace),
            metadata={"failures": self._fails,
                      "execution": execution.as_dict(),
                      "perf": self._perf_metadata()})

    # ------------------------------------------------------------------
    # perf telemetry (see EcripseEstimator for the delta rationale)
    # ------------------------------------------------------------------
    def _evaluator_perf_stats(self) -> dict:
        evaluator = getattr(self.indicator.indicator, "evaluator", None)
        stats = getattr(evaluator, "perf_stats", None)
        return stats() if callable(stats) else {}

    def _absorb_worker_stats(self, stats: dict, where: str) -> None:
        """Merge a process-pool chunk's evaluator-counter delta.

        Serial / thread / fallback chunks ran on the parent's own
        evaluator object, so their counts are already in; only the
        process backend's unpickled worker copies do work the parent
        never sees.
        """
        if where != "process" or not stats:
            return
        evaluator = getattr(self.indicator.indicator, "evaluator", None)
        absorb = getattr(evaluator, "absorb_stats", None)
        if callable(absorb):
            absorb(stats)

    def _perf_metadata(self) -> dict:
        perf: dict = {"spans": self.profiler.as_dict()}
        for key, value in self._evaluator_perf_stats().items():
            if key == "cache_entries":
                perf[key] = value
            else:
                perf[key] = value - self._perf_baseline.get(key, 0)
        return perf

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def fingerprint(self) -> str:
        """Stable hex id of the estimation problem (backend excluded)."""
        return format(stable_seed(
            "naive-mc", self.space.dim, self.batch_size,
            type(self.rtn_model).__name__,
            getattr(self.rtn_model, "alpha", None)), "016x")

    def state_snapshot(self) -> dict:
        """Complete resumable state at a batch/chunk boundary."""
        return {
            "mode": self._mode,
            "n_samples": self._n_samples,
            "fails": self._fails,
            "drawn": self._drawn,
            "cursor": self._cursor,
            "stopped": self._stopped,
            "chunk": self._chunk,
            "counter": self.counter.state(),
            "rng": rng_state(self.rng),
            "entry_rng": self._entry_rng,
            "trace": [point.as_dict() for point in self._trace],
            "solve_cache": self._cache_snapshot(),
        }

    def _cache_snapshot(self) -> dict | None:
        cache = getattr(
            getattr(self.indicator.indicator, "evaluator", None),
            "cache", None)
        return None if cache is None else cache.state()

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state_snapshot`; continues bit-identically."""
        try:
            mode = state["mode"]
            if mode not in (None, "legacy", "chunked"):
                raise ValueError(f"unknown mode {mode!r}")
            self._mode = mode
            self._n_samples = int(state["n_samples"])
            self._fails = int(state["fails"])
            self._drawn = int(state["drawn"])
            self._cursor = int(state["cursor"])
            self._stopped = bool(state["stopped"])
            chunk = state["chunk"]
            self._chunk = None if chunk is None else int(chunk)
            self.counter.restore_state(state["counter"])
            self.rng = rng_from_state(state["rng"])
            self._entry_rng = state["entry_rng"]
            self._trace = [TracePoint.from_dict(point)
                           for point in state["trace"]]
            # Older snapshots predate the solve cache (.get -> cold).
            cache_state = state.get("solve_cache")
            cache = getattr(
                getattr(self.indicator.indicator, "evaluator", None),
                "cache", None)
            if cache is not None and cache_state is not None:
                cache.restore_state(cache_state)
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(
                f"invalid naive-mc snapshot: {exc}") from exc
