"""Particle ensembles: resampling schemes and diagnostics."""

from __future__ import annotations

import numpy as np


def multinomial_resample(weights: np.ndarray, n: int,
                         rng: np.random.Generator) -> np.ndarray:
    """Indices of ``n`` particles drawn i.i.d. proportional to ``weights``."""
    p = _normalised(weights)
    return rng.choice(p.size, size=n, p=p)


def systematic_resample(weights: np.ndarray, n: int,
                        rng: np.random.Generator) -> np.ndarray:
    """Systematic (low-variance) resampling.

    A single uniform offset stratifies the cumulative weight axis; this is
    the standard choice for particle filters because it minimises
    resampling noise while staying unbiased.
    """
    p = _normalised(weights)
    positions = (rng.random() + np.arange(n)) / n
    return np.searchsorted(np.cumsum(p), positions).clip(0, p.size - 1)


def _normalised(weights: np.ndarray) -> np.ndarray:
    weights = np.asarray(weights, dtype=float)
    if weights.ndim != 1 or weights.size == 0:
        raise ValueError("weights must be a non-empty 1-D array")
    if np.any(weights < 0) or not np.all(np.isfinite(weights)):
        raise ValueError("weights must be finite and non-negative")
    total = weights.sum()
    if total <= 0.0:
        raise ValueError("at least one weight must be positive")
    return weights / total


def unique_fraction(indices: np.ndarray) -> float:
    """Fraction of distinct ancestors after resampling (degeneracy
    diagnostic: 1.0 = no collapse, ~0 = full collapse)."""
    indices = np.asarray(indices)
    if indices.size == 0:
        return 0.0
    return np.unique(indices).size / indices.size


def ensemble_spread(positions: np.ndarray) -> float:
    """RMS distance of particles from their centroid."""
    positions = np.atleast_2d(np.asarray(positions, dtype=float))
    centred = positions - positions.mean(axis=0)
    return float(np.sqrt(np.mean(np.sum(centred * centred, axis=1))))


def kmeans_directions(points: np.ndarray, k: int, rng: np.random.Generator,
                      n_iterations: int = 25) -> np.ndarray:
    """Cluster points by *direction* (cosine k-means).

    Used to split boundary points between particle filters so that each
    filter starts on one failure lobe.  Returns integer labels (M,).
    """
    points = np.atleast_2d(np.asarray(points, dtype=float))
    if k < 1:
        raise ValueError(f"k must be >= 1, got {k}")
    norms = np.linalg.norm(points, axis=1, keepdims=True)
    if np.any(norms == 0):
        raise ValueError("cannot cluster zero vectors by direction")
    unit = points / norms
    if k == 1 or points.shape[0] <= k:
        return np.arange(points.shape[0]) % k

    # k-means++ style init on the sphere.
    centres = [unit[rng.integers(points.shape[0])]]
    for _ in range(k - 1):
        sims = np.max(np.stack([unit @ c for c in centres]), axis=0)
        dist = np.maximum(1.0 - sims, 1e-12)
        centres.append(unit[rng.choice(points.shape[0], p=dist / dist.sum())])
    centres = np.stack(centres)

    labels = np.zeros(points.shape[0], dtype=int)
    for _ in range(n_iterations):
        sims = unit @ centres.T
        new_labels = np.argmax(sims, axis=1)
        if np.array_equal(new_labels, labels) and _ > 0:
            break
        labels = new_labels
        for j in range(k):
            members = unit[labels == j]
            if members.shape[0] == 0:
                continue
            mean = members.mean(axis=0)
            norm = np.linalg.norm(mean)
            if norm > 0:
                centres[j] = mean / norm
    return labels
