"""Bias-condition sweeps (the machinery behind Fig. 7b and Fig. 8).

A :class:`BiasSweep` runs the ECRIPSE estimator across a list of duty
ratios, sharing the expensive pieces the paper shares:

* the **initial boundary** (step 1 runs once -- "The same initial samples
  are shared among the other calculations with different gate bias
  conditions");
* optionally the **classifier**: at a fixed supply the deterministic
  indicator does not depend on the duty ratio, so labelled samples remain
  valid and later bias points start with a well-trained blockade.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

import numpy as np

from repro.checkpoint import CheckpointConfig, run_checkpointed
from repro.core.boundary import BoundarySearchResult
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.ml.blockade import ClassifierBlockade
from repro.rng import stable_seed
from repro.rtn.model import RtnModel
from repro.variability.space import VariabilitySpace


@dataclass
class BiasSweepResult:
    """Per-duty-ratio estimates plus sharing diagnostics.

    Attributes
    ----------
    alphas:
        The swept duty ratios.
    estimates:
        One :class:`FailureEstimate` per duty ratio.
    total_simulations:
        Simulations across the whole sweep (the paper reports ~2e5 for
        the eleven bias points of Fig. 8).
    """

    alphas: list[float]
    estimates: list[FailureEstimate]
    total_simulations: int
    wall_time_s: float
    metadata: dict = field(default_factory=dict)

    def pfail_curve(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """``(alphas, pfail, ci_halfwidth)`` arrays for plotting Fig. 8."""
        return (np.array(self.alphas),
                np.array([e.pfail for e in self.estimates]),
                np.array([e.ci_halfwidth for e in self.estimates]))

    def worst_case(self) -> tuple[float, FailureEstimate]:
        """Duty ratio with the highest estimated failure probability."""
        index = int(np.argmax([e.pfail for e in self.estimates]))
        return self.alphas[index], self.estimates[index]


class BiasSweep:
    """Run ECRIPSE over a set of duty ratios with shared initialisation.

    Parameters
    ----------
    space, indicator:
        As for :class:`~repro.core.ecripse.EcripseEstimator`; the
        indicator must be the stored-"0" lobe indicator (states are
        mirrored onto it).
    conditions:
        :class:`~repro.config.PaperConditions` used to build the per-alpha
        RTN models.
    share_classifier:
        Reuse the trained blockade across bias points (valid at fixed
        supply; disable to reproduce per-point training costs).
    convention:
        RTN occupancy convention (see :mod:`repro.rtn.traps`).
    """

    def __init__(self, space: VariabilitySpace, indicator, conditions,
                 config: EcripseConfig | None = None,
                 share_classifier: bool = True,
                 convention: str = "physical", seed=None) -> None:
        self.space = space
        self.indicator = indicator
        self.conditions = conditions
        self.config = config if config is not None else EcripseConfig()
        self.share_classifier = share_classifier
        self.convention = convention
        self._seed_root = seed if seed is not None else stable_seed("sweep")

    # ------------------------------------------------------------------
    def run(self, alphas, target_relative_error: float = 0.05,
            max_simulations_per_point: int | None = None,
            checkpoint: CheckpointConfig | None = None,
            crash_budget: list[int] | None = None) -> BiasSweepResult:
        """Estimate P_fail at every duty ratio in ``alphas``.

        With a ``checkpoint`` policy each bias point snapshots into its
        own subdirectory (``alpha-00``, ``alpha-01``, ...); on resume,
        finished points are loaded from their result files (their final
        estimator state is restored so boundary/classifier sharing is
        preserved) and the interrupted point continues mid-run.
        """
        alphas = [float(a) for a in alphas]
        if not alphas:
            raise ValueError("need at least one duty ratio")
        start = time.perf_counter()
        boundary: BoundarySearchResult | None = None
        classifier: ClassifierBlockade | None = None
        estimates: list[FailureEstimate] = []
        total_sims = 0
        for index, alpha in enumerate(alphas):
            rtn = RtnModel(self.conditions, self.space, alpha,
                           convention=self.convention)
            estimator = EcripseEstimator(
                self.space, self.indicator, rtn, config=self.config,
                seed=stable_seed(self._seed_root, index, alpha),
                initial_boundary=boundary, classifier=classifier)
            estimate = run_checkpointed(
                checkpoint, f"alpha-{index:02d}", estimator,
                crash_budget=crash_budget,
                target_relative_error=target_relative_error,
                max_simulations=max_simulations_per_point)
            estimate.metadata["alpha"] = alpha
            estimates.append(estimate)
            total_sims += estimator.counter.count
            boundary = estimator.boundary
            if self.share_classifier:
                classifier = estimator.blockade
        return BiasSweepResult(
            alphas=alphas, estimates=estimates,
            total_simulations=total_sims,
            wall_time_s=time.perf_counter() - start,
            metadata={"share_classifier": self.share_classifier,
                      "convention": self.convention})
