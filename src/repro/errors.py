"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
:class:`DegradationError` extends the single-root hierarchy for the
health layer (:mod:`repro.health`): it is raised only under
``HealthPolicy.strict`` when a numerical-degradation monitor trips that
has no organic typed error of its own.  The sibling
:class:`HealthyDegradation` is a *warning* category (not an error): it
is emitted when a recovery path engages under the ``recover`` or
``permissive`` policies, so callers can surface or silence degradation
chatter with the standard :mod:`warnings` machinery.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Raised for malformed circuit descriptions (unknown nodes, duplicate
    element names, missing ground, ...)."""


class ConvergenceError(ReproError):
    """Raised when a nonlinear solve fails to converge.

    Carries the residual of the best iterate (finite by construction in
    :class:`~repro.spice.solver.DcSolver`) plus the iterate itself, so
    the health layer's degraded-accept path can decide whether the
    partial answer is usable and package it without re-solving.
    """

    def __init__(self, message: str, residual: float | None = None,
                 best_x=None, iterations: int = 0):
        super().__init__(message)
        self.residual = residual
        self.best_x = best_x
        self.iterations = iterations


class CalibrationError(ReproError):
    """Raised when a model cannot be calibrated to the requested target."""


class EstimationError(ReproError):
    """Raised when a failure-probability estimator cannot produce a valid
    estimate (e.g. zero failure samples after exhausting its budget)."""


class ClassifierError(ReproError):
    """Raised for invalid classifier usage (predicting before training,
    inconsistent feature dimensions, degenerate training sets)."""


class BudgetExceededError(ReproError):
    """Raised when a simulation budget is exhausted mid-run."""

    def __init__(self, message: str, spent: int, budget: int):
        super().__init__(message)
        self.spent = spent
        self.budget = budget


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read or applied: a
    corrupted manifest, a checksum mismatch, a schema written by a newer
    build, or a snapshot that does not match the estimator it is being
    restored into."""


class CheckpointCrash(ReproError):
    """Raised by the checkpoint crash injector immediately *after* a
    checkpoint has been durably written.

    This is test/CI machinery (``--crash-after-checkpoints``): it
    simulates a process kill at a checkpoint boundary so the kill/resume
    invariant can be exercised deterministically.  It is never raised in
    normal operation.
    """


class DegradationError(ReproError):
    """Raised *only* under ``HealthPolicy.strict`` when a health monitor
    detects numerical degradation that has no organic typed error of its
    own (particle-filter lobe collapse, an importance-weight ESS floor
    breach, a weight-clip trigger).

    Under the ``recover`` and ``permissive`` policies the same
    detections run a recovery path and emit a :class:`HealthyDegradation`
    warning instead.  Carries the health-event category so callers can
    tell which monitor tripped without parsing the message.
    """

    def __init__(self, message: str, category: str | None = None):
        super().__init__(message)
        self.category = category


class HealthyDegradation(UserWarning):
    """Warning category for recovered numerical degradation.

    Emitted by :mod:`repro.health` whenever a recovery path engages
    under ``HealthPolicy.recover`` / ``permissive`` (solver retry,
    filter re-seed, mixture widening, classifier blockade, rule-of-three
    upper bound).  The run continues; the full detail lands in the
    :class:`~repro.health.events.HealthReport` attached to the estimate.
    """


class ShutdownRequested(ReproError):
    """Raised at a checkpoint-safe boundary after a graceful-shutdown
    request (SIGTERM/SIGINT via :mod:`repro.runtime.signals`, or a
    service-level interrupt such as a job cancellation).

    By construction the snapshot announcing this exception is already
    durably on disk: :meth:`~repro.checkpoint.manager.CheckpointManager.
    maybe_save` force-saves *before* raising, so a run unwound by this
    exception resumes bit-identically from where it stopped.  Carries
    the interrupt reason (``"SIGTERM"``, ``"cancel"``, ...).
    """

    def __init__(self, reason: str = "shutdown"):
        super().__init__(f"graceful shutdown requested ({reason})")
        self.reason = reason


class ServiceError(ReproError):
    """Raised by :mod:`repro.service` for protocol-level failures: an
    invalid job spec, an illegal job state transition, or a store
    directory that cannot be recovered."""


class ExecutionError(ReproError):
    """Raised when the parallel runtime cannot complete a task: the chunk
    failed on the backend, exhausted its retries *and* failed the final
    in-process fallback attempt (or fallback was disabled).

    Carries the index of the offending chunk so callers can correlate it
    with the :class:`~repro.runtime.metrics.RunMetrics` chunk records.
    """

    def __init__(self, message: str, chunk_index: int | None = None):
        super().__init__(message)
        self.chunk_index = chunk_index
