"""Exception hierarchy for the :mod:`repro` package.

All library-specific failures derive from :class:`ReproError` so callers can
catch everything from this package with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class NetlistError(ReproError):
    """Raised for malformed circuit descriptions (unknown nodes, duplicate
    element names, missing ground, ...)."""


class ConvergenceError(ReproError):
    """Raised when a nonlinear solve fails to converge.

    Carries the residual of the best iterate so callers can decide whether
    the partial answer is usable.
    """

    def __init__(self, message: str, residual: float | None = None):
        super().__init__(message)
        self.residual = residual


class CalibrationError(ReproError):
    """Raised when a model cannot be calibrated to the requested target."""


class EstimationError(ReproError):
    """Raised when a failure-probability estimator cannot produce a valid
    estimate (e.g. zero failure samples after exhausting its budget)."""


class ClassifierError(ReproError):
    """Raised for invalid classifier usage (predicting before training,
    inconsistent feature dimensions, degenerate training sets)."""


class BudgetExceededError(ReproError):
    """Raised when a simulation budget is exhausted mid-run."""

    def __init__(self, message: str, spent: int, budget: int):
        super().__init__(message)
        self.spent = spent
        self.budget = budget


class CheckpointError(ReproError):
    """Raised when a checkpoint cannot be written, read or applied: a
    corrupted manifest, a checksum mismatch, a schema written by a newer
    build, or a snapshot that does not match the estimator it is being
    restored into."""


class CheckpointCrash(ReproError):
    """Raised by the checkpoint crash injector immediately *after* a
    checkpoint has been durably written.

    This is test/CI machinery (``--crash-after-checkpoints``): it
    simulates a process kill at a checkpoint boundary so the kill/resume
    invariant can be exercised deterministically.  It is never raised in
    normal operation.
    """


class ExecutionError(ReproError):
    """Raised when the parallel runtime cannot complete a task: the chunk
    failed on the backend, exhausted its retries *and* failed the final
    in-process fallback attempt (or fallback was disabled).

    Carries the index of the offending chunk so callers can correlate it
    with the :class:`~repro.runtime.metrics.RunMetrics` chunk records.
    """

    def __init__(self, message: str, chunk_index: int | None = None):
        super().__init__(message)
        self.chunk_index = chunk_index
