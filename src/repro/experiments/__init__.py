"""Runnable reproductions of the paper's figures.

Each module regenerates one figure/table as printable tables of the same
series the paper plots:

* :mod:`repro.experiments.fig6` -- proposed vs conventional convergence;
* :mod:`repro.experiments.fig7` -- proposed vs naive MC with RTN;
* :mod:`repro.experiments.fig8` -- failure probability vs duty ratio;
* :mod:`repro.experiments.ablations` -- classifier / filter-count /
  polynomial-degree / occupancy-convention ablations;
* :mod:`repro.experiments.runner` -- the ``ecripse`` CLI entry point.
"""

from __future__ import annotations

from repro.experiments.setup import ExperimentSetup, paper_setup

__all__ = ["ExperimentSetup", "paper_setup"]
