"""Ablation experiments A1-A4 (see DESIGN.md).

Each function isolates one design decision:

* A1 ``classifier_ablation`` -- simulations saved by the classifier at
  equal accuracy;
* A2 ``filter_count_ablation`` -- particle-filter degeneracy: with one
  filter the ensemble collapses onto one of the two symmetric failure
  lobes and the failure probability is underestimated (Section III-B's
  motivation for multiple filters);
* A3 ``polynomial_degree_ablation`` -- classifier accuracy near the
  boundary vs feature degree (the paper picks D_poly = 4);
* A4 ``occupancy_convention_ablation`` -- the printed eq. (10) vs the
  physical stationary occupancy (DESIGN.md "Substitutions"): only the
  physical form produces Fig. 8's U-shape.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.tables import format_table
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.sweep import BiasSweep
from repro.experiments.setup import paper_setup
from repro.ml.blockade import ClassifierBlockade
from repro.perf import PerfConfig
from repro.rng import stable_seed


def classifier_ablation(target_relative_error: float = 0.05,
                        config: EcripseConfig | None = None,
                        seed: int = 7,
                        perf: PerfConfig | None = None) -> dict:
    """A1: run ECRIPSE with and without the classifier."""
    setup = paper_setup(perf=perf)
    config = config if config is not None else EcripseConfig()
    results = {}
    for label, use in (("with classifier", True), ("without", False)):
        estimator = EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model,
            config=config.with_(use_classifier=use),
            seed=stable_seed(seed, label))
        results[label] = estimator.run(
            target_relative_error=target_relative_error)
    results["simulation_saving"] = (
        results["without"].n_simulations
        / results["with classifier"].n_simulations)
    return results


def filter_count_ablation(filter_counts=(1, 2, 4),
                          target_relative_error: float = 0.05,
                          config: EcripseConfig | None = None,
                          seeds=(1, 2, 3, 4, 5)) -> dict:
    """A2: estimate vs number of particle filters.

    A single filter frequently collapses onto one lobe; because the
    defensive prior component still covers the other lobe the bias is
    softened in this implementation, so the diagnostic reported is both
    the estimate and the fraction of runs whose final particle cloud has
    all its mass on one side (``collapsed``).
    """
    setup = paper_setup()
    base = config if config is not None else EcripseConfig()
    table = {}
    for count in filter_counts:
        estimates, collapsed = [], 0
        for seed in seeds:
            estimator = EcripseEstimator(
                setup.space, setup.indicator, setup.rtn_model,
                config=base.with_(n_filters=count),
                seed=stable_seed("filters", count, seed))
            estimates.append(estimator.run(
                target_relative_error=target_relative_error).pfail)
            positions = estimator.filter_bank.positions()
            # The two SRAM lobes separate along the D1-D2 mismatch axis.
            sides = np.sign(positions[:, 1] - positions[:, 4])
            if np.all(sides >= 0) or np.all(sides <= 0):
                collapsed += 1
        table[count] = {
            "mean_pfail": float(np.mean(estimates)),
            "spread": float(np.std(estimates)),
            "collapsed_runs": collapsed,
            "runs": len(seeds),
        }
    return table


def polynomial_degree_ablation(degrees=(1, 2, 3, 4), n_train: int = 2000,
                               n_test: int = 4000, seed: int = 11) -> dict:
    """A3: classifier accuracy near the failure boundary vs degree.

    Points are sampled around the boundary radius (the hard region); the
    returned accuracies make the case for the paper's degree-4 choice.
    """
    setup = paper_setup()
    rng = np.random.default_rng(seed)
    # sample a shell around the typical failure radius
    radius = 3.5
    def shell(n):
        direction = rng.standard_normal((n, 6))
        direction /= np.linalg.norm(direction, axis=1, keepdims=True)
        return direction * rng.uniform(radius - 1.5, radius + 1.5, (n, 1))

    x_train, x_test = shell(n_train), shell(n_test)
    y_train = setup.indicator.evaluate(x_train)
    y_test = setup.indicator.evaluate(x_test)

    accuracies = {}
    for degree in degrees:
        blockade = ClassifierBlockade(dim=6, degree=degree,
                                      band_quantile=0.0, seed=seed)
        blockade.train(x_train, y_train)
        predicted = blockade.predict(x_test).labels
        accuracies[degree] = float(np.mean(predicted == y_test))
    return accuracies


def occupancy_convention_ablation(alphas=(0.0, 0.5, 1.0),
                                  target_relative_error: float = 0.07,
                                  config: EcripseConfig | None = None,
                                  seed: int = 13) -> dict:
    """A4: Fig. 8 endpoints under both occupancy conventions.

    Under the physical convention P(0) and P(1) exceed P(0.5) (U-shape);
    the literal eq. (10) inverts the trend.
    """
    config = config if config is not None else EcripseConfig()
    curves = {}
    for convention in ("physical", "paper"):
        setup = paper_setup(alpha=0.5, convention=convention)
        sweep = BiasSweep(setup.space, setup.indicator, setup.conditions,
                          config=config, convention=convention,
                          seed=stable_seed(seed, convention)).run(
            alphas, target_relative_error=target_relative_error)
        curves[convention] = dict(zip(
            sweep.alphas, [e.pfail for e in sweep.estimates]))
    return curves


def main(config: EcripseConfig | None = None,
         perf: PerfConfig | None = None
         ) -> None:  # pragma: no cover - exercised via the CLI
    print("A1: classifier ablation")
    a1 = classifier_ablation(config=config, perf=perf)
    print(format_table(
        ["variant", "Pfail", "simulations"],
        [[k, f"{v.pfail:.3e}", v.n_simulations]
         for k, v in a1.items() if k != "simulation_saving"]))
    print(f"saving: {a1['simulation_saving']:.1f}x fewer simulations\n")

    print("A3: polynomial degree ablation (boundary-shell accuracy)")
    a3 = polynomial_degree_ablation()
    print(format_table(["degree", "accuracy"],
                       [[d, f"{a:.3f}"] for d, a in a3.items()]))


if __name__ == "__main__":  # pragma: no cover
    main()
