"""Campaign driver: regenerate every experiment and write a report.

``ecripse campaign --out results/`` runs the Fig. 6/7/8 harnesses (and
optionally the ablations), saves every individual estimate as JSON
(:mod:`repro.analysis.persistence`) and renders a single markdown report
with the paper-vs-measured tables -- the machine-generated counterpart of
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path

from repro.analysis.persistence import save_estimate
from repro.checkpoint import CheckpointConfig
from repro.core.ecripse import EcripseConfig
from repro.experiments import fig6, fig7, fig8
from repro.perf import PerfConfig
from repro.runtime import ExecutionConfig


def run_campaign(out_dir, config: EcripseConfig | None = None,
                 target_relative_error: float = 0.05,
                 naive_samples: int = 100_000,
                 alphas=(0.0, 0.25, 0.5, 0.75, 1.0),
                 seed: int = 2015, include=("fig6", "fig7", "fig8"),
                 execution: ExecutionConfig | None = None,
                 checkpoint: CheckpointConfig | None = None,
                 perf: PerfConfig | None = None) -> Path:
    """Run the selected experiments and write ``report.md`` plus per-run
    JSON files into ``out_dir``.  Returns the report path.

    ``execution`` overrides the runtime backend/worker settings of
    ``config`` for every experiment in the campaign (the naive baseline
    included); estimates are backend-invariant for a fixed seed.

    ``checkpoint`` makes the Fig. 7/8 estimator runs crash-safe: a
    killed campaign re-invoked with the same arguments and
    ``resume=True`` skips finished runs and continues the interrupted
    one mid-flight.  A campaign owns its output files, so the JSON
    results are refreshed with an explicit ``overwrite=True``.

    ``perf`` selects the hot-path acceleration policy for every
    experiment (see :mod:`repro.perf`); a ``cache_path``-equipped config
    shares solved margins across campaign repeats through the on-disk
    cache.
    """
    out = Path(out_dir)
    out.mkdir(parents=True, exist_ok=True)
    config = config if config is not None else EcripseConfig()
    if execution is not None:
        config = config.with_(execution=execution)
    runtime = config.execution
    sections: list[str] = [
        "# ECRIPSE experiment campaign",
        "",
        f"generated: {time.strftime('%Y-%m-%d %H:%M:%S')}",
        f"budgets: target rel. err. {target_relative_error:.0%}, "
        f"naive samples {naive_samples}, alphas {list(alphas)}",
        f"execution: backend {runtime.backend}, "
        f"{runtime.effective_workers} worker(s)",
        "",
    ]

    if "fig6" in include:
        result = fig6.run_fig6(
            target_relative_error=target_relative_error,
            config=config, seed=seed, perf=perf)
        save_estimate(result.proposed, out / "fig6_proposed.json",
                      overwrite=True)
        save_estimate(result.conventional,
                      out / "fig6_conventional.json", overwrite=True)
        sections += [
            "## Fig. 6 — proposed vs conventional (RDF only)",
            "",
            "```",
            result.proposed.summary(),
            result.conventional.summary(),
            "",
            result.table(),
            "```",
            "",
            f"speedup: {result.report.summary()}",
            f"estimates agree: {result.report.estimates_agree}",
            "",
        ]

    if "fig7" in include:
        result = fig7.run_fig7(
            naive_samples=naive_samples,
            target_relative_error=target_relative_error * 2,
            config=config, seed=seed, checkpoint=checkpoint, perf=perf)
        save_estimate(result.naive_a, out / "fig7_naive.json",
                      overwrite=True)
        save_estimate(result.proposed_a, out / "fig7_proposed_a.json",
                      overwrite=True)
        save_estimate(result.proposed_b, out / "fig7_proposed_b.json",
                      overwrite=True)
        sections += [
            "## Fig. 7 — naive MC vs proposed with RTN (0.5 V)",
            "",
            "```",
            result.table(),
            "```",
            "",
            f"simulation saving: {result.simulation_saving:.1f}x "
            "(paper: ~40x)",
            f"shared-init cost: {result.shared_init_saving:.2f} "
            "(paper: ~0.5)",
            f"estimates agree: {result.agreement}",
            "",
        ]

    if "fig8" in include:
        result = fig8.run_fig8(
            alphas=alphas,
            target_relative_error=target_relative_error * 2,
            config=config, seed=seed, checkpoint=checkpoint, perf=perf)
        for alpha, estimate in zip(result.sweep.alphas,
                                   result.sweep.estimates):
            save_estimate(estimate,
                          out / f"fig8_alpha_{alpha:.2f}.json",
                          overwrite=True)
        save_estimate(result.no_rtn, out / "fig8_no_rtn.json",
                      overwrite=True)
        sections += [
            "## Fig. 8 — failure probability vs duty ratio (0.7 V)",
            "",
            "```",
            result.table(),
            "```",
            "",
            f"worst-case RTN penalty: {result.rtn_penalty:.1f}x "
            "(paper: ~6x)",
            f"minimum at duty ratio: {result.minimum_alpha} (paper: 0.5)",
            f"curve asymmetry: {result.asymmetry():.1%}",
            f"total sweep simulations: {result.sweep.total_simulations} "
            "(paper: ~2e5)",
            "",
        ]

    report = out / "report.md"
    report.write_text("\n".join(sections) + "\n")
    return report
