"""Experiment E1/E2 -- the paper's Fig. 6.

RDF-only failure probability at the nominal supply: convergence of the
proposed method vs the conventional particle-filter SIS baseline [8], and
the relative-error-vs-simulations curves from which the paper reads the
"1/36 simulations / 15.6x speed-up at 1 % relative error" numbers.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.convergence import simulations_to_accuracy
from repro.analysis.speedup import SpeedupReport, compare_runs
from repro.analysis.tables import format_table
from repro.core.conventional import ConventionalSisEstimator
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.experiments.setup import paper_setup
from repro.perf import PerfConfig
from repro.rng import stable_seed


@dataclass
class Fig6Result:
    """Both runs plus the speedup comparison."""

    proposed: FailureEstimate
    conventional: FailureEstimate
    report: SpeedupReport

    def table(self, targets=(0.10, 0.05, 0.02, 0.01)) -> str:
        """Simulations-to-accuracy table (the content of Fig. 6b)."""
        rows = []
        for target in targets:
            n_prop = simulations_to_accuracy(self.proposed.trace, target)
            n_conv = simulations_to_accuracy(self.conventional.trace, target)
            ratio = ("-" if not (n_prop and n_conv)
                     else f"{n_conv / n_prop:.1f}x")
            rows.append([f"{target:.0%}", n_conv or "-", n_prop or "-",
                         ratio])
        return format_table(
            ["rel. error", "conventional sims", "proposed sims", "ratio"],
            rows, title="Fig. 6: simulations to reach a relative error")


def run_fig6(target_relative_error: float = 0.02,
             max_conventional_sims: int = 400_000,
             config: EcripseConfig | None = None, vdd: float | None = None,
             seed: int = 2015,
             perf: PerfConfig | None = None) -> Fig6Result:
    """Run both estimators on the RDF-only problem (paper Fig. 6).

    Parameters
    ----------
    target_relative_error:
        Accuracy both methods run to (the paper uses 1 %; the default 2 %
        keeps the conventional run affordable -- pass 0.01 for the full
        experiment).
    max_conventional_sims:
        Safety cap for the baseline.
    perf:
        Hot-path acceleration policy (see :mod:`repro.perf`); both
        estimators share the evaluator and therefore the solve cache.
    """
    setup = paper_setup(vdd=vdd, perf=perf)
    config = config if config is not None else EcripseConfig()

    proposed = EcripseEstimator(
        setup.space, setup.indicator, setup.rtn_model, config=config,
        seed=stable_seed(seed, "proposed")).run(
        target_relative_error=target_relative_error)

    conventional = ConventionalSisEstimator(
        setup.space, setup.indicator, setup.rtn_model, config=config,
        seed=stable_seed(seed, "conventional")).run(
        target_relative_error=target_relative_error,
        max_simulations=max_conventional_sims)

    report = compare_runs(conventional, proposed,
                          target_relative_error=target_relative_error)
    return Fig6Result(proposed=proposed, conventional=conventional,
                      report=report)


def main() -> None:  # pragma: no cover - exercised via the CLI
    result = run_fig6()
    print(result.proposed.summary())
    print(result.conventional.summary())
    print()
    print(result.table())
    print()
    print("speedup:", result.report.summary())
    print("estimates agree:", result.report.estimates_agree)


if __name__ == "__main__":  # pragma: no cover
    main()
