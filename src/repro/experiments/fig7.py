"""Experiment E3/E4 -- the paper's Fig. 7.

RDF + RTN at the reduced 0.5 V supply (where naive Monte Carlo converges):

* (a) duty ratio 0.3 -- naive MC vs the proposed method; the paper reads a
  ~40x simulation saving at equal accuracy;
* (b) duty ratio 0.5 -- the proposed method re-run with the *shared*
  initial particles (and classifier), demonstrating the initialisation
  amortisation ("roughly half of the number of transistor-level
  simulations is sufficient").
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.checkpoint import CheckpointConfig, run_checkpointed
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.core.naive import NaiveMonteCarlo
from repro.config import TABLE_I
from repro.experiments.setup import paper_setup
from repro.perf import PerfConfig
from repro.rng import stable_seed


@dataclass
class Fig7Result:
    """Naive-vs-proposed comparison (a) plus the shared-init run (b)."""

    naive_a: FailureEstimate
    proposed_a: FailureEstimate
    proposed_b: FailureEstimate
    alpha_a: float
    alpha_b: float

    def table(self) -> str:
        rows = [
            [f"naive MC (a={self.alpha_a})", f"{self.naive_a.pfail:.3e}",
             f"{self.naive_a.ci_halfwidth:.1e}",
             self.naive_a.n_simulations],
            [f"proposed (a={self.alpha_a})", f"{self.proposed_a.pfail:.3e}",
             f"{self.proposed_a.ci_halfwidth:.1e}",
             self.proposed_a.n_simulations],
            [f"proposed (a={self.alpha_b}, shared init)",
             f"{self.proposed_b.pfail:.3e}",
             f"{self.proposed_b.ci_halfwidth:.1e}",
             self.proposed_b.n_simulations],
        ]
        return format_table(["method", "Pfail", "CI95", "simulations"],
                            rows, title="Fig. 7: RDF+RTN at VDD = 0.5 V")

    @property
    def agreement(self) -> bool:
        """Naive MC and the proposed method must overlap (Fig. 7a)."""
        return (self.naive_a.ci_low <= self.proposed_a.ci_high
                and self.proposed_a.ci_low <= self.naive_a.ci_high)

    @property
    def simulation_saving(self) -> float:
        """Naive/proposed simulation ratio at their (comparable) final
        accuracies."""
        return self.naive_a.n_simulations / self.proposed_a.n_simulations

    @property
    def shared_init_saving(self) -> float:
        """Simulations of the shared-init run relative to the first run."""
        return (self.proposed_b.n_simulations
                / max(self.proposed_a.n_simulations, 1))


def run_fig7(alpha_a: float = 0.3, alpha_b: float = 0.5,
             naive_samples: int = 300_000,
             target_relative_error: float = 0.05,
             config: EcripseConfig | None = None,
             seed: int = 2015,
             checkpoint: CheckpointConfig | None = None,
             perf: PerfConfig | None = None) -> Fig7Result:
    """Run the Fig. 7 comparison at VDD = 0.5 V.

    ``naive_samples`` defaults to a scaled-down 3e5 (the paper used 1e6);
    the proposed runs stop at ``target_relative_error``.  With a
    ``checkpoint`` policy each of the three runs snapshots into its own
    subdirectory (``naive``/``prop-a``/``prop-b``) and an interrupted
    invocation resumes where it was killed; completed runs are loaded
    from their result files and their final state restored, so the
    (b) run still reuses the (a) run's boundary and classifier.

    ``perf`` tunes the hot-path acceleration; all three runs (the naive
    baseline included) share one evaluator and thus one solve cache.
    """
    setup_a = paper_setup(vdd=TABLE_I.vdd_low, alpha=alpha_a, perf=perf)
    config = config if config is not None else EcripseConfig()
    crash_budget = (None if checkpoint is None
                    or checkpoint.crash_after is None
                    else [checkpoint.crash_after])

    # The naive baseline rides the same execution backend as the
    # estimator; the legacy single-stream loop is kept for serial runs so
    # default results match previous releases bit for bit.
    naive = run_checkpointed(
        checkpoint, "naive",
        NaiveMonteCarlo(
            setup_a.space, setup_a.indicator, setup_a.rtn_model,
            seed=stable_seed(seed, "naive"),
            execution=(config.execution if config.execution.is_parallel
                       else None)),
        crash_budget=crash_budget, n_samples=naive_samples)
    estimator_a = EcripseEstimator(
        setup_a.space, setup_a.indicator, setup_a.rtn_model, config=config,
        seed=stable_seed(seed, "prop-a"))
    proposed_a = run_checkpointed(
        checkpoint, "prop-a", estimator_a, crash_budget=crash_budget,
        target_relative_error=target_relative_error)

    setup_b = setup_a.with_alpha(alpha_b)
    estimator_b = EcripseEstimator(
        setup_b.space, setup_b.indicator, setup_b.rtn_model, config=config,
        seed=stable_seed(seed, "prop-b"),
        initial_boundary=estimator_a.boundary,
        classifier=estimator_a.blockade)
    proposed_b = run_checkpointed(
        checkpoint, "prop-b", estimator_b, crash_budget=crash_budget,
        target_relative_error=target_relative_error)

    return Fig7Result(naive_a=naive, proposed_a=proposed_a,
                      proposed_b=proposed_b, alpha_a=alpha_a,
                      alpha_b=alpha_b)


def main() -> None:  # pragma: no cover - exercised via the CLI
    result = run_fig7()
    print(result.table())
    print()
    print(f"naive/proposed simulation ratio: "
          f"{result.simulation_saving:.1f}x (paper: ~40x)")
    print(f"shared-init second bias point cost: "
          f"{result.shared_init_saving:.2f} of the first (paper: ~0.5)")
    print("estimates agree:", result.agreement)


if __name__ == "__main__":  # pragma: no cover
    main()
