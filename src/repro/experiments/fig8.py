"""Experiment E5 -- the paper's Fig. 8.

Failure probability as a function of the stored-data duty ratio alpha at
the nominal supply, with RTN.  The paper's findings, which this harness
checks quantitatively:

* the curve is (approximately) bilaterally symmetric around alpha = 0.5;
* the minimum sits at alpha = 0.5 (the cell stores "0" and "1" with equal
  probability);
* the whole curve sits well above the no-RTN failure probability
  (paper: up to ~6x above the 1.33e-4 floor).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.checkpoint import CheckpointConfig, run_checkpointed
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.core.sweep import BiasSweep, BiasSweepResult
from repro.experiments.setup import paper_setup
from repro.perf import PerfConfig
from repro.rng import stable_seed

DEFAULT_ALPHAS = tuple(np.round(np.linspace(0.0, 1.0, 11), 2))


@dataclass
class Fig8Result:
    """The duty-ratio sweep plus the no-RTN reference estimate."""

    sweep: BiasSweepResult
    no_rtn: FailureEstimate

    def table(self) -> str:
        rows = []
        for alpha, estimate in zip(self.sweep.alphas, self.sweep.estimates):
            rows.append([f"{alpha:.1f}", f"{estimate.pfail:.3e}",
                         f"{estimate.ci_halfwidth:.1e}",
                         f"{estimate.pfail / self.no_rtn.pfail:.2f}x"])
        rows.append(["no RTN", f"{self.no_rtn.pfail:.3e}",
                     f"{self.no_rtn.ci_halfwidth:.1e}", "1.00x"])
        return format_table(
            ["duty ratio", "Pfail", "CI95", "vs no-RTN"],
            rows, title="Fig. 8: failure probability vs duty ratio")

    @property
    def rtn_penalty(self) -> float:
        """Worst-case RTN degradation factor (paper: ~6x)."""
        _, worst = self.sweep.worst_case()
        return worst.pfail / self.no_rtn.pfail

    @property
    def minimum_alpha(self) -> float:
        """Duty ratio of the minimum failure probability (paper: 0.5)."""
        index = int(np.argmin([e.pfail for e in self.sweep.estimates]))
        return self.sweep.alphas[index]

    def asymmetry(self) -> float:
        """Relative RMS difference between the curve and its mirror image
        (0 = perfectly symmetric)."""
        p = np.array([e.pfail for e in self.sweep.estimates])
        return float(np.sqrt(np.mean((p - p[::-1]) ** 2)) / p.mean())


def run_fig8(alphas=DEFAULT_ALPHAS, target_relative_error: float = 0.05,
             config: EcripseConfig | None = None,
             convention: str = "physical", vdd: float | None = None,
             seed: int = 2015,
             checkpoint: CheckpointConfig | None = None,
             perf: PerfConfig | None = None) -> Fig8Result:
    """Run the duty-ratio sweep plus the no-RTN reference point.

    With a ``checkpoint`` policy the no-RTN reference snapshots under
    ``nortn`` and each sweep point under ``alpha-NN``; an interrupted
    invocation resumes mid-point without repeating finished points.

    ``perf`` tunes the hot-path acceleration (see :mod:`repro.perf`);
    the evaluator -- and with it the solve cache -- is shared across the
    no-RTN point and every sweep point, so later points hit work the
    earlier ones already solved.
    """
    setup = paper_setup(vdd=vdd, perf=perf)
    config = config if config is not None else EcripseConfig()
    crash_budget = (None if checkpoint is None
                    or checkpoint.crash_after is None
                    else [checkpoint.crash_after])

    no_rtn = run_checkpointed(
        checkpoint, "nortn",
        EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model, config=config,
            seed=stable_seed(seed, "nortn")),
        crash_budget=crash_budget,
        target_relative_error=target_relative_error)

    rtn_setup = setup.with_alpha(0.5, convention=convention)
    sweep = BiasSweep(rtn_setup.space, rtn_setup.indicator,
                      rtn_setup.conditions, config=config,
                      convention=convention,
                      seed=stable_seed(seed, "sweep")).run(
        alphas, target_relative_error=target_relative_error,
        checkpoint=checkpoint, crash_budget=crash_budget)
    return Fig8Result(sweep=sweep, no_rtn=no_rtn)


def main() -> None:  # pragma: no cover - exercised via the CLI
    result = run_fig8()
    print(result.table())
    print()
    print(f"worst-case RTN penalty: {result.rtn_penalty:.1f}x "
          f"(paper: ~6x)")
    print(f"minimum at duty ratio:  {result.minimum_alpha} (paper: 0.5)")
    print(f"curve asymmetry:        {result.asymmetry():.1%}")
    print(f"total simulations:      {result.sweep.total_simulations} "
          f"(paper: ~2e5)")


if __name__ == "__main__":  # pragma: no cover
    main()
