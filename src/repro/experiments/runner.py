"""``ecripse`` command-line entry point.

Regenerates the paper's experiments from the shell::

    ecripse fig6            # proposed vs conventional (Fig. 6)
    ecripse fig7            # proposed vs naive MC with RTN (Fig. 7)
    ecripse fig8            # failure probability vs duty ratio (Fig. 8)
    ecripse ablations       # A1/A3 ablation summaries
    ecripse estimate --vdd 0.7 --alpha 0.3   # one-off estimation
    ecripse array --capacity 128Gb           # array ECC/scrub decision
    ecripse serve --root state/              # job-queue service daemon

All experiments accept ``--quick`` to run with reduced budgets (useful for
a smoke test; the printed numbers then carry wider error bars).
"""

from __future__ import annotations

import argparse
import sys

from repro.checkpoint import (
    CheckpointConfig,
    parse_every,
    run_checkpointed,
)
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.errors import CheckpointCrash, ShutdownRequested
from repro.experiments import ablations, fig6, fig7, fig8
from repro.experiments.setup import paper_setup
from repro.health import HealthConfig, HealthPolicy, HealthReport
from repro.health import collect_reports
from repro.perf import (
    PerfConfig,
    collect_perf,
    merge_perf,
    render_json,
    render_text,
    save_registered_caches,
)
from repro.runtime import BACKENDS, ExecutionConfig, default_coordinator

QUICK = EcripseConfig.quick()


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _add_common_args(cmd: argparse.ArgumentParser) -> None:
    """Budget/seed/execution flags shared by every subcommand."""
    cmd.add_argument("--quick", action="store_true",
                     help="reduced budgets for a fast smoke run")
    cmd.add_argument("--seed", type=int, default=2015)
    cmd.add_argument("--backend", choices=BACKENDS, default="serial",
                     help="execution backend for the simulation "
                          "workloads (default: serial; estimates are "
                          "bit-identical across backends for a fixed "
                          "seed)")
    cmd.add_argument("--workers", type=_positive_int, default=None,
                     help="worker-pool size for the thread/process "
                          "backends (default: all cores)")
    cmd.add_argument("--health-policy",
                     choices=[p.value for p in HealthPolicy],
                     default="strict",
                     help="degradation policy: strict fails fast with "
                          "typed errors, recover runs the guardrail "
                          "recovery paths within thresholds, permissive "
                          "accepts best-effort results beyond them "
                          "(default: strict; see docs/ROBUSTNESS.md)")
    cmd.add_argument("--health-report", choices=("text", "json"),
                     default=None, metavar="{text,json}",
                     help="print the aggregated health report after "
                          "the run (events, recoveries, bias flags)")
    # Test/CI fault injector: deterministically force one fault class
    # (solver | filter | is-weight | one-class, optionally :count:skip)
    # so the recovery paths are exercisable from the shell.
    cmd.add_argument("--inject-fault", default=None,
                     help=argparse.SUPPRESS)
    cmd.add_argument("--exact-eval", action="store_true",
                     help="disable the hot-path acceleration (adaptive "
                          "screening + solve cache); results are "
                          "bit-identical either way, this is the escape "
                          "hatch / A-B reference")
    cmd.add_argument("--solve-cache", default=None, metavar="DIR",
                     help="directory for on-disk solve-cache "
                          "persistence; warmed caches are reloaded on "
                          "the next invocation (ignored with "
                          "--exact-eval)")
    cmd.add_argument("--array-backend", default="numpy", metavar="NAME",
                     help="array namespace for the solver hot path: "
                          "numpy (default), numba (jitted kernels, "
                          "bit-identical) or an importable Array-API "
                          "namespace such as cupy; unknown or unusable "
                          "backends silently fall back to numpy, so "
                          "results never depend on what is installed")
    cmd.add_argument("--perf-report", choices=("text", "json"),
                     default=None, metavar="{text,json}",
                     help="print the aggregated perf report after the "
                          "run (stage spans, device-model evaluations, "
                          "cache hit rates)")


def _add_checkpoint_args(cmd: argparse.ArgumentParser) -> None:
    """Crash-safety flags (subcommands with resumable runs)."""
    cmd.add_argument("--checkpoint-dir", default=None,
                     help="directory for crash-safe snapshots; "
                          "omitting it disables checkpointing")
    cmd.add_argument("--checkpoint-every", default=None, metavar="N|Ts",
                     help="snapshot cadence: a simulation count "
                          "('5000') or a duration ('30s'); default "
                          "5000 simulations")
    cmd.add_argument("--checkpoint-keep", type=_positive_int, default=3,
                     help="snapshots retained per run (default: 3)")
    cmd.add_argument("--resume", action="store_true",
                     help="resume from the newest snapshot in "
                          "--checkpoint-dir instead of starting over")
    # Test/CI crash injector: simulate a kill right after the N-th
    # durable snapshot (exit code 3), so kill/resume is scriptable.
    cmd.add_argument("--crash-after-checkpoints", type=_positive_int,
                     default=None, help=argparse.SUPPRESS)


def _checkpoint_config(args) -> CheckpointConfig | None:
    """Build the checkpoint policy from parsed CLI flags."""
    if getattr(args, "checkpoint_dir", None) is None:
        if getattr(args, "resume", False):
            raise SystemExit(
                "--resume requires --checkpoint-dir")
        return None
    every_simulations: int | None = 5000
    every_seconds: float | None = None
    if args.checkpoint_every is not None:
        try:
            every_simulations, every_seconds = parse_every(
                args.checkpoint_every)
        except ValueError as exc:
            raise SystemExit(str(exc)) from exc
    return CheckpointConfig(
        directory=args.checkpoint_dir,
        every_simulations=every_simulations,
        every_seconds=every_seconds,
        keep=args.checkpoint_keep,
        resume=args.resume,
        crash_after=args.crash_after_checkpoints)


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecripse",
        description="Reproduce the experiments of the ECRIPSE paper "
                    "(DATE 2015).")
    sub = parser.add_subparsers(dest="command", required=True)

    for name in ("fig6", "fig7", "fig8", "ablations"):
        cmd = sub.add_parser(name, help=f"run the {name} experiment")
        _add_common_args(cmd)
        if name in ("fig7", "fig8"):
            _add_checkpoint_args(cmd)

    camp = sub.add_parser("campaign", help="run all figure experiments "
                                           "and write a markdown report")
    camp.add_argument("--out", default="results",
                      help="output directory (JSON + report.md)")
    _add_common_args(camp)
    _add_checkpoint_args(camp)

    vmin = sub.add_parser("vmin", help="minimum-supply search for a "
                                       "failure-probability budget")
    vmin.add_argument("--budget", type=float, required=True,
                      help="cell Pfail budget, e.g. 1e-3")
    vmin.add_argument("--alpha", type=float, default=None,
                      help="duty ratio; omit for RDF-only")
    vmin.add_argument("--low", type=float, default=0.45)
    vmin.add_argument("--high", type=float, default=0.8)
    vmin.add_argument("--resolution", type=float, default=0.02)
    _add_common_args(vmin)

    lint = sub.add_parser(
        "lint",
        help="run the determinism/process-safety linter (REP rules; "
             "see docs/DEVELOPMENT.md)")
    lint.add_argument("lint_args", nargs=argparse.REMAINDER,
                      help="arguments forwarded to python -m repro.lint "
                           "(default: src tests)")

    est = sub.add_parser("estimate",
                         help="one failure-probability estimation")
    est.add_argument("--vdd", type=float, default=None,
                     help="supply voltage [V] (default: 0.7)")
    est.add_argument("--alpha", type=float, default=None,
                     help="duty ratio; omit for RDF-only")
    est.add_argument("--target", type=float, default=0.05,
                     help="target relative error")
    _add_common_args(est)
    _add_checkpoint_args(est)

    arr = sub.add_parser(
        "array",
        help="array-level reliability decision: which ECC scheme and "
             "scrub period meet a FIT target at this cell pfail")
    arr.add_argument("--pfail", type=float, default=None,
                     help="cell failure probability; omit to chain a "
                          "full estimator run (then --vdd/--alpha/"
                          "--target apply)")
    arr.add_argument("--vdd", type=float, default=None,
                     help="supply voltage [V] for the chained "
                          "estimator (default: 0.7)")
    arr.add_argument("--alpha", type=float, default=None,
                     help="duty ratio for the chained estimator; omit "
                          "for RDF-only")
    arr.add_argument("--target", type=float, default=0.05,
                     help="target relative error for the chained "
                          "estimator")
    arr.add_argument("--capacity", default="128Gb",
                     help="array data capacity, e.g. 128Gb, 64Mb "
                          "(decimal units; default: 128Gb)")
    arr.add_argument("--word-bits", type=_positive_int, default=64,
                     help="data bits per ECC word (default: 64)")
    arr.add_argument("--node", default="16nm",
                     help="technology node for the soft-error "
                          "baseline (default: 16nm)")
    arr.add_argument("--environment", default="sea-level",
                     help="operating environment flux multiplier "
                          "(default: sea-level)")
    arr.add_argument("--fit-target", type=float, default=10.0,
                     help="uncorrectable-FIT budget (default: 10)")
    arr.add_argument("--scrub-hours", default=None,
                     help="comma-separated scrub periods in hours "
                          "(default: 0.25,1,4,24,168,720)")
    arr.add_argument("--schemes", default=None,
                     help="comma-separated ECC schemes to compare "
                          "(default: none,parity,secded,taec,dec)")
    arr.add_argument("--json", default=None, metavar="FILE",
                     help="write the full decision report as JSON "
                          "('-' for stdout)")
    _add_common_args(arr)
    _add_checkpoint_args(arr)
    return parser


def _array_config(args):
    """Build an ``ArrayConfig`` from parsed ``array`` flags."""
    from repro.analysis.ecc import (
        DEFAULT_SCHEMES,
        DEFAULT_SCRUB_HOURS,
        ArrayConfig,
        parse_capacity,
    )

    try:
        scrub = DEFAULT_SCRUB_HOURS if args.scrub_hours is None else \
            tuple(float(h) for h in args.scrub_hours.split(","))
        schemes = DEFAULT_SCHEMES if args.schemes is None else \
            tuple(s.strip() for s in args.schemes.split(","))
        return ArrayConfig(
            capacity_mbit=parse_capacity(args.capacity),
            data_bits=args.word_bits,
            node=args.node,
            environment=args.environment,
            fit_target=args.fit_target,
            scrub_hours=scrub,
            schemes=schemes)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc


def _run_array(args, config: EcripseConfig,
               checkpoint: CheckpointConfig | None,
               perf: PerfConfig | None) -> tuple[int, object]:
    """The ``array`` subcommand: decision tables from a pfail."""
    import json

    from repro.analysis.ecc import analyze_array

    array_config = _array_config(args)
    result: object = None
    if args.pfail is not None:
        if not 0.0 <= args.pfail <= 0.5:
            raise SystemExit(
                f"--pfail must lie in [0, 0.5], got {args.pfail}")
        pfail, upper = args.pfail, None
    else:
        setup = paper_setup(vdd=args.vdd, alpha=args.alpha, perf=perf)
        estimator = EcripseEstimator(setup.space, setup.indicator,
                                     setup.rtn_model, config=config,
                                     seed=args.seed)
        result = run_checkpointed(
            checkpoint, "array", estimator,
            target_relative_error=args.target)
        print(result.summary())
        print()
        pfail = min(result.pfail, 0.5)
        upper = min(result.pfail + result.ci_halfwidth, 0.5)
    report = analyze_array(array_config, pfail, cell_pfail_upper=upper)
    if result is not None:
        result.metadata["array"] = report.as_dict()
    print(report.render_text())
    if args.json is not None:
        payload = json.dumps(report.as_dict(), indent=2,
                             sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            from pathlib import Path

            Path(args.json).write_text(payload + "\n",
                                       encoding="utf-8")
            print(f"\nJSON report written to {args.json}")
    return 0, result if result is not None else report


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if argv[:1] == ["lint"]:
        # forwarded verbatim so lint flags need no "--" escaping
        from repro.lint.cli import main as lint_main

        extra = argv[1:]
        if extra[:1] == ["--"]:
            extra = extra[1:]
        return lint_main(extra)
    if argv[:1] in (["serve"], ["submit"], ["job"], ["jobs"]):
        # the job-queue service has its own flag surface (docs/SERVICE.md)
        from repro.service.cli import main as service_main

        return service_main(argv)
    args = _build_parser().parse_args(argv)
    execution = ExecutionConfig(backend=args.backend, workers=args.workers)
    try:
        health = HealthConfig(policy=args.health_policy,
                              inject=args.inject_fault)
    except ValueError as exc:
        raise SystemExit(str(exc)) from exc
    config = (QUICK if args.quick else EcripseConfig()).with_(
        execution=execution, health=health)
    checkpoint = _checkpoint_config(args)
    perf = (PerfConfig.exact() if args.exact_eval
            else PerfConfig(cache_path=args.solve_cache,
                            array_backend=args.array_backend))

    coordinator = None
    if checkpoint is not None:
        # Checkpointed runs shut down gracefully: SIGTERM/SIGINT drains
        # to the next safe boundary, force-saves a snapshot and unwinds
        # (exit 4); `--resume` then continues bit-identically.
        coordinator = default_coordinator()
        coordinator.reset()
        coordinator.install()
    try:
        code, result = _dispatch(args, config, execution, checkpoint, perf)
    except CheckpointCrash as crash:
        # The kill/resume test harness's simulated crash: the snapshot
        # it announces is durably on disk, so exit distinctly.  The
        # warm cache still persists -- resume restarts from it.
        save_registered_caches()
        print(f"injected crash: {crash}", file=sys.stderr)
        return 3
    except ShutdownRequested as stop:
        save_registered_caches()
        print(f"graceful shutdown: {stop} -- snapshot saved, resume "
              f"with --resume", file=sys.stderr)
        return 4
    finally:
        if coordinator is not None:
            coordinator.uninstall()
    save_registered_caches()
    if args.health_report is not None:
        merged = HealthReport.merged(collect_reports(result))
        if not merged.events:
            merged.policy = health.policy.value
        print(merged.render_json() if args.health_report == "json"
              else merged.render_text())
    if args.perf_report is not None:
        perf_merged = merge_perf(collect_perf(result))
        print(render_json(perf_merged) if args.perf_report == "json"
              else render_text(perf_merged))
    return code


def _dispatch(args, config: EcripseConfig, execution: ExecutionConfig,
              checkpoint: CheckpointConfig | None,
              perf: PerfConfig | None = None) -> tuple[int, object]:
    """Run one subcommand; returns (exit code, result object).

    The result object is handed to
    :func:`repro.health.events.collect_reports` so ``--health-report``
    (and its perf twin, ``--perf-report``) can aggregate every estimate
    the command produced.
    """
    result: object = None
    if args.command == "fig6":
        result = fig6.run_fig6(config=config, seed=args.seed,
                               target_relative_error=0.05 if args.quick
                               else 0.02, perf=perf)
        print(result.proposed.summary())
        print(result.conventional.summary())
        print()
        print(result.table())
        print()
        print("speedup:", result.report.summary())
    elif args.command == "fig7":
        result = fig7.run_fig7(
            config=config, seed=args.seed,
            naive_samples=50_000 if args.quick else 300_000,
            target_relative_error=0.10 if args.quick else 0.05,
            checkpoint=checkpoint, perf=perf)
        print(result.table())
        print(f"\nnaive/proposed ratio: {result.simulation_saving:.1f}x; "
              f"shared-init cost: {result.shared_init_saving:.2f}; "
              f"agree: {result.agreement}")
    elif args.command == "fig8":
        result = fig8.run_fig8(
            config=config, seed=args.seed,
            alphas=(0.0, 0.25, 0.5, 0.75, 1.0) if args.quick
            else fig8.DEFAULT_ALPHAS,
            target_relative_error=0.10 if args.quick else 0.05,
            checkpoint=checkpoint, perf=perf)
        print(result.table())
        print(f"\nRTN penalty {result.rtn_penalty:.1f}x; "
              f"minimum at {result.minimum_alpha}; "
              f"asymmetry {result.asymmetry():.1%}")
    elif args.command == "ablations":
        result = ablations.main(config=config, perf=perf)
    elif args.command == "campaign":
        from repro.experiments.campaign import run_campaign

        report = run_campaign(
            args.out, config=config,
            target_relative_error=0.08 if args.quick else 0.02,
            naive_samples=40_000 if args.quick else 300_000,
            seed=args.seed, checkpoint=checkpoint, perf=perf)
        print(f"report written to {report}")
    elif args.command == "vmin":
        from repro.analysis.tables import format_table
        from repro.experiments.vmin import find_vmin

        result = find_vmin(args.budget, vdd_low=args.low,
                           vdd_high=args.high, alpha=args.alpha,
                           resolution=args.resolution, config=config,
                           seed=args.seed, perf=perf)
        rows = [[f"{vdd:.3f}", f"{e.pfail:.3e}", e.n_simulations]
                for vdd, e in result.probes]
        print(format_table(["VDD [V]", "Pfail", "simulations"], rows,
                           title="Vmin search probes"))
        print(f"\nVmin = {result.vmin} V for budget {args.budget:.1e} "
              f"({result.total_simulations} simulations total)")
    elif args.command == "estimate":
        setup = paper_setup(vdd=args.vdd, alpha=args.alpha, perf=perf)
        estimator = EcripseEstimator(setup.space, setup.indicator,
                                     setup.rtn_model, config=config,
                                     seed=args.seed)
        result = run_checkpointed(
            checkpoint, "estimate", estimator,
            target_relative_error=args.target)
        print(result.summary())
        if execution.is_parallel:
            print()
            print(estimator.executor.aggregate().report())
    elif args.command == "array":
        return _run_array(args, config, checkpoint, perf)
    return 0, result


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
