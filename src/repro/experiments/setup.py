"""Factory for the paper's experimental setup.

:func:`paper_setup` wires the Table-I cell, the whitened Pelgrom space and
the appropriate indicator/RTN-model pair together so estimators can be
constructed in one line.  Two indicator conventions exist (see
:mod:`repro.sram.evaluator`):

* RDF-only runs (``alpha=None``) use the *cell-level* indicator (either
  lobe collapsing fails the cell) and the null RTN model;
* RTN runs (``alpha`` given) use the *stored-"0" lobe* indicator; the RTN
  sampler mirrors stored-"1" samples onto it.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.config import TABLE_I, PaperConditions
from repro.perf import PerfConfig, build_evaluator
from repro.rtn.model import RtnModel, ZeroRtnModel
from repro.sram.cell import SramCell
from repro.sram.evaluator import (
    CellEvaluator,
    CellReadFailure,
    Lobe0ReadFailure,
)
from repro.variability.space import VariabilitySpace


@dataclass
class ExperimentSetup:
    """Everything an estimator needs for one bias condition.

    Attributes
    ----------
    conditions:
        The experimental conditions (Table I unless overridden).
    cell, evaluator, space:
        Cell design, vectorised evaluator, whitened variability space.
    indicator:
        Deterministic failure indicator matching the RTN model.
    rtn_model:
        RTN sampler (null model for RDF-only setups).
    vdd:
        Supply voltage.
    alpha:
        Duty ratio, or ``None`` for RDF-only.
    """

    conditions: PaperConditions
    cell: SramCell
    evaluator: CellEvaluator
    space: VariabilitySpace
    indicator: object
    rtn_model: object
    vdd: float
    alpha: float | None

    def with_alpha(self, alpha: float | None,
                   convention: str = "physical") -> "ExperimentSetup":
        """Same cell/supply, different duty ratio (shares the evaluator)."""
        return _build(self.conditions, self.cell, self.evaluator,
                      self.space, self.vdd, alpha, convention)


def paper_setup(vdd: float | None = None, alpha: float | None = None,
                conditions: PaperConditions = TABLE_I,
                convention: str = "physical",
                grid_points: int = 61,
                perf: PerfConfig | None = None) -> ExperimentSetup:
    """Build the paper's experimental setup.

    Parameters
    ----------
    vdd:
        Supply voltage; defaults to the paper's nominal 0.7 V.
    alpha:
        Duty ratio for the RTN model; ``None`` disables RTN (Fig. 6 mode).
    conditions:
        Experimental conditions; Table I by default.
    convention:
        RTN occupancy convention (see :mod:`repro.rtn.traps`).
    grid_points:
        Butterfly grid resolution of the evaluator.
    perf:
        Hot-path acceleration policy (see :mod:`repro.perf`); ``None``
        means the default config -- adaptive labelling and an in-memory
        solve cache, both result-neutral.  ``PerfConfig.exact()``
        restores the unaccelerated legacy evaluator.
    """
    vdd = conditions.vdd_nominal if vdd is None else float(vdd)
    space = VariabilitySpace.from_pelgrom(conditions.avth_mv_nm,
                                          conditions.geometry)
    cell = SramCell(geometry=conditions.geometry, vdd=vdd)
    evaluator = build_evaluator(cell, space, vdd=vdd,
                                grid_points=grid_points, perf=perf)
    return _build(conditions, cell, evaluator, space, vdd, alpha, convention)


def _build(conditions, cell, evaluator, space, vdd, alpha, convention
           ) -> ExperimentSetup:
    if alpha is None:
        indicator = CellReadFailure(evaluator)
        rtn_model = ZeroRtnModel(space)
    else:
        indicator = Lobe0ReadFailure(evaluator)
        rtn_model = RtnModel(conditions, space, alpha,
                             convention=convention)
    return ExperimentSetup(
        conditions=conditions, cell=cell, evaluator=evaluator, space=space,
        indicator=indicator, rtn_model=rtn_model, vdd=vdd, alpha=alpha)
