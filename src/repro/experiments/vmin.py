"""Minimum-operating-voltage (Vmin) search -- a design application.

Given a cell-level failure-probability budget (e.g. derived from an array
yield target via :mod:`repro.analysis.array_yield`), find the lowest
supply voltage at which the cell still meets it.  Each probe point is a
full ECRIPSE estimation at that supply; the search bisects on
``log10(P_fail) - log10(budget)``, which is smooth and monotone in VDD
over the range of interest.

This is the kind of downstream use the paper's speed-up enables: a Vmin
search multiplies the per-point cost by the number of probes, just as the
duty-ratio sweep of Fig. 8 multiplies it by the number of bias points.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.experiments.setup import paper_setup
from repro.perf import PerfConfig
from repro.rng import stable_seed


@dataclass
class VminResult:
    """Outcome of a Vmin search.

    Attributes
    ----------
    vmin:
        Lowest probed supply meeting the budget (None if even the highest
        probe fails the budget).
    probes:
        ``(vdd, estimate)`` pairs in probe order.
    budget:
        The cell P_fail budget searched against.
    """

    vmin: float | None
    probes: list[tuple[float, FailureEstimate]] = field(default_factory=list)
    budget: float = 0.0

    @property
    def total_simulations(self) -> int:
        return sum(estimate.n_simulations for _, estimate in self.probes)


def find_vmin(pfail_budget: float, vdd_low: float = 0.45,
              vdd_high: float = 0.8, alpha: float | None = None,
              resolution: float = 0.01,
              target_relative_error: float = 0.10,
              config: EcripseConfig | None = None,
              seed: int = 77,
              perf: PerfConfig | None = None) -> VminResult:
    """Bisect the supply voltage for a target failure budget.

    Parameters
    ----------
    pfail_budget:
        Maximum acceptable cell failure probability.
    vdd_low, vdd_high:
        Search bracket [V]; ``vdd_high`` must meet the budget.
    alpha:
        Duty ratio for RTN-aware search; ``None`` for RDF-only.
    resolution:
        Bisection stops when the bracket is narrower than this [V].
    perf:
        Hot-path acceleration policy.  Every probe point runs at a
        different supply (a different solve fingerprint), so the memo
        cache only helps within a probe -- unless ``cache_path`` is set,
        in which case repeated searches reuse each other's solves.
    """
    if pfail_budget <= 0 or pfail_budget >= 1:
        raise ValueError("pfail_budget must lie in (0, 1)")
    if vdd_low >= vdd_high:
        raise ValueError("need vdd_low < vdd_high")
    if resolution <= 0:
        raise ValueError("resolution must be positive")

    config = config if config is not None else EcripseConfig()
    probes: list[tuple[float, FailureEstimate]] = []

    def estimate_at(vdd: float) -> FailureEstimate:
        setup = paper_setup(vdd=vdd, alpha=alpha, perf=perf)
        estimator = EcripseEstimator(
            setup.space, setup.indicator, setup.rtn_model, config=config,
            seed=stable_seed(seed, round(vdd, 4)))
        result = estimator.run(
            target_relative_error=target_relative_error)
        result.metadata["vdd"] = vdd
        probes.append((vdd, result))
        return result

    top = estimate_at(vdd_high)
    if top.pfail > pfail_budget:
        return VminResult(vmin=None, probes=probes, budget=pfail_budget)

    low, high = vdd_low, vdd_high
    bottom = estimate_at(vdd_low)
    if bottom.pfail <= pfail_budget:
        return VminResult(vmin=vdd_low, probes=probes, budget=pfail_budget)

    while high - low > resolution:
        mid = 0.5 * (low + high)
        if estimate_at(mid).pfail <= pfail_budget:
            high = mid
        else:
            low = mid
    return VminResult(vmin=high, probes=probes, budget=pfail_budget)
