"""repro.health -- numerical guardrails and graceful degradation.

The health layer turns fatal numerical failures in the two-stage
ECRIPSE estimator into detected, recovered and reported events.  Four
recovery paths sit behind a :class:`HealthPolicy`:

1. **solver** -- convergence failures retry with escalating damping /
   continuation and may accept a best iterate under a residual bound
   (:func:`solve_with_recovery`);
2. **particle filters** -- per-step ESS and lobe-collapse monitors with
   deterministic re-seeding from the boundary cache and quarantine;
3. **stage-2 importance sampling** -- ESS floor on the importance
   weights with automatic mixture widening and a bias flag when weight
   clipping engages;
4. **classifier** -- degenerate one-class training batches fall back to
   a simulate-everything blockade until both classes reappear.

Everything flows into a structured :class:`HealthReport` attached to
the :class:`~repro.core.estimate.FailureEstimate`, serialised through
checkpoints and rendered by the CLI's ``--health-report`` flag.  The
deterministic :class:`FaultInjector` exercises every recovery path in
tests and CI.  See ``docs/ROBUSTNESS.md`` for the full contract.
"""

from repro.health.events import (
    CATEGORIES,
    SEVERITIES,
    HealthEvent,
    HealthReport,
    collect_reports,
)
from repro.health.inject import FAULT_KINDS, FaultInjector, parse_fault_spec
from repro.health.monitor import HealthMonitor
from repro.health.policy import HealthConfig, HealthPolicy
from repro.health.solver import solve_with_recovery

__all__ = [
    "CATEGORIES",
    "FAULT_KINDS",
    "SEVERITIES",
    "FaultInjector",
    "HealthConfig",
    "HealthEvent",
    "HealthMonitor",
    "HealthPolicy",
    "HealthReport",
    "collect_reports",
    "parse_fault_spec",
    "solve_with_recovery",
]
