"""Structured health events and the per-run report.

Every guardrail detection and recovery action becomes one
:class:`HealthEvent`; a run's events accumulate into a
:class:`HealthReport` that is attached to the
:class:`~repro.core.estimate.FailureEstimate`, serialised through
checkpoint snapshots (plain dict trees only, so the codec's strict type
policy accepts it) and rendered by the CLI's ``--health-report`` flag.

Determinism matters here: events carry *logical* positions (stage,
iteration, batch) and never wall-clock timestamps, so a killed and
resumed run reproduces the uninterrupted report exactly and the report
is bit-identical across execution backends.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

#: event severities, mildest first.
SEVERITIES = ("info", "warning", "critical")

#: fault/detection categories the monitors emit.
CATEGORIES = ("solver", "filter-degeneracy", "is-weight", "one-class",
              "zero-failures")


@dataclass(frozen=True)
class HealthEvent:
    """One guardrail detection or recovery action.

    Attributes
    ----------
    stage:
        Where in the pipeline it happened (``"stage1"``, ``"stage2"``,
        ``"solver"``, ``"classifier"``).
    category:
        Fault class, one of :data:`CATEGORIES`.
    severity:
        One of :data:`SEVERITIES`.
    message:
        Human-readable description.
    recovered:
        Whether a recovery action restored a usable state.
    details:
        Structured context (filter index, iteration, ESS fraction, ...);
        scalars only, so the event rides through JSON and the
        checkpoint codec unchanged.
    """

    stage: str
    category: str
    severity: str
    message: str
    recovered: bool = False
    details: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.severity not in SEVERITIES:
            raise ValueError(f"unknown severity {self.severity!r}")
        if self.category not in CATEGORIES:
            raise ValueError(f"unknown category {self.category!r}")

    def as_dict(self) -> dict:
        """Plain-dict form (JSON persistence and checkpoint snapshots)."""
        return {"stage": self.stage, "category": self.category,
                "severity": self.severity, "message": self.message,
                "recovered": self.recovered, "details": dict(self.details)}

    @classmethod
    def from_dict(cls, data: dict) -> "HealthEvent":
        """Inverse of :meth:`as_dict`."""
        return cls(stage=str(data["stage"]), category=str(data["category"]),
                   severity=str(data["severity"]),
                   message=str(data["message"]),
                   recovered=bool(data["recovered"]),
                   details=dict(data.get("details", {})))


@dataclass
class HealthReport:
    """All health events of one estimator run, plus the bias flags.

    Attributes
    ----------
    policy:
        Name of the :class:`~repro.health.policy.HealthPolicy` the run
        used.
    events:
        Events in detection order (deterministic).
    biased:
        Weight clipping engaged: the estimate is no longer strictly
        unbiased.
    upper_bound:
        The returned ``pfail`` is a rule-of-three upper bound, not a
        point estimate (zero stage-2 failure samples).
    """

    policy: str = "strict"
    events: list[HealthEvent] = field(default_factory=list)
    biased: bool = False
    upper_bound: bool = False

    def __bool__(self) -> bool:
        return bool(self.events) or self.biased or self.upper_bound

    # -- aggregation ---------------------------------------------------
    def counts(self) -> dict[str, int]:
        """Event count per severity (zero-filled)."""
        out = {severity: 0 for severity in SEVERITIES}
        for event in self.events:
            out[event.severity] += 1
        return out

    def by_stage(self) -> dict[str, int]:
        """Event count per pipeline stage, in first-seen order."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.stage] = out.get(event.stage, 0) + 1
        return out

    def by_category(self) -> dict[str, int]:
        """Event count per fault category, in first-seen order."""
        out: dict[str, int] = {}
        for event in self.events:
            out[event.category] = out.get(event.category, 0) + 1
        return out

    def recovered_count(self) -> int:
        return sum(1 for event in self.events if event.recovered)

    # -- serialisation -------------------------------------------------
    def as_dict(self) -> dict:
        """Plain-dict form, including the aggregate breakdowns."""
        return {
            "policy": self.policy,
            "biased": self.biased,
            "upper_bound": self.upper_bound,
            "counts": self.counts(),
            "by_stage": self.by_stage(),
            "by_category": self.by_category(),
            "recovered": self.recovered_count(),
            "events": [event.as_dict() for event in self.events],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "HealthReport":
        """Inverse of :meth:`as_dict` (aggregates are recomputed)."""
        return cls(policy=str(data.get("policy", "strict")),
                   events=[HealthEvent.from_dict(e)
                           for e in data.get("events", [])],
                   biased=bool(data.get("biased", False)),
                   upper_bound=bool(data.get("upper_bound", False)))

    @classmethod
    def merged(cls, reports: "list[HealthReport]") -> "HealthReport":
        """Combine several runs' reports (multi-run CLI commands)."""
        if not reports:
            return cls()
        merged = cls(policy=reports[0].policy)
        for report in reports:
            merged.events.extend(report.events)
            merged.biased = merged.biased or report.biased
            merged.upper_bound = merged.upper_bound or report.upper_bound
        return merged

    # -- rendering -----------------------------------------------------
    def render_json(self) -> str:
        """The report as one indented JSON document."""
        return json.dumps(self.as_dict(), indent=2)

    def render_text(self) -> str:
        """Human-readable multi-line rendering."""
        counts = self.counts()
        lines = [f"health report (policy: {self.policy})",
                 "  events: " + ", ".join(
                     f"{counts[s]} {s}" for s in SEVERITIES)
                 + f"; {self.recovered_count()} recovered"]
        if self.biased:
            lines.append("  BIASED: importance-weight clipping engaged")
        if self.upper_bound:
            lines.append("  UPPER BOUND: pfail is a rule-of-three bound, "
                         "not a point estimate")
        for stage, n in self.by_stage().items():
            lines.append(f"  {stage}: {n} event(s)")
        for event in self.events:
            flag = "recovered" if event.recovered else event.severity
            lines.append(f"    [{flag}] {event.stage}/{event.category}: "
                         f"{event.message}")
        if not self.events:
            lines.append("  no degradation detected")
        return "\n".join(lines)


def collect_reports(result: object, _depth: int = 0) -> list[HealthReport]:
    """Recursively harvest :class:`HealthReport` objects from ``result``.

    Walks dataclass-like result containers (``fig6``/``fig7``/... result
    objects, lists of estimates, vmin probe tuples) and collects the
    ``health`` attribute of every estimate encountered.  Used by the CLI
    to aggregate ``--health-report`` output across multi-run commands.
    """
    if _depth > 6 or result is None:
        return []
    if isinstance(result, HealthReport):
        return [result]
    reports: list[HealthReport] = []
    health = getattr(result, "health", None)
    if isinstance(health, HealthReport):
        reports.append(health)
    if isinstance(result, dict):
        children = list(result.values())
    elif isinstance(result, (list, tuple)):
        children = list(result)
    elif hasattr(result, "__dataclass_fields__"):
        children = [getattr(result, name)
                    for name in result.__dataclass_fields__]
    else:
        children = []
    for child in children:
        if child is health:  # already collected via the attribute
            continue
        if isinstance(child, (str, bytes, int, float, bool)):
            continue
        reports.extend(collect_reports(child, _depth + 1))
    return reports
