"""Deterministic fault injection for the health layer.

Test/CI machinery in the style of the checkpoint layer's
``--crash-after-checkpoints`` injector: a :class:`FaultInjector` is
configured from a compact spec string and *fires* at well-defined seams
inside :class:`~repro.health.monitor.HealthMonitor`, forcing exactly the
degradation each recovery path exists for:

======================  ==================================================
fault kind              effect at the seam
======================  ==================================================
``solver``              a simulation batch raises
                        :class:`~repro.errors.ConvergenceError` before
                        dispatch (retry recovers it, so the estimate is
                        bit-identical to the uninjected run)
``filter``              one particle filter's stage-1 weights are zeroed
                        (lobe collapse; quarantine + re-seed recovers)
``is-weight``           a stage-2 batch reports a degenerate ESS
                        (mixture widening recovers; the weights handed
                        to the accumulator are untouched, so the
                        estimate stays unbiased)
``one-class``           the labels *fed to the classifier* are forced to
                        a single class (blockade mode recovers; the
                        labels used for weights stay true)
======================  ==================================================

Spec grammar: ``kind[:count[:skip]]`` -- fire ``count`` times after
skipping the first ``skip`` opportunities.  Defaults are chosen so the
bare kind name triggers its recovery path once (e.g. ``filter`` fires
for ``stage1_patience`` consecutive iterations starting at the third,
after the filter has come alive).  Firing is a pure function of the
injector's counters, which ride in the health snapshot, so a killed and
resumed run injects the identical fault sequence.
"""

from __future__ import annotations

#: known fault kinds -> (default fire count, default skipped opportunities)
FAULT_KINDS: dict[str, tuple[int, int]] = {
    "solver": (1, 0),
    "filter": (2, 2),
    "is-weight": (2, 1),
    "one-class": (1, 0),
}


def parse_fault_spec(spec: str) -> tuple[str, int, int]:
    """Parse ``kind[:count[:skip]]`` into ``(kind, count, skip)``."""
    parts = spec.strip().lower().split(":")
    kind = parts[0]
    if kind not in FAULT_KINDS:
        known = ", ".join(sorted(FAULT_KINDS))
        raise ValueError(
            f"unknown fault kind {kind!r}; expected one of {known}")
    if len(parts) > 3:
        raise ValueError(f"malformed fault spec {spec!r}")
    count, skip = FAULT_KINDS[kind]
    try:
        if len(parts) >= 2:
            count = int(parts[1])
        if len(parts) == 3:
            skip = int(parts[2])
    except ValueError:
        raise ValueError(
            f"malformed fault spec {spec!r}; use kind[:count[:skip]] "
            f"with integer count/skip") from None
    if count < 1 or skip < 0:
        raise ValueError(
            f"fault spec {spec!r} needs count >= 1 and skip >= 0")
    return kind, count, skip


class FaultInjector:
    """Fires a configured fault kind a fixed number of times.

    ``spec=None`` builds a no-op injector (every :meth:`fire` returns
    False), so monitors can consult it unconditionally.
    """

    def __init__(self, spec: str | None = None) -> None:
        self.spec = spec
        if spec is None:
            self.kind: str | None = None
            self.count = 0
            self.skip = 0
        else:
            self.kind, self.count, self.skip = parse_fault_spec(spec)
        #: opportunities seen for the configured kind.
        self.seen = 0
        #: faults actually injected.
        self.fired = 0

    @property
    def enabled(self) -> bool:
        return self.kind is not None

    def fire(self, kind: str) -> bool:
        """True when a fault of ``kind`` must be injected *now*.

        Each call for the configured kind is one opportunity; the
        injector fires on opportunities ``skip .. skip + count - 1``.
        """
        if kind != self.kind:
            return False
        opportunity = self.seen
        self.seen += 1
        if opportunity < self.skip or self.fired >= self.count:
            return False
        self.fired += 1
        return True

    @property
    def exhausted(self) -> bool:
        """All configured faults have been injected."""
        return self.enabled and self.fired >= self.count

    # -- checkpointing -------------------------------------------------
    def state(self) -> dict:
        """Snapshot of the firing counters (spec comes from config)."""
        return {"seen": self.seen, "fired": self.fired}

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot."""
        self.seen = int(state["seen"])
        self.fired = int(state["fired"])
