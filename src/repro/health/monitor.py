"""The health monitor: guardrails + graceful degradation for ECRIPSE.

One :class:`HealthMonitor` accompanies one
:class:`~repro.core.ecripse.EcripseEstimator` run.  The estimator calls
it at four seams -- simulation batches, stage-1 resampling, classifier
training batches, stage-2 importance-weight batches -- and the monitor
detects degradation, runs the policy-appropriate recovery and records
every event into a :class:`~repro.health.events.HealthReport`.

Everything here is deterministic: detections are pure functions of the
values the estimator already computed, recoveries consume randomness
only from the estimator's own generators, and the monitor's complete
state (events, per-filter quarantine counters, widening count,
cumulative weight moments, injector counters) rides inside the
estimator's checkpoint snapshot -- so a killed and resumed run replays
the identical recovery sequence and finishes with the identical report.
"""

from __future__ import annotations

import warnings

import numpy as np

from repro.core.estimate import FailureEstimate
from repro.core.importance import effective_sample_size
from repro.errors import (
    ClassifierError,
    ConvergenceError,
    DegradationError,
    EstimationError,
    HealthyDegradation,
)
from repro.health.events import HealthEvent, HealthReport
from repro.health.inject import FaultInjector
from repro.health.policy import HealthConfig


class HealthMonitor:
    """Per-run guardrail state machine (see module docstring)."""

    #: transient intra-step flag: set by :meth:`training_batch` and
    #: consumed by :meth:`check_training_batch` within one estimator
    #: step, so it is always ``False`` at checkpoint-safe boundaries.
    _SNAPSHOT_EXCLUDED = ("_last_training_injected",)

    def __init__(self, config: HealthConfig | None = None) -> None:
        self.config = config if config is not None else HealthConfig()
        self.injector = FaultInjector(self.config.inject)
        self.report = HealthReport(policy=self.config.policy.value)
        #: per-filter recovery state, created lazily at the first
        #: stage-1 check (the bank does not exist before then).
        self._filters: list[dict] | None = None
        self._stage2_low_streak = 0
        self._widenings = 0
        self._sum_w = 0.0
        self._sum_w2 = 0.0
        self._stage2_batches = 0
        self._blockade_active = False
        self._one_class_noted = False
        self._last_training_injected = False

    # ------------------------------------------------------------------
    def _record(self, stage: str, category: str, severity: str,
                message: str, recovered: bool = False,
                warn: bool = False, **details) -> None:
        self.report.events.append(HealthEvent(
            stage=stage, category=category, severity=severity,
            message=message, recovered=recovered, details=details))
        if warn:
            warnings.warn(message, HealthyDegradation, stacklevel=3)

    @property
    def blockade_active(self) -> bool:
        """Classifier blockade engaged: simulate everything and feed the
        labels back until both classes reappear."""
        return self._blockade_active

    @property
    def quarantined_filters(self) -> set[int]:
        """Indices of permanently quarantined particle filters."""
        if self._filters is None:
            return set()
        return {j for j, state in enumerate(self._filters)
                if state["quarantined"]}

    @property
    def sigma_multiplier(self) -> float:
        """Accumulated stage-2 kernel widening factor."""
        return float(self.config.sigma_widen ** self._widenings)

    # ------------------------------------------------------------------
    # seam 1: simulation batches (solver guard)
    # ------------------------------------------------------------------
    def guarded_simulation(self, fn, stage: str):
        """Run one simulation batch with convergence-failure recovery.

        ``fn`` performs the (side-effect-free until successful) batched
        labelling; a :class:`~repro.errors.ConvergenceError` from it is
        retried up to ``solver_retries`` times under
        ``recover``/``permissive``.  Injected faults raise *before*
        ``fn`` runs, so a recovered injection leaves labels, counters
        and RNG streams bit-identical to the uninjected run.
        """
        cfg = self.config
        failures = 0
        while True:
            try:
                if self.injector.fire("solver"):
                    raise ConvergenceError(
                        "injected solver non-convergence "
                        f"(fault spec {self.injector.spec!r})",
                        residual=None)
                result = fn()
            except ConvergenceError as exc:
                failures += 1
                residual = (float(exc.residual)
                            if exc.residual is not None
                            and np.isfinite(exc.residual) else None)
                if cfg.strict:
                    self._record(
                        stage, "solver", "critical",
                        f"simulation batch failed to converge: {exc}",
                        residual=residual)
                    raise
                if failures > cfg.solver_retries:
                    self._record(
                        stage, "solver", "critical",
                        f"simulation batch still failing after "
                        f"{cfg.solver_retries} retries: {exc}",
                        attempts=failures, residual=residual)
                    raise
                continue
            if failures:
                self._record(
                    stage, "solver", "warning",
                    f"simulation batch recovered after {failures} "
                    f"convergence failure(s)",
                    recovered=True, warn=True, attempts=failures)
            return result

    # ------------------------------------------------------------------
    # seam 2: stage-1 particle filters
    # ------------------------------------------------------------------
    def stage1_weights(self, weights: np.ndarray,
                       n_particles: int) -> np.ndarray:
        """Fault-injection hook for the stacked stage-1 weights.

        The ``filter`` fault zeroes the first filter's slice, which the
        resampler answers by keeping its particles (lobe collapse) and
        the subsequent :meth:`check_stage1` detects.
        """
        if self.injector.fire("filter"):
            weights = weights.copy()
            weights[:n_particles] = 0.0
        return weights

    def check_stage1(self, bank, weights: np.ndarray, boundary,
                     iteration: int) -> None:
        """Per-iteration ESS and lobe-collapse monitor on the bank.

        A filter that has *never* carried weight is a dead lobe (a
        legitimate state at extreme duty ratios) and is left alone.  A
        previously live filter whose weights stay all-zero for
        ``stage1_patience`` consecutive iterations has collapsed:
        ``strict`` raises :class:`~repro.errors.DegradationError`;
        ``recover``/``permissive`` re-seed it deterministically from the
        boundary cache, then quarantine it once ``max_reseeds`` is
        exhausted.
        """
        cfg = self.config
        n = bank.n_particles
        if self._filters is None:
            self._filters = [
                {"alive": False, "zero_streak": 0, "reseeds": 0,
                 "quarantined": False}
                for _ in range(bank.n_filters)]
        for j, state in enumerate(self._filters):
            if state["quarantined"]:
                continue
            w = weights[j * n:(j + 1) * n]
            if np.any(w > 0):
                state["alive"] = True
                state["zero_streak"] = 0
                ess_fraction = effective_sample_size(w) / n
                if ess_fraction < cfg.stage1_ess_floor:
                    self._record(
                        "stage1", "filter-degeneracy", "info",
                        f"filter {j} ESS fraction {ess_fraction:.4f} "
                        f"below floor {cfg.stage1_ess_floor} at "
                        f"iteration {iteration}",
                        filter=j, iteration=iteration,
                        ess_fraction=float(ess_fraction))
                continue
            if not state["alive"]:
                continue  # dead lobe: never carried weight
            state["zero_streak"] += 1
            if state["zero_streak"] < cfg.stage1_patience:
                continue
            if cfg.strict:
                self._record(
                    "stage1", "filter-degeneracy", "critical",
                    f"filter {j} collapsed: zero weights for "
                    f"{state['zero_streak']} consecutive iterations",
                    filter=j, iteration=iteration)
                raise DegradationError(
                    f"particle filter {j} collapsed at stage-1 "
                    f"iteration {iteration} (zero weights for "
                    f"{state['zero_streak']} consecutive iterations)",
                    category="filter-degeneracy")
            if state["reseeds"] >= cfg.max_reseeds:
                state["quarantined"] = True
                self._record(
                    "stage1", "filter-degeneracy", "warning",
                    f"filter {j} quarantined after {state['reseeds']} "
                    f"failed re-seeds; it no longer contributes to the "
                    f"stage-2 mixture",
                    warn=True, filter=j, iteration=iteration,
                    reseeds=state["reseeds"])
                continue
            bank.reseed_filter(j, boundary)
            state["reseeds"] += 1
            state["zero_streak"] = 0
            self._record(
                "stage1", "filter-degeneracy", "warning",
                f"filter {j} re-seeded from the boundary cache "
                f"(re-seed {state['reseeds']}/{cfg.max_reseeds}) at "
                f"iteration {iteration}",
                recovered=True, warn=True, filter=j,
                iteration=iteration, reseeds=state["reseeds"])

    # ------------------------------------------------------------------
    # seam 3: classifier training batches
    # ------------------------------------------------------------------
    def training_batch(self, x: np.ndarray, labels: np.ndarray
                       ) -> tuple[np.ndarray, np.ndarray]:
        """Fault-injection hook for the batch *fed to the classifier*.

        The ``one-class`` fault keeps only one class of the batch (the
        pass side, or the fail side for an all-fail batch), so the
        classifier sees a degenerate single-class batch while every fed
        label stays *true* -- the injection degrades availability, never
        the training data, and the labels the estimator uses for
        particle weights are untouched anyway.
        """
        self._last_training_injected = False
        if self.injector.fire("one-class"):
            self._last_training_injected = True
            labels = np.asarray(labels, dtype=bool)
            keep = ~labels if not np.all(labels) else labels
            return x[keep], labels[keep]
        return x, labels

    def check_training_batch(self, blockade, fed: np.ndarray,
                             stage: str) -> None:
        """Degenerate-batch monitor + blockade-mode state machine."""
        cfg = self.config
        fed = np.asarray(fed, dtype=bool)
        one_class = fed.size > 0 and (bool(np.all(fed))
                                      or not bool(np.any(fed)))
        injected = self._last_training_injected
        self._last_training_injected = False
        if self._blockade_active:
            if blockade.is_trained and not one_class:
                self._blockade_active = False
                self._record(
                    "classifier", "one-class", "info",
                    f"both classes reappeared in a {stage} batch; "
                    f"classification resumed",
                    recovered=True, stage_name=stage)
            return
        if not one_class or blockade.is_trained:
            return
        if cfg.strict:
            if injected:
                self._record(
                    "classifier", "one-class", "critical",
                    "injected one-class training batch under strict "
                    "policy", stage_name=stage)
                raise ClassifierError(
                    "degenerate one-class training batch (injected) "
                    "under HealthPolicy.strict")
            if not self._one_class_noted:
                self._one_class_noted = True
                self._record(
                    "classifier", "one-class", "info",
                    f"one-class {stage} training batch before first "
                    f"fit; simulating until both classes appear",
                    stage_name=stage)
            return
        self._blockade_active = True
        self._record(
            "classifier", "one-class", "warning",
            f"degenerate one-class {stage} training batch: classifier "
            f"blockade engaged (simulate everything until both classes "
            f"reappear)", recovered=True, warn=True, stage_name=stage)

    # ------------------------------------------------------------------
    # seam 4: stage-2 importance weights
    # ------------------------------------------------------------------
    def clip_ratios(self, ratios: np.ndarray, weight_bound: float,
                    batch_index: int) -> np.ndarray:
        """Clip importance weights above their mathematical bound.

        The defensive mixture bounds every weight by
        ``1 / defensive_fraction``; anything above it means broken
        numerics.  ``strict`` raises; otherwise the weights are clipped
        and the estimate is permanently flagged *biased*.
        """
        bound = self.config.weight_clip_factor * weight_bound
        over = int(np.count_nonzero(ratios > bound))
        if not over:
            return ratios
        if self.config.strict:
            self._record(
                "stage2", "is-weight", "critical",
                f"{over} importance weight(s) above the defensive bound "
                f"{bound:.3e} in batch {batch_index}",
                batch=batch_index, clipped=over)
            raise DegradationError(
                f"{over} importance weight(s) exceeded the defensive "
                f"bound {bound:.3e} in stage-2 batch {batch_index}",
                category="is-weight")
        self.report.biased = True
        self._record(
            "stage2", "is-weight", "warning",
            f"clipped {over} importance weight(s) at {bound:.3e} in "
            f"batch {batch_index}; estimate flagged biased",
            recovered=True, warn=True, batch=batch_index, clipped=over)
        return np.minimum(ratios, bound)

    def check_stage2_batch(self, ratios: np.ndarray,
                           batch_index: int) -> bool:
        """ESS-floor monitor; returns True when the mixture must be
        rebuilt with a widened kernel (the caller owns the rebuild)."""
        cfg = self.config
        ratios = np.asarray(ratios, dtype=float)
        self._sum_w += float(ratios.sum())
        self._sum_w2 += float(np.sum(ratios * ratios))
        self._stage2_batches += 1
        n = ratios.size
        ess_fraction = (effective_sample_size(ratios) / n) if n else 0.0
        injected = self.injector.fire("is-weight")
        if injected:
            ess_fraction = 0.0
        if ess_fraction >= cfg.stage2_ess_floor:
            self._stage2_low_streak = 0
            return False
        self._stage2_low_streak += 1
        if self._stage2_low_streak < cfg.stage2_patience:
            return False
        if cfg.strict:
            self._record(
                "stage2", "is-weight", "critical",
                f"importance-weight ESS fraction {ess_fraction:.4f} "
                f"below floor {cfg.stage2_ess_floor} for "
                f"{self._stage2_low_streak} consecutive batches",
                batch=batch_index, ess_fraction=float(ess_fraction))
            raise DegradationError(
                f"stage-2 importance-weight ESS collapsed (fraction "
                f"{ess_fraction:.4f} below floor {cfg.stage2_ess_floor} "
                f"for {self._stage2_low_streak} consecutive batches)",
                category="is-weight")
        self._stage2_low_streak = 0
        if self._widenings >= cfg.max_widenings:
            self._record(
                "stage2", "is-weight", "critical",
                f"ESS floor still breached after {self._widenings} "
                f"widenings; continuing with the current mixture",
                batch=batch_index, widenings=self._widenings)
            return False
        self._widenings += 1
        self._record(
            "stage2", "is-weight", "warning",
            f"importance-weight ESS degenerate at batch {batch_index}; "
            f"widening the mixture kernel to "
            f"{self.sigma_multiplier:.3g}x "
            f"(widening {self._widenings}/{cfg.max_widenings})",
            recovered=True, warn=True, batch=batch_index,
            widenings=self._widenings)
        return True

    def zero_failure_estimate(self, accumulator, n_simulations: int,
                              method: str) -> FailureEstimate:
        """Policy response to zero stage-2 failure samples.

        ``strict`` keeps the historical
        :class:`~repro.errors.EstimationError`; ``recover`` and
        ``permissive`` return a rule-of-three upper bound on the Kish
        effective sample count of all importance weights seen.
        """
        message = ("importance sampling found no failing samples; the "
                   "alternative distribution missed the failure region")
        if self.config.strict:
            self._record("stage2", "zero-failures", "critical", message,
                         statistical_samples=accumulator.count)
            raise EstimationError(message)
        ess_total = (self._sum_w * self._sum_w / self._sum_w2
                     if self._sum_w2 > 0.0 else float(accumulator.count))
        ess_total = max(float(ess_total), 1.0)
        bound = min(3.0 / ess_total, 1.0)
        self.report.upper_bound = True
        self._record(
            "stage2", "zero-failures", "warning",
            f"{message}; returning the rule-of-three upper bound "
            f"3/{ess_total:.1f} = {bound:.3e} on the effective sample "
            f"count", recovered=True, warn=True,
            effective_samples=float(ess_total), upper_bound=float(bound))
        return FailureEstimate(
            pfail=bound, ci_halfwidth=bound,
            n_simulations=n_simulations,
            n_statistical_samples=accumulator.count,
            method=method,
            metadata={"upper_bound": True,
                      "effective_sample_count": float(ess_total)})

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Complete monitor state for the estimator snapshot."""
        return {
            "report": self.report.as_dict(),
            "filters": (None if self._filters is None
                        else [dict(s) for s in self._filters]),
            "stage2": {
                "low_streak": self._stage2_low_streak,
                "widenings": self._widenings,
                "sum_w": self._sum_w,
                "sum_w2": self._sum_w2,
                "batches": self._stage2_batches,
            },
            "blockade_active": self._blockade_active,
            "one_class_noted": self._one_class_noted,
            "injector": self.injector.state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot bit-exactly."""
        self.report = HealthReport.from_dict(state["report"])
        filters = state["filters"]
        self._filters = (None if filters is None else [
            {"alive": bool(s["alive"]),
             "zero_streak": int(s["zero_streak"]),
             "reseeds": int(s["reseeds"]),
             "quarantined": bool(s["quarantined"])}
            for s in filters])
        stage2 = state["stage2"]
        self._stage2_low_streak = int(stage2["low_streak"])
        self._widenings = int(stage2["widenings"])
        self._sum_w = float(stage2["sum_w"])
        self._sum_w2 = float(stage2["sum_w2"])
        self._stage2_batches = int(stage2["batches"])
        self._blockade_active = bool(state["blockade_active"])
        self._one_class_noted = bool(state["one_class_noted"])
        self.injector.restore_state(state["injector"])
