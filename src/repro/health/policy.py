"""Health policies and their tuning knobs.

A :class:`HealthPolicy` decides what happens when a numerical guardrail
trips:

* ``strict`` -- recovery is disabled.  Organic failures keep their
  original typed errors (:class:`~repro.errors.ConvergenceError`,
  :class:`~repro.errors.ClassifierError`,
  :class:`~repro.errors.EstimationError`); monitor-only detections with
  no organic error raise :class:`~repro.errors.DegradationError`.
  Healthy runs behave bit-identically to a build without the health
  layer -- the monitors only *record*.
* ``recover`` -- the recovery path runs (solver retries, filter
  re-seeding, mixture widening, classifier blockade, rule-of-three
  upper bound) within the configured thresholds; every engagement emits
  a :class:`~repro.errors.HealthyDegradation` warning and a
  :class:`~repro.health.events.HealthEvent`.  Recovery that cannot
  restore a usable state re-raises the original typed error.
* ``permissive`` -- like ``recover`` but best-effort results are
  accepted even beyond the thresholds (e.g. a solver iterate whose
  residual exceeds the acceptance bound); the report carries
  critical-severity events instead of an exception.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.health.inject import parse_fault_spec


class HealthPolicy(enum.Enum):
    """How the health layer responds to detected degradation."""

    STRICT = "strict"
    RECOVER = "recover"
    PERMISSIVE = "permissive"

    @classmethod
    def coerce(cls, value: "HealthPolicy | str") -> "HealthPolicy":
        """Accept a policy instance or its string name (CLI surface)."""
        if isinstance(value, cls):
            return value
        if isinstance(value, str):
            try:
                return cls(value.strip().lower())
            except ValueError:
                pass
        names = ", ".join(p.value for p in cls)
        raise ValueError(
            f"unknown health policy {value!r}; expected one of {names}")


@dataclass(frozen=True)
class HealthConfig:
    """Guardrail thresholds for one estimator run.

    Attributes
    ----------
    policy:
        The :class:`HealthPolicy` (or its string name).
    solver_retries:
        Label-simulation retries after a
        :class:`~repro.errors.ConvergenceError` before giving up
        (``recover``/``permissive`` only).
    solver_accept_residual:
        Residual bound [A] under which
        :func:`repro.health.solver.solve_with_recovery` accepts a
        non-converged best iterate.
    stage1_ess_floor:
        Effective-sample-size fraction below which a particle filter's
        iteration is logged as starved (diagnostic event; quarantine is
        driven by the zero-weight streak, not by this floor).
    stage1_patience:
        Consecutive zero-weight iterations after which a previously
        live filter counts as collapsed.
    max_reseeds:
        Re-seeds from the boundary cache granted to a collapsed filter
        before it is quarantined for the rest of the run.
    stage2_ess_floor:
        Kish ESS fraction of a stage-2 importance-weight batch below
        which the batch counts against :attr:`stage2_patience`.
    stage2_patience:
        Consecutive sub-floor batches that trigger mixture widening.
    sigma_widen:
        Multiplier applied to the stage-2 kernel sigma per widening.
    max_widenings:
        Widenings granted before further ESS-floor breaches are only
        recorded.
    weight_clip_factor:
        Importance weights above ``weight_clip_factor /
        defensive_fraction`` (i.e. above their mathematical bound) are
        clipped and the estimate flagged biased.  The factor's default
        sits just above 1 so exact-bound weights never trip it.
    inject:
        Deterministic fault-injection spec (test/CI machinery; see
        :mod:`repro.health.inject`).  ``None`` disables injection.
    """

    policy: HealthPolicy = HealthPolicy.STRICT
    solver_retries: int = 2
    solver_accept_residual: float = 1e-6
    stage1_ess_floor: float = 0.02
    stage1_patience: int = 2
    max_reseeds: int = 2
    stage2_ess_floor: float = 0.02
    stage2_patience: int = 2
    sigma_widen: float = 1.5
    max_widenings: int = 2
    weight_clip_factor: float = 1.000001
    inject: str | None = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "policy", HealthPolicy.coerce(self.policy))
        if self.solver_retries < 0:
            raise ValueError("solver_retries must be >= 0")
        if self.solver_accept_residual <= 0:
            raise ValueError("solver_accept_residual must be positive")
        if not 0.0 <= self.stage1_ess_floor < 1.0:
            raise ValueError("stage1_ess_floor must lie in [0, 1)")
        if not 0.0 <= self.stage2_ess_floor < 1.0:
            raise ValueError("stage2_ess_floor must lie in [0, 1)")
        if self.stage1_patience < 1 or self.stage2_patience < 1:
            raise ValueError("patience values must be >= 1")
        if self.max_reseeds < 0 or self.max_widenings < 0:
            raise ValueError("max_reseeds/max_widenings must be >= 0")
        if self.sigma_widen <= 1.0:
            raise ValueError("sigma_widen must be > 1")
        if self.weight_clip_factor < 1.0:
            raise ValueError("weight_clip_factor must be >= 1")
        if self.inject is not None:
            parse_fault_spec(self.inject)  # fail fast on malformed specs

    @property
    def strict(self) -> bool:
        return self.policy is HealthPolicy.STRICT

    @property
    def permissive(self) -> bool:
        return self.policy is HealthPolicy.PERMISSIVE
