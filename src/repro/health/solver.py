"""Convergence-failure recovery around :class:`~repro.spice.solver.DcSolver`.

:func:`solve_with_recovery` is the health layer's answer to a DC solve
that exhausted all three continuation strategies: retry with an
escalating-care schedule (halved damping, doubled iteration budget --
smaller, more numerous Newton steps), and if every retry still fails,
fall back to the *best iterate* the solver carried out on its
:class:`~repro.errors.ConvergenceError`:

* ``strict``   -- no retries, the original error propagates;
* ``recover``  -- retries run; the best iterate is accepted only when
  its KCL residual is below ``solver_accept_residual``;
* ``permissive`` -- the best iterate is always accepted, with a
  critical-severity event in the health report.

The returned :class:`~repro.spice.solver.OperatingPoint` of an accepted
degraded iterate carries ``strategy="degraded"`` so downstream code can
tell it from a converged point.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ConvergenceError
from repro.health.policy import HealthConfig
from repro.spice.solver import DcSolver, OperatingPoint


def solve_with_recovery(solver: DcSolver,
                        initial_guess: np.ndarray | dict | None = None,
                        config: HealthConfig | None = None,
                        monitor=None) -> OperatingPoint:
    """DC-solve with policy-driven retry and degraded-accept fallback.

    Parameters
    ----------
    solver:
        The solver to drive.  Its ``damping``/``max_iterations`` are
        temporarily escalated during retries and always restored.
    initial_guess:
        Forwarded to :meth:`~repro.spice.solver.DcSolver.solve`.
    config:
        The :class:`~repro.health.policy.HealthConfig`; defaults to the
        strict policy (making this function equivalent to a plain
        ``solver.solve`` call).
    monitor:
        Optional :class:`~repro.health.monitor.HealthMonitor` to record
        events into.
    """
    cfg = config if config is not None else HealthConfig()

    def record(severity: str, message: str, recovered: bool = False,
               **details) -> None:
        if monitor is not None:
            monitor._record("solver", "solver", severity, message,
                            recovered=recovered, warn=recovered,
                            **details)

    try:
        return solver.solve(initial_guess)
    except ConvergenceError as exc:
        if cfg.strict:
            record("critical", f"DC solve failed under strict policy: "
                   f"{exc}", residual=_finite_or_none(exc.residual))
            raise
        best = exc

    damping0 = solver.damping
    iterations0 = solver.max_iterations
    try:
        for attempt in range(1, cfg.solver_retries + 1):
            solver.damping = damping0 / (2.0 ** attempt)
            solver.max_iterations = iterations0 * (2 ** attempt)
            try:
                point = solver.solve(initial_guess)
            except ConvergenceError as exc:
                if (exc.residual is not None and best.residual is not None
                        and exc.residual < best.residual):
                    best = exc
                continue
            record("warning",
                   f"DC solve recovered on retry {attempt} with damping "
                   f"{solver.damping:.3g} V and "
                   f"{solver.max_iterations} iterations",
                   recovered=True, attempt=attempt)
            return point
    finally:
        solver.damping = damping0
        solver.max_iterations = iterations0

    residual = best.residual
    acceptable = (best.best_x is not None and residual is not None
                  and residual <= cfg.solver_accept_residual)
    if acceptable:
        record("warning",
               f"DC solve accepted the best non-converged iterate "
               f"(residual {residual:.3e} A, within the acceptance "
               f"bound {cfg.solver_accept_residual:.1e} A)",
               recovered=True, residual=float(residual))
        return solver.package_iterate(best.best_x, best.iterations)
    if cfg.permissive and best.best_x is not None:
        record("critical",
               f"DC solve accepted a best-effort iterate beyond the "
               f"acceptance bound (residual {residual:.3e} A) under "
               f"permissive policy",
               recovered=True, residual=_finite_or_none(residual))
        return solver.package_iterate(best.best_x, best.iterations)
    record("critical",
           f"DC solve failed after {cfg.solver_retries} escalated "
           f"retries: {best}", residual=_finite_or_none(residual))
    raise best


def _finite_or_none(residual: float | None) -> float | None:
    if residual is None or not np.isfinite(residual):
        return None
    return float(residual)
