"""repro.lint -- AST-based determinism & process-safety linter.

The runtime's bit-reproducibility guarantees (PR 1) are conventions:
all randomness flows through spawned :class:`numpy.random.Generator`
children, and every task callable handed to the
:class:`~repro.runtime.executor.Executor` must survive pickling.  This
package turns those conventions into machine-checked rules: per-file
rules REP001-REP006, plus the project-aware rules REP007-REP009 that
run in a second pass over a whole-program model (import graph,
per-class symbol tables, method read/write sets) to catch unlocked
shared state, incomplete checkpoint snapshots and fingerprint-contract
drift.  Suppression is per-statement pragmas
(``# repro: allow-<slug>``), a baseline file grandfathers findings,
and reports render as text, JSON, SARIF or GitHub annotations.

Run it as ``python -m repro.lint src tests`` or ``ecripse lint``
(``--changed`` lints only files modified vs the git merge base);
rules and rationale are documented in docs/DEVELOPMENT.md.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.config import (DEFAULT_PROJECT_CONFIG,
                               FingerprintContract, ProjectConfig,
                               RuleScope)
from repro.lint.engine import LintEngine, discover
from repro.lint.findings import Finding, LintResult, Related
from repro.lint.project import ProjectModel
from repro.lint.rules import (RULES, ProjectRule, Rule, default_rules,
                              register)

__all__ = [
    "Baseline",
    "DEFAULT_PROJECT_CONFIG",
    "Finding",
    "FingerprintContract",
    "LintEngine",
    "LintResult",
    "ProjectConfig",
    "ProjectModel",
    "ProjectRule",
    "RULES",
    "Related",
    "Rule",
    "RuleScope",
    "default_rules",
    "discover",
    "register",
]
