"""repro.lint -- AST-based determinism & process-safety linter.

The runtime's bit-reproducibility guarantees (PR 1) are conventions:
all randomness flows through spawned :class:`numpy.random.Generator`
children, and every task callable handed to the
:class:`~repro.runtime.executor.Executor` must survive pickling.  This
package turns those conventions into machine-checked rules (REP001 to
REP006), with per-line pragma suppression (``# repro: allow-<slug>``),
a baseline file for grandfathered findings, and text/JSON reporters.

Run it as ``python -m repro.lint src tests`` or ``ecripse lint``;
rules and rationale are documented in docs/DEVELOPMENT.md.
"""

from __future__ import annotations

from repro.lint.baseline import Baseline
from repro.lint.engine import LintEngine, discover
from repro.lint.findings import Finding, LintResult
from repro.lint.rules import RULES, Rule, default_rules, register

__all__ = [
    "Baseline",
    "Finding",
    "LintEngine",
    "LintResult",
    "RULES",
    "Rule",
    "default_rules",
    "discover",
    "register",
]
