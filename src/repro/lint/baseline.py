"""Baseline files: grandfather existing findings, block new ones.

A baseline is a JSON file holding the fingerprints of known findings.
Findings whose fingerprint is in the baseline are filtered out of the
report (and counted as "baselined"), so the linter can be adopted on a
tree with historic debt while still failing CI on anything *new*.

Fingerprints hash the rule, file path and offending line *text* (plus
an occurrence index for identical lines), not the line number -- an
unrelated edit above a grandfathered finding does not resurrect it.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.lint.findings import Finding

_VERSION = 1


def assign_fingerprints(findings: list[Finding]) -> list[str]:
    """Fingerprint per finding (aligned with the input order).

    Identical lines are numbered in (path, line) order so two equal
    violations on different lines stay distinct.
    """
    order = sorted(range(len(findings)),
                   key=lambda i: (findings[i].path, findings[i].line,
                                  findings[i].col))
    seen: dict[tuple[str, str, str], int] = {}
    prints = [""] * len(findings)
    for i in order:
        finding = findings[i]
        key = (finding.rule, finding.path, finding.source_line)
        occurrence = seen.get(key, 0)
        seen[key] = occurrence + 1
        prints[i] = finding.fingerprint(occurrence)
    return prints


class Baseline:
    """Set of grandfathered finding fingerprints."""

    def __init__(self, fingerprints: set[str] | None = None):
        self.fingerprints = set(fingerprints or ())

    def __len__(self) -> int:
        return len(self.fingerprints)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.fingerprints

    @classmethod
    def from_findings(cls, findings: list[Finding]) -> "Baseline":
        return cls(set(assign_fingerprints(findings)))

    @classmethod
    def load(cls, path: str | Path) -> "Baseline":
        data = json.loads(Path(path).read_text())
        if data.get("version") != _VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path}")
        return cls(set(data.get("fingerprints", [])))

    def save(self, path: str | Path) -> None:
        payload = {"version": _VERSION,
                   "fingerprints": sorted(self.fingerprints)}
        Path(path).write_text(json.dumps(payload, indent=2) + "\n")

    def split(self, findings: list[Finding]
              ) -> tuple[list[Finding], list[Finding]]:
        """Partition into (new, grandfathered) findings."""
        prints = assign_fingerprints(findings)
        new, old = [], []
        for finding, fingerprint in zip(findings, prints):
            (old if fingerprint in self.fingerprints else new).append(
                finding)
        return new, old
