"""Changed-file discovery for ``ecripse lint --changed``.

The fast pre-commit loop: lint only the Python files that differ from
the merge base with the main branch (plus untracked files), so a
focused edit lints in milliseconds while CI still sweeps the full
tree.  Outside a git checkout (or when git itself is unavailable) the
caller falls back to the full tree -- ``--changed`` is an
acceleration, never a correctness filter.
"""

from __future__ import annotations

import subprocess
from pathlib import Path
from typing import Sequence

from repro.lint.engine import discover

#: upstream refs tried, in order, for the merge base.
_BASE_CANDIDATES = ("origin/main", "main", "origin/master", "master")


class _GitUnavailable(Exception):
    """git missing, not a repo, or the queried ref does not exist."""


def _git(args: Sequence[str]) -> str:
    try:
        proc = subprocess.run(["git", *args], capture_output=True,
                              text=True, timeout=30)
    except (OSError, subprocess.TimeoutExpired) as exc:
        raise _GitUnavailable(str(exc)) from exc
    if proc.returncode != 0:
        raise _GitUnavailable(proc.stderr.strip())
    return proc.stdout


def merge_base() -> str | None:
    """Merge base with the first upstream candidate that exists, or
    ``None`` (diff against HEAD: uncommitted work only)."""
    for candidate in _BASE_CANDIDATES:
        try:
            return _git(["merge-base", "HEAD", candidate]).strip()
        except _GitUnavailable:
            continue
    return None


def changed_files(paths: Sequence[str | Path]) -> list[Path] | None:
    """Python files under ``paths`` changed vs the merge base.

    Includes uncommitted and untracked files.  Returns ``None`` when
    git cannot answer (not a repository, git missing) -- the caller
    then lints the full tree.
    """
    try:
        toplevel = Path(_git(["rev-parse", "--show-toplevel"]).strip())
        ref = merge_base() or "HEAD"
        names = _git(["diff", "--name-only", ref]).splitlines()
        names += _git(["ls-files", "--others",
                       "--exclude-standard"]).splitlines()
    except _GitUnavailable:
        return None
    changed = {(toplevel / name).resolve()
               for name in names if name.endswith(".py")}
    return [f for f in discover(paths) if f.resolve() in changed]
