"""Command-line front end: ``python -m repro.lint`` / ``ecripse lint``.

Exit codes
----------
0   no findings
1   findings (new relative to the baseline, if one is used)
2   usage error, unreadable input, or syntax error in a checked file
"""

from __future__ import annotations

import argparse
import os
import sys
from pathlib import Path

from repro.lint.baseline import Baseline
from repro.lint.changed import changed_files
from repro.lint.engine import LintEngine
from repro.lint.reporters import (render_github, render_json,
                                  render_sarif, render_text)
from repro.lint.rules import default_rules

DEFAULT_BASELINE = ".repro-lint-baseline.json"


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro.lint",
        description="AST-based determinism & process-safety linter for "
                    "the ECRIPSE reproduction (file rules REP001-REP006 "
                    "plus project-aware rules REP007-REP009; "
                    "see docs/DEVELOPMENT.md).")
    parser.add_argument("paths", nargs="*", default=["src", "tests"],
                        help="files or directories to lint "
                             "(default: src tests)")
    parser.add_argument("--format",
                        choices=("text", "json", "sarif", "github"),
                        default="text", help="report format (sarif for "
                        "CI artifacts, github for inline PR "
                        "annotations)")
    parser.add_argument("--output", default=None, metavar="PATH",
                        help="write the report to PATH instead of "
                             "stdout")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files changed vs the git merge "
                             "base (falls back to the full tree "
                             "outside a repository)")
    parser.add_argument("--select", default=None, metavar="RULES",
                        help="comma-separated rule ids/slugs to run "
                             "(default: all)")
    parser.add_argument("--ignore", default=None, metavar="RULES",
                        help="comma-separated rule ids/slugs to skip")
    parser.add_argument("--baseline", default=None, metavar="PATH",
                        help="baseline file of grandfathered findings "
                             f"(default: {DEFAULT_BASELINE} if present)")
    parser.add_argument("--update-baseline", action="store_true",
                        help="write current findings to the baseline "
                             "and exit 0")
    parser.add_argument("--list-rules", action="store_true",
                        help="print the rule table and exit")
    return parser


def _split(arg: str | None) -> list[str] | None:
    if arg is None:
        return None
    return [part.strip() for part in arg.split(",") if part.strip()]


def _rule_table() -> str:
    lines = []
    for rule in default_rules():
        lines.append(f"{rule.id}  allow-{rule.slug:<18} {rule.title}")
        lines.append(f"        {rule.rationale}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    try:
        return _main(argv)
    except BrokenPipeError:
        # Downstream pipe (e.g. `... | head`) closed early; silence the
        # interpreter's close-time complaint and exit quietly.
        devnull = os.open(os.devnull, os.O_WRONLY)
        os.dup2(devnull, sys.stdout.fileno())
        return 0


def _main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.list_rules:
        print(_rule_table())
        return 0

    baseline_path = args.baseline
    if baseline_path is None and Path(DEFAULT_BASELINE).is_file():
        baseline_path = DEFAULT_BASELINE

    baseline = None
    if baseline_path is not None and not args.update_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except (OSError, ValueError) as exc:
            print(f"error: cannot load baseline {baseline_path}: {exc}",
                  file=sys.stderr)
            return 2

    engine = LintEngine(select=_split(args.select),
                        ignore=_split(args.ignore) or (),
                        baseline=baseline)
    if not engine.rules:
        print("error: rule selection matches no rules", file=sys.stderr)
        return 2

    paths: list = list(args.paths)
    if args.changed:
        subset = changed_files(paths)
        if subset is None:
            print("warning: --changed needs a git checkout; linting "
                  "the full tree", file=sys.stderr)
        elif not subset:
            print("no changed Python files")
            return 0
        else:
            paths = subset
    result = engine.check_paths(paths)
    if result.checked_files == 0 and not result.parse_errors:
        print("error: no Python files found under "
              + " ".join(map(str, paths)), file=sys.stderr)
        return 2

    if args.update_baseline:
        target = baseline_path or DEFAULT_BASELINE
        Baseline.from_findings(result.findings).save(target)
        print(f"baseline written: {len(result.findings)} finding(s) "
              f"-> {target}")
        return 0

    render = {"json": render_json, "github": render_github,
              "sarif": lambda r: render_sarif(r, engine.rules),
              "text": render_text}[args.format]
    report = render(result)
    if args.output:
        Path(args.output).write_text(report + "\n", encoding="utf-8")
        print(f"report written: {args.output}")
    else:
        print(report)
    return result.exit_code


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
