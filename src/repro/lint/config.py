"""Declarative lint configuration: scopes and cross-module contracts.

PRs 2-6 accreted per-rule hardcoded path lists inside the rule classes
(REP002's ever-growing directory enumeration being the worst offender).
This module replaces them with one declarative table -- every rule's
scope lives here, so "which rule runs where, and why" is answered in
one place -- plus the data-side of the three project-aware rules:

* which constructors count as locks / thread-safe primitives (REP007);
* which method names mutate their receiver (REP007/REP008 write sets);
* the snapshot/restore naming convention and escape hatch (REP008);
* the fingerprint classification contracts (REP009): for every
  dataclass feeding a result fingerprint, each field is declared
  identity-bearing or excluded, so an unclassified new field is a lint
  failure the moment it is added.
"""

from __future__ import annotations

from dataclasses import dataclass, field

# ---------------------------------------------------------------------
# Rule scopes (fnmatch globs over POSIX paths).
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class RuleScope:
    """Where one rule applies (include/exclude fnmatch globs)."""

    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()


#: single source of truth for rule scoping.  A rule with no entry runs
#: everywhere.  Entries carry the rationale that used to live as
#: comments on the rule classes.
RULE_SCOPES: dict[str, RuleScope] = {
    # Deterministic code only: estimator outputs must be pure functions
    # of (inputs, seed).  repro/perf is in scope with the same
    # perf_counter-only carve-out: its profiling spans are telemetry,
    # but a time.time() there could leak wall-clock state into cached
    # results.  trigger.py, service/scheduler.py and chaos/clock.py
    # host the three sanctioned wall-clock seams (manifest timestamps /
    # job-record timestamps / fault-harness telemetry; none ever feeds
    # an estimate).
    "REP002": RuleScope(
        include=("*repro/core/*", "*repro/runtime/*", "*repro/rtn/*",
                 "*repro/ml/*", "*repro/checkpoint/*", "*repro/health/*",
                 "*repro/perf/*", "*repro/service/*",
                 "*repro/chaos/*", "*repro/xp/*"),
        exclude=("*repro/checkpoint/trigger.py",
                 "*repro/service/scheduler.py",
                 "*repro/chaos/clock.py")),
    # The runtime retry layer's job is catching everything: any chunk
    # failure must be retried or demoted to the serial fallback.
    "REP006": RuleScope(exclude=("*repro/runtime/executor.py",)),
    # Lock discipline matters where worker threads, scheduler callbacks
    # and HTTP handlers share state; perf caches are shared by the
    # thread backend the same way.
    "REP007": RuleScope(
        include=("*repro/service/*", "*repro/runtime/*",
                 "*repro/perf/*", "*repro/checkpoint/*")),
    # Snapshot completeness applies to every checkpointable class in
    # the library tree; test doubles are free to be partial.
    "REP008": RuleScope(include=("*repro/*",), exclude=("*tests/*",)),
    "REP009": RuleScope(include=("*repro/*",), exclude=("*tests/*",)),
}


def scope_for(rule_id: str) -> RuleScope | None:
    """The declarative scope of ``rule_id``, or ``None`` (run anywhere)."""
    return RULE_SCOPES.get(rule_id)


# ---------------------------------------------------------------------
# REP007 lock discipline.
# ---------------------------------------------------------------------

#: constructors whose result is a mutual-exclusion object: an attribute
#: initialised from one of these is the class's lock, and ``with
#: self.<attr>:`` blocks define its critical sections.
LOCK_FACTORIES = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
})

#: constructors whose result is itself thread-safe: attributes holding
#: one are synchronisation primitives, not lock-guarded state, so
#: unlocked access to them is fine by design.
THREADSAFE_FACTORIES = frozenset({
    "threading.Event", "threading.Semaphore",
    "threading.BoundedSemaphore", "threading.Barrier",
    "queue.Queue", "queue.LifoQueue", "queue.PriorityQueue",
    "queue.SimpleQueue",
})

#: method names that mutate their receiver (``self.attr.append(x)``
#: counts as a write to ``attr``).  Deliberately conservative: only
#: unambiguous container mutators; domain verbs stay reads.
MUTATOR_METHODS = frozenset({
    "append", "appendleft", "extend", "insert", "remove", "pop",
    "popitem", "popleft", "clear", "update", "setdefault", "add",
    "discard", "move_to_end", "sort", "reverse",
})


# ---------------------------------------------------------------------
# REP008 snapshot completeness.
# ---------------------------------------------------------------------

#: method names recognised as "produce the encode_state payload", in
#: preference order (estimators use ``state_snapshot``, sub-state
#: carriers use ``state``).
SNAPSHOT_METHODS = ("state_snapshot", "state")

#: the restore half of the checkpoint pair.
RESTORE_METHOD = "restore_state"

#: class-level allowlist constant: attributes named here are mutable
#: state that deliberately does not ride snapshots (derived values
#: rebuilt on restore).  Each entry is an attribute name string.
SNAPSHOT_EXCLUDED_CONST = "_SNAPSHOT_EXCLUDED"


# ---------------------------------------------------------------------
# REP009 fingerprint drift.
# ---------------------------------------------------------------------


@dataclass(frozen=True)
class FingerprintContract:
    """Field classification of one dataclass feeding a fingerprint.

    Attributes
    ----------
    cls:
        Canonical dotted path of the dataclass.
    identity:
        Fields that determine the result: a change must change the
        fingerprint (the discrimination half of
        ``tests/service/test_fingerprints.py``).
    excluded:
        Fields that provably cannot change the result (scheduling
        hints, execution backend, result-neutral acceleration policy);
        they must stay out of the fingerprint (the invariance half).
    exclusion_constant:
        Name of an in-module constant (set/frozenset of field-name
        strings) implementing the exclusion at runtime; when given, its
        literal value must equal ``excluded`` -- code and contract
        cannot drift apart silently.
    """

    cls: str
    identity: frozenset[str] = frozenset()
    excluded: frozenset[str] = frozenset()
    exclusion_constant: str | None = None

    @property
    def module(self) -> str:
        return self.cls.rpartition(".")[0]

    @property
    def class_name(self) -> str:
        return self.cls.rpartition(".")[2]


#: every dataclass whose fields feed ``fingerprint()`` /
#: ``solve_fingerprint()`` -- adding a field to one of these without
#: classifying it here is a REP009 failure.
FINGERPRINT_CONTRACTS: tuple[FingerprintContract, ...] = (
    # The service job spec: result_fields() == all fields minus the
    # scheduling hints and result-neutral perf knobs (see
    # repro/service/spec.py _NONRESULT_FIELDS).  ``array_backend`` is
    # excluded by the neutrality contract: every backend labels
    # identically (unusable ones fall back to numpy), so jobs differing
    # only here must share a result-cache entry.
    FingerprintContract(
        cls="repro.service.spec.JobSpec",
        identity=frozenset({
            "kind", "vdd", "alpha", "seed", "target_relative_error",
            "max_simulations", "n_samples", "quick", "grid_points",
            "health_policy", "pfail", "array",
        }),
        excluded=frozenset({"priority", "checkpoint_every",
                            "max_attempts", "array_backend"}),
        exclusion_constant="_NONRESULT_FIELDS"),
    # Resilience knobs (fault schedules, leases, attempt budgets) may
    # change how often a job runs, never what it computes: a job
    # retried under a different lease must still hit the result cache,
    # so every field is excluded and the constant pins the set.
    FingerprintContract(
        cls="repro.chaos.config.ChaosConfig",
        excluded=frozenset({
            "inject_fs", "lease_s", "watchdog_interval_s",
            "max_attempts", "heartbeat_s",
        }),
        exclusion_constant="_RESILIENCE_FIELDS"),
    # The array-reliability question: every field changes the decision
    # tables, so everything is identity (result_fields() embeds the
    # whole nested config).
    FingerprintContract(
        cls="repro.analysis.ecc.ArrayConfig",
        identity=frozenset({
            "capacity_mbit", "data_bits", "node", "environment",
            "fit_target", "scrub_hours", "schemes",
        })),
    # The estimator config is hashed wholesale into the checkpoint
    # fingerprint after neutralising the execution backend
    # (EcripseEstimator.fingerprint does with_(execution=...)).
    FingerprintContract(
        cls="repro.core.ecripse.EcripseConfig",
        identity=frozenset({
            "n_filters", "n_particles", "n_iterations", "kernel_sigma",
            "m_rtn", "k_train", "n_boundary_directions",
            "boundary_r_max", "n_bisections", "stage2_batch",
            "m_rtn_stage2", "max_statistical_samples",
            "min_stage2_batches", "defensive_fraction", "is_sigma_scale",
            "use_classifier", "classifier_degree", "classifier_c",
            "band_quantile", "retrain_trigger", "health",
        }),
        excluded=frozenset({"execution"})),
    # The execution config never reaches a fingerprint (backend
    # invariance is the PR 1 guarantee); every field is excluded.
    FingerprintContract(
        cls="repro.runtime.config.ExecutionConfig",
        excluded=frozenset({
            "backend", "workers", "chunk_size", "max_retries",
            "retry_backoff_s", "fallback_serial",
            "shm_threshold_bytes",
        })),
    # The perf policy is result-neutral by the PR 5 bit-identity
    # contract (extended to side fusion, array backends and label
    # batching in PR 10); a field someone believes belongs in
    # `identity` here is a design alarm, not a lint tweak.
    FingerprintContract(
        cls="repro.perf.config.PerfConfig",
        excluded=frozenset({
            "adaptive", "coarse_iterations", "guard_safety",
            "cache_entries", "cache_path", "batched", "array_backend",
            "label_batch",
        })),
)


@dataclass(frozen=True)
class ProjectConfig:
    """Everything the project-aware rules consult, bundled so tests can
    substitute fixture-specific contracts without monkeypatching."""

    lock_factories: frozenset[str] = LOCK_FACTORIES
    threadsafe_factories: frozenset[str] = THREADSAFE_FACTORIES
    mutator_methods: frozenset[str] = MUTATOR_METHODS
    snapshot_methods: tuple[str, ...] = SNAPSHOT_METHODS
    restore_method: str = RESTORE_METHOD
    snapshot_excluded_const: str = SNAPSHOT_EXCLUDED_CONST
    fingerprint_contracts: tuple[FingerprintContract, ...] = field(
        default=FINGERPRINT_CONTRACTS)


DEFAULT_PROJECT_CONFIG = ProjectConfig()
