"""The lint engine: file discovery, rule dispatch, suppression.

The engine owns everything the rules should not care about -- walking
directories, parsing, pragma suppression, rule selection and baseline
filtering -- so a rule is nothing but "AST in, findings out".
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.findings import Finding, LintResult
from repro.lint.pragmas import collect_pragmas, is_suppressed
from repro.lint.rules import FileContext, Rule, default_rules

#: directories never descended into during discovery.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".venv", "venv",
                        "build", "dist", ".mypy_cache", ".ruff_cache"})


def discover(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                f for f in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(f.parts))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


class LintEngine:
    """Run a rule set over sources and files.

    Parameters
    ----------
    rules:
        Rule instances; defaults to the registered REP rule set.
    select / ignore:
        Optional iterables of rule ids (or slugs) restricting the run.
    baseline:
        Optional :class:`~repro.lint.baseline.Baseline` of grandfathered
        findings to filter out.
    """

    def __init__(self, rules: Sequence[Rule] | None = None,
                 select: Iterable[str] | None = None,
                 ignore: Iterable[str] = (),
                 baseline: Baseline | None = None):
        rules = list(default_rules() if rules is None else rules)
        chosen = ({s.lower() for s in select}
                  if select is not None else None)
        dropped = {s.lower() for s in ignore}
        self.rules = [
            rule for rule in rules
            if (chosen is None or rule.id.lower() in chosen
                or rule.slug.lower() in chosen)
            and rule.id.lower() not in dropped
            and rule.slug.lower() not in dropped]
        self.baseline = baseline

    def check_source(self, source: str, path: str = "<string>",
                     result: LintResult | None = None) -> list[Finding]:
        """Lint one source string; pragma-aware, baseline-unaware.

        Raises :class:`SyntaxError` when the source does not parse,
        unless ``result`` is given (the error is then recorded there).
        """
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            if result is None:
                raise
            result.parse_errors.append((path, str(exc)))
            return []
        ctx = FileContext(path, source, tree)
        pragmas = collect_pragmas(source)
        findings: list[Finding] = []
        suppressed = 0
        for rule in self.rules:
            if not rule.applies_to(ctx.path):
                continue
            for finding in rule.check(tree, ctx):
                if is_suppressed(pragmas, finding.line, rule.id,
                                 rule.slug):
                    suppressed += 1
                else:
                    findings.append(finding)
        if result is not None:
            result.suppressed += suppressed
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    def check_paths(self, paths: Sequence[str | Path]) -> LintResult:
        """Lint files/directories and apply the baseline filter."""
        result = LintResult()
        findings: list[Finding] = []
        for file in discover(paths):
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                result.parse_errors.append((file.as_posix(), str(exc)))
                continue
            result.checked_files += 1
            findings.extend(self.check_source(source, file.as_posix(),
                                              result=result))
        if self.baseline is not None:
            findings, grandfathered = self.baseline.split(findings)
            result.baselined = len(grandfathered)
        result.findings = findings
        return result
