"""The lint engine: discovery, two-pass rule dispatch, suppression.

The engine owns everything the rules should not care about -- walking
directories, parsing, pragma suppression, rule selection and baseline
filtering -- so a rule is nothing but "AST in, findings out".

Since the project-aware rules (REP007-REP009) the run is two-phase:

1. **collect** -- every file is parsed once; file rules run against
   each tree immediately, and every tree is folded into one
   :class:`~repro.lint.project.ProjectModel` (import aliases, per-class
   symbol tables, method read/write sets).
2. **check** -- :class:`~repro.lint.rules.ProjectRule` instances run
   against the finished model and may emit findings in any collected
   file; pragma suppression is applied per finding against the pragma
   table of the file it points at.

Pragmas are span-aware: a ``# repro: allow-<slug>`` comment on *any*
physical line of the flagged statement suppresses the finding.
"""

from __future__ import annotations

import ast
from pathlib import Path
from typing import Iterable, Sequence

from repro.lint.baseline import Baseline
from repro.lint.config import DEFAULT_PROJECT_CONFIG, ProjectConfig
from repro.lint.findings import Finding, LintResult
from repro.lint.pragmas import collect_pragmas, is_suppressed
from repro.lint.project import ProjectModel
from repro.lint.rules import (FileContext, ProjectRule, Rule,
                              default_rules)

#: directories never descended into during discovery.
_SKIP_DIRS = frozenset({".git", "__pycache__", ".venv", "venv",
                        "build", "dist", ".mypy_cache", ".ruff_cache"})


def discover(paths: Sequence[str | Path]) -> list[Path]:
    """Expand files/directories into a sorted list of ``*.py`` files."""
    files: set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            files.update(
                f for f in path.rglob("*.py")
                if not _SKIP_DIRS.intersection(f.parts))
        elif path.suffix == ".py":
            files.add(path)
    return sorted(files)


class LintEngine:
    """Run a rule set over sources and files.

    Parameters
    ----------
    rules:
        Rule instances; defaults to the registered REP rule set.
    select / ignore:
        Optional iterables of rule ids (or slugs) restricting the run.
    baseline:
        Optional :class:`~repro.lint.baseline.Baseline` of grandfathered
        findings to filter out.
    project_config:
        Scope table and contracts consulted by the project-aware rules;
        defaults to the declarative tables in :mod:`repro.lint.config`.
    """

    def __init__(self, rules: Sequence[Rule] | None = None,
                 select: Iterable[str] | None = None,
                 ignore: Iterable[str] = (),
                 baseline: Baseline | None = None,
                 project_config: ProjectConfig | None = None):
        rules = list(default_rules() if rules is None else rules)
        chosen = ({s.lower() for s in select}
                  if select is not None else None)
        dropped = {s.lower() for s in ignore}
        self.rules = [
            rule for rule in rules
            if (chosen is None or rule.id.lower() in chosen
                or rule.slug.lower() in chosen)
            and rule.id.lower() not in dropped
            and rule.slug.lower() not in dropped]
        self.baseline = baseline
        self.project_config = project_config or DEFAULT_PROJECT_CONFIG

    @property
    def file_rules(self) -> list[Rule]:
        return [r for r in self.rules if not isinstance(r, ProjectRule)]

    @property
    def project_rules(self) -> list[ProjectRule]:
        return [r for r in self.rules if isinstance(r, ProjectRule)]

    # -- single source -------------------------------------------------
    def check_source(self, source: str, path: str = "<string>",
                     result: LintResult | None = None) -> list[Finding]:
        """Lint one source string; pragma-aware, baseline-unaware.

        Project rules run against a single-module model, so the
        cross-module checks still fire on self-contained fixtures.
        Raises :class:`SyntaxError` when the source does not parse,
        unless ``result`` is given (the error is then recorded there).
        """
        model = ProjectModel(self.project_config)
        pragma_tables: dict[str, dict[int, frozenset[str]]] = {}
        findings = self._collect_file(source, path, result, model,
                                      pragma_tables)
        if findings is None:
            return []
        findings.extend(self._check_project(model, pragma_tables,
                                            result))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        return findings

    # -- full run ------------------------------------------------------
    def check_paths(self, paths: Sequence[str | Path]) -> LintResult:
        """Lint files/directories and apply the baseline filter."""
        result = LintResult()
        model = ProjectModel(self.project_config)
        pragma_tables: dict[str, dict[int, frozenset[str]]] = {}
        findings: list[Finding] = []
        for file in discover(paths):
            try:
                source = file.read_text(encoding="utf-8")
            except (OSError, UnicodeDecodeError) as exc:
                result.parse_errors.append((file.as_posix(), str(exc)))
                continue
            result.checked_files += 1
            file_findings = self._collect_file(
                source, file.as_posix(), result, model, pragma_tables)
            findings.extend(file_findings or [])
        findings.extend(self._check_project(model, pragma_tables,
                                            result))
        findings.sort(key=lambda f: (f.path, f.line, f.col, f.rule))
        if self.baseline is not None:
            findings, grandfathered = self.baseline.split(findings)
            result.baselined = len(grandfathered)
        result.findings = findings
        return result

    # -- passes --------------------------------------------------------
    def _collect_file(self, source: str, path: str,
                      result: LintResult | None, model: ProjectModel,
                      pragma_tables: dict[str, dict[int,
                                                    frozenset[str]]]
                      ) -> list[Finding] | None:
        """Collect pass for one file: parse, file rules, fold into the
        model.  Returns ``None`` on a syntax error (recorded/raised)."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            if result is None:
                raise
            result.parse_errors.append((path, str(exc)))
            return None
        ctx = FileContext(path, source, tree)
        pragmas = collect_pragmas(source)
        pragma_tables[ctx.path] = pragmas
        model.add_module(ctx.path, source, tree=tree)
        findings: list[Finding] = []
        suppressed = 0
        for rule in self.file_rules:
            if not rule.applies_to(ctx.path):
                continue
            for finding in rule.check(tree, ctx):
                if is_suppressed(pragmas, finding.line, rule.id,
                                 rule.slug, finding.last_line):
                    suppressed += 1
                else:
                    findings.append(finding)
        if result is not None:
            result.suppressed += suppressed
        return findings

    def _check_project(self, model: ProjectModel,
                       pragma_tables: dict[str, dict[int,
                                                     frozenset[str]]],
                       result: LintResult | None) -> list[Finding]:
        """Check pass: project rules against the collected model."""
        findings: list[Finding] = []
        suppressed = 0
        for rule in self.project_rules:
            for finding in rule.check_project(model):
                pragmas = pragma_tables.get(finding.path, {})
                if is_suppressed(pragmas, finding.line, rule.id,
                                 rule.slug, finding.last_line):
                    suppressed += 1
                else:
                    findings.append(finding)
        if result is not None:
            result.suppressed += suppressed
        return findings
