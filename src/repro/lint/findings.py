"""Finding and result containers for the determinism linter."""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Related:
    """A secondary location attached to a cross-module finding (the
    lock definition, the snapshot payload, the contract table...)."""

    path: str
    line: int
    note: str


@dataclass(frozen=True)
class Finding:
    """One rule violation at a concrete source location.

    Attributes
    ----------
    rule:
        Rule identifier, e.g. ``"REP001"``.
    slug:
        Human-facing rule slug used in pragmas, e.g. ``"global-rng"``.
    path:
        File the finding was raised in (as given to the engine,
        normalised to POSIX separators).
    line / col:
        1-based line and 0-based column of the offending node.
    message:
        What is wrong and how to fix it.
    source_line:
        The stripped text of the offending line (used for fingerprints
        and the text reporter).
    end_line:
        Last physical line of the flagged statement (0 means unknown;
        falls back to ``line``).  Pragma suppression honours a
        ``# repro: allow-...`` comment on *any* line of the span.
    related:
        Secondary locations (definition and use sites) for
        cross-module findings; file-local rules leave this empty.
    """

    rule: str
    slug: str
    path: str
    line: int
    col: int
    message: str
    source_line: str = ""
    end_line: int = 0
    related: tuple[Related, ...] = ()

    @property
    def last_line(self) -> int:
        """End of the flagged statement's physical span."""
        return max(self.line, self.end_line)

    def fingerprint(self, occurrence: int = 0) -> str:
        """Stable identity for baselining.

        Hashes the rule, path and *line text* (not the line number), so
        findings keep their identity when unrelated edits shift the file.
        ``occurrence`` disambiguates identical lines within one file.
        """
        key = f"{self.rule}:{self.path}:{self.source_line}:{occurrence}"
        return hashlib.sha256(key.encode()).hexdigest()[:16]

    def location(self) -> str:
        return f"{self.path}:{self.line}:{self.col}"


@dataclass
class LintResult:
    """Outcome of one engine run over a set of paths."""

    findings: list[Finding] = field(default_factory=list)
    checked_files: int = 0
    suppressed: int = 0
    baselined: int = 0
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 clean, 1 findings, 2 unparseable input."""
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0

    def counts_by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))
