"""Per-line pragma suppression: ``# repro: allow-<slug>``.

A finding is suppressed when its line carries a pragma comment naming
the rule's slug (``# repro: allow-float-eq``) or its id
(``# repro: allow-REP004``).  Several rules can be allowed on one line,
comma-separated: ``# repro: allow-float-eq, allow-global-rng``.

Pragmas are extracted with :mod:`tokenize`, so strings that merely look
like comments never suppress anything.
"""

from __future__ import annotations

import io
import re
import tokenize

_PRAGMA = re.compile(r"#\s*repro:\s*(?P<body>.+)$")
_ALLOW = re.compile(r"allow-(?P<what>[A-Za-z0-9_-]+)")


def collect_pragmas(source: str) -> dict[int, frozenset[str]]:
    """Map line number -> lower-cased slugs/ids allowed on that line.

    Malformed Python still yields the pragmas of every tokenizable
    prefix; tokenize errors are swallowed because the parser reports
    the syntax error separately.
    """
    allowed: dict[int, set[str]] = {}
    reader = io.StringIO(source).readline
    try:
        for token in tokenize.generate_tokens(reader):
            if token.type != tokenize.COMMENT:
                continue
            match = _PRAGMA.search(token.string)
            if match is None:
                continue
            names = {m.group("what").lower()
                     for m in _ALLOW.finditer(match.group("body"))}
            if names:
                allowed.setdefault(token.start[0], set()).update(names)
    except tokenize.TokenError:
        pass
    return {line: frozenset(names) for line, names in allowed.items()}


def is_suppressed(pragmas: dict[int, frozenset[str]], line: int,
                  rule_id: str, slug: str, end_line: int = 0) -> bool:
    """True when the statement span allows ``rule_id`` (by id or slug).

    ``end_line`` extends the check over every physical line of a
    multi-line statement, so a pragma on the closing line of a wrapped
    call suppresses the finding raised at its first line.
    """
    wanted = {rule_id.lower(), slug.lower()}
    for candidate in range(line, max(line, end_line) + 1):
        names = pragmas.get(candidate)
        if names and wanted & names:
            return True
    return False
