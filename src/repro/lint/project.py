"""The collect pass: a whole-program model for cross-module rules.

File rules see one AST at a time; the project-aware rules (REP007-009)
need facts that span files and methods: which attribute is written from
which method, under which lock, what a class's ``__init__`` (and the
helpers it calls) establishes, which names a module imports under which
alias.  This module builds that model in a single pass over the parsed
trees -- the :class:`ProjectModel` -- so every check-pass rule is pure
"model in, findings out" and pays no extra parsing cost.

The walk is deliberately *lightweight* inter-procedural: within one
class, ``self.helper()`` calls are resolved by name and closed over
transitively (``reachable``); across modules only import aliasing is
resolved, not data flow.  That is exactly enough for the three
contracts the rules enforce, and keeps the collect pass linear in the
tree size.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePosixPath

from repro.lint.config import ProjectConfig

__all__ = [
    "AttrAccess",
    "ClassInfo",
    "MethodInfo",
    "ModuleInfo",
    "ProjectModel",
    "SelfCall",
    "module_name",
]


@dataclass(frozen=True)
class AttrAccess:
    """One ``self.<attr>`` touch inside a method body.

    ``write`` covers rebinds (``self.a = ...``), augmented assignment,
    subscript stores/deletes (``self.a[k] = v``), attribute deletion
    and calls of unambiguous container mutators (``self.a.append(x)``).
    ``held`` is the set of ``self.<name>`` context managers lexically
    entered around the access (``with self._lock:``); nested function
    bodies reset it to empty -- a closure defined under a lock does not
    run under it.
    """

    attr: str
    line: int
    col: int
    write: bool
    held: frozenset[str] = frozenset()


@dataclass(frozen=True)
class SelfCall:
    """One ``self.<method>()`` call site with its lock context."""

    name: str
    line: int
    held: frozenset[str] = frozenset()


@dataclass
class MethodInfo:
    """Symbol-table entry for one method (or property)."""

    name: str
    node: ast.FunctionDef | ast.AsyncFunctionDef
    lineno: int
    is_property: bool = False
    is_static: bool = False
    accesses: list[AttrAccess] = field(default_factory=list)
    self_calls: set[str] = field(default_factory=set)
    call_sites: list[SelfCall] = field(default_factory=list)

    def reads(self) -> set[str]:
        return {a.attr for a in self.accesses if not a.write}

    def writes(self) -> set[str]:
        return {a.attr for a in self.accesses if a.write}

    def touched(self) -> set[str]:
        return {a.attr for a in self.accesses}


@dataclass
class ClassInfo:
    """Per-class symbol table (see module docstring)."""

    name: str
    qualname: str
    module: str
    path: str
    node: ast.ClassDef
    lineno: int
    methods: dict[str, MethodInfo] = field(default_factory=dict)
    #: simple class-body assignments, name -> value expression.
    class_consts: dict[str, ast.expr] = field(default_factory=dict)
    #: annotated class-body fields in declaration order (dataclass
    #: fields when the class is a dataclass), name -> line.
    annotated_fields: dict[str, int] = field(default_factory=dict)
    #: resolved decorator dotted names (``dataclasses.dataclass``...).
    decorators: tuple[str, ...] = ()
    #: attributes assigned in ``__init__`` or helpers it (transitively)
    #: calls, name -> line of the first assignment.
    init_attrs: dict[str, int] = field(default_factory=dict)
    #: attributes initialised from a LOCK_FACTORIES constructor.
    lock_attrs: dict[str, int] = field(default_factory=dict)
    #: attributes initialised from a THREADSAFE_FACTORIES constructor.
    threadsafe_attrs: set[str] = field(default_factory=set)

    @property
    def is_dataclass(self) -> bool:
        return any(d == "dataclasses.dataclass" or d.endswith(".dataclass")
                   or d == "dataclass" for d in self.decorators)

    def reachable(self, *roots: str) -> set[str]:
        """Method names transitively self-called from ``roots``
        (roots included when they exist on the class)."""
        seen: set[str] = set()
        stack = [r for r in roots if r in self.methods]
        while stack:
            name = stack.pop()
            if name in seen:
                continue
            seen.add(name)
            stack.extend(c for c in self.methods[name].self_calls
                         if c in self.methods and c not in seen)
        return seen

    def accesses_in(self, method_names: set[str]) -> list[AttrAccess]:
        out: list[AttrAccess] = []
        for name in method_names:
            info = self.methods.get(name)
            if info is not None:
                out.extend(info.accesses)
        return out

    def const_string_set(self, const: str) -> set[str] | None:
        """Literal string elements of class constant ``const`` when it
        is a set/frozenset/tuple/list of strings, else ``None``."""
        node = self.class_consts.get(const)
        return _string_set(node) if node is not None else None


@dataclass
class ModuleInfo:
    """One parsed module plus its alias table and classes."""

    path: str
    name: str
    tree: ast.Module
    source_lines: list[str]
    #: local alias -> canonical dotted path (relative imports resolved
    #: against the module's own package).
    imports: dict[str, str] = field(default_factory=dict)
    #: qualname ("Outer" / "Outer.Inner") -> class table.
    classes: dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level simple assignments, name -> value expression.
    module_consts: dict[str, ast.expr] = field(default_factory=dict)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.source_lines):
            return self.source_lines[line - 1].strip()
        return ""

    def const_string_set(self, const: str) -> set[str] | None:
        node = self.module_consts.get(const)
        return _string_set(node) if node is not None else None

    def const_line(self, const: str) -> int | None:
        node = self.module_consts.get(const)
        return getattr(node, "lineno", None) if node is not None else None

    def resolve(self, dotted: str) -> str:
        """Canonicalise a possibly-aliased dotted name used in this
        module (``np.random.normal`` -> ``numpy.random.normal``)."""
        head, _, rest = dotted.partition(".")
        base = self.imports.get(head)
        if base is None:
            return dotted
        return f"{base}.{rest}" if rest else base


class ProjectModel:
    """Cross-module facts shared by all project-aware rules."""

    def __init__(self, config: ProjectConfig):
        self.config = config
        self.modules: dict[str, ModuleInfo] = {}
        self._by_path: dict[str, str] = {}

    # -- construction --------------------------------------------------
    def add_module(self, path: str, source: str,
                   tree: ast.Module | None = None,
                   name: str | None = None) -> ModuleInfo:
        """Collect one module into the model (parses when no ``tree``)."""
        posix = PurePosixPath(path).as_posix()
        if tree is None:
            tree = ast.parse(source, filename=posix)
        modname = (self._unique_name(posix) if name is None else name)
        info = _collect_module(posix, modname, source, tree, self.config)
        self.modules[modname] = info
        self._by_path[posix] = modname
        return info

    def _unique_name(self, posix: str) -> str:
        """Module name for ``posix``, disambiguated on collision.

        :func:`module_name` truncates dotted names to their last four
        components, so two files in different directories can map to
        the same name (similarly named test modules are the classic
        case); keying both under one name would silently drop the
        earlier file's classes from project-rule checking.  On
        collision with a *different* path, fall back to the full
        untruncated dotted name, then to the whole path spelled as a
        dotted name (always unique per path).  Re-adding the same path
        keeps its name, so re-collection overwrites in place.
        """
        for candidate in (module_name(posix),
                          module_name(posix, full=True),
                          _path_as_dotted(posix)):
            existing = self.modules.get(candidate)
            if existing is None or existing.path == posix:
                return candidate
        return _path_as_dotted(posix)  # pragma: no cover - unreachable

    @classmethod
    def from_sources(cls, sources: dict[str, str],
                     config: ProjectConfig | None = None,
                     paths: dict[str, str] | None = None
                     ) -> "ProjectModel":
        """Build a model from ``{module name: source}`` (tests).

        ``paths`` optionally maps module names to virtual file paths;
        the default places modules under ``src/`` following the dotted
        name, which keeps them inside the library-tree rule scopes.
        """
        model = cls(config or ProjectConfig())
        for modname, source in sources.items():
            path = (paths or {}).get(
                modname, "src/" + modname.replace(".", "/") + ".py")
            model.add_module(path, source, name=modname)
        return model

    # -- queries -------------------------------------------------------
    def module_for_path(self, path: str) -> ModuleInfo | None:
        modname = self._by_path.get(PurePosixPath(path).as_posix())
        return self.modules.get(modname) if modname else None

    def import_graph(self) -> dict[str, set[str]]:
        """Module -> imported modules, restricted to modules in the
        model (external imports are dropped)."""
        known = set(self.modules)
        graph: dict[str, set[str]] = {}
        for modname, info in self.modules.items():
            deps = set()
            for target in info.imports.values():
                parts = target.split(".")
                for cut in range(len(parts), 0, -1):
                    candidate = ".".join(parts[:cut])
                    if candidate in known and candidate != modname:
                        deps.add(candidate)
                        break
            graph[modname] = deps
        return graph

    def find_class(self, dotted: str) -> ClassInfo | None:
        """Look up ``package.module.QualName`` in the model."""
        for cut in range(dotted.count(".") + 1):
            module, _, qual = _rsplit_n(dotted, cut + 1)
            if not qual:
                continue
            info = self.modules.get(module)
            if info is not None and qual in info.classes:
                return info.classes[qual]
        return None

    def iter_classes(self):
        for info in self.modules.values():
            yield from info.classes.values()


# ---------------------------------------------------------------------
# module naming
# ---------------------------------------------------------------------
def module_name(path: str, *, full: bool = False) -> str:
    """Dotted module name for ``path``.

    On-disk files are resolved against their package structure (walk up
    while ``__init__.py`` exists); virtual paths fall back to stripping
    everything up to a ``src`` component and keeping the last four
    components (``full=True`` keeps them all -- the collision
    fallback used by :meth:`ProjectModel._unique_name`).
    """
    posix = PurePosixPath(path)
    concrete = Path(path)
    if concrete.is_file():
        parts = [] if concrete.stem == "__init__" else [concrete.stem]
        directory = concrete.resolve().parent
        while (directory / "__init__.py").is_file():
            parts.insert(0, directory.name)
            parent = directory.parent
            if parent == directory:
                break
            directory = parent
        if parts:
            return ".".join(parts)
    parts = list(posix.parts)
    if parts and parts[-1].endswith(".py"):
        parts[-1] = parts[-1][:-3]
    if parts and parts[-1] == "__init__":
        parts.pop()
    if "src" in parts:
        parts = parts[parts.index("src") + 1:]
    parts = [p for p in parts if p not in ("/", "")]
    if not parts:
        return posix.stem
    return ".".join(parts if full else parts[-4:])


def _path_as_dotted(posix: str) -> str:
    """The whole path spelled as a dotted name -- the last-resort
    module key, unique per path."""
    trimmed = posix[:-3] if posix.endswith(".py") else posix
    return ".".join(p for p in PurePosixPath(trimmed).parts
                    if p not in ("/", ""))


def _rsplit_n(dotted: str, n: int) -> tuple[str, str, str]:
    """Split ``dotted`` so the tail holds ``n`` components."""
    parts = dotted.split(".")
    if n >= len(parts):
        return "", "", dotted
    return ".".join(parts[:-n]), ".", ".".join(parts[-n:])


def _string_set(node: ast.expr) -> set[str] | None:
    """Literal string elements of a set/frozenset/tuple/list node."""
    if isinstance(node, ast.Call) and not node.keywords \
            and isinstance(node.func, ast.Name) \
            and node.func.id in ("frozenset", "set", "tuple", "list"):
        if not node.args:
            return set()
        node = node.args[0]
    if isinstance(node, (ast.Set, ast.Tuple, ast.List)):
        elements = node.elts
    else:
        return None
    out = set()
    for element in elements:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        out.add(element.value)
    return out


# ---------------------------------------------------------------------
# collection
# ---------------------------------------------------------------------
def _collect_module(path: str, modname: str, source: str,
                    tree: ast.Module, config: ProjectConfig) -> ModuleInfo:
    info = ModuleInfo(path=path, name=modname, tree=tree,
                      source_lines=source.splitlines())
    info.imports = _alias_table(tree, modname, path)
    for node in tree.body:
        if isinstance(node, ast.Assign) and len(node.targets) == 1 \
                and isinstance(node.targets[0], ast.Name):
            info.module_consts[node.targets[0].id] = node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None \
                and isinstance(node.target, ast.Name):
            info.module_consts[node.target.id] = node.value
    for node in tree.body:
        if isinstance(node, ast.ClassDef):
            _collect_class(node, info, config)
    return info


def _alias_table(tree: ast.Module, modname: str,
                 path: str) -> dict[str, str]:
    """Local alias -> canonical dotted path, relative imports resolved
    against the module's own package."""
    is_package = PurePosixPath(path).name == "__init__.py"
    package_parts = modname.split(".") if is_package \
        else modname.split(".")[:-1]
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.asname:
                    table[alias.asname] = alias.name
                else:
                    table[alias.name.split(".")[0]] = \
                        alias.name.split(".")[0]
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                base = node.module or ""
            else:
                anchor = package_parts[:len(package_parts)
                                       - (node.level - 1)]
                base = ".".join(anchor + ([node.module]
                                          if node.module else []))
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{base}.{alias.name}" if base \
                    else alias.name
    return table


def _collect_class(node: ast.ClassDef, info: ModuleInfo,
                   config: ProjectConfig,
                   prefix: str = "") -> None:
    qualname = f"{prefix}{node.name}"
    cls = ClassInfo(name=node.name, qualname=qualname, module=info.name,
                    path=info.path, node=node, lineno=node.lineno,
                    decorators=tuple(
                        _dotted(d, info) for d in node.decorator_list))
    for child in node.body:
        if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
            cls.methods[child.name] = _collect_method(child, info, config)
        elif isinstance(child, ast.Assign) and len(child.targets) == 1 \
                and isinstance(child.targets[0], ast.Name):
            cls.class_consts[child.targets[0].id] = child.value
        elif isinstance(child, ast.AnnAssign) \
                and isinstance(child.target, ast.Name):
            annotation = ast.unparse(child.annotation) \
                if child.annotation is not None else ""
            if "ClassVar" in annotation:
                if child.value is not None:
                    cls.class_consts[child.target.id] = child.value
            else:
                cls.annotated_fields[child.target.id] = child.lineno
        elif isinstance(child, ast.ClassDef):
            _collect_class(child, info, config, prefix=f"{qualname}.")
    _fill_init_attrs(cls, info, config)
    info.classes[qualname] = cls


def _dotted(node: ast.expr, info: ModuleInfo) -> str:
    """Dotted, alias-resolved name of a decorator/base expression."""
    if isinstance(node, ast.Call):
        node = node.func
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
    parts.reverse()
    return info.resolve(".".join(parts)) if parts else ""


def _fill_init_attrs(cls: ClassInfo, info: ModuleInfo,
                     config: ProjectConfig) -> None:
    init_methods = cls.reachable("__init__")
    for name in init_methods:
        for access in cls.methods[name].accesses:
            if access.write and access.attr not in cls.init_attrs:
                cls.init_attrs[access.attr] = access.line
    init = cls.methods.get("__init__")
    if init is None:
        return
    for method_name in init_methods:
        for stmt in ast.walk(cls.methods[method_name].node):
            if not isinstance(stmt, ast.Assign):
                continue
            for target in stmt.targets:
                if not (isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"):
                    continue
                if not isinstance(stmt.value, ast.Call):
                    continue
                ctor = _dotted(stmt.value.func, info)
                if ctor in config.lock_factories:
                    cls.lock_attrs.setdefault(target.attr, stmt.lineno)
                elif ctor in config.threadsafe_factories:
                    cls.threadsafe_attrs.add(target.attr)


def _collect_method(node: ast.FunctionDef | ast.AsyncFunctionDef,
                    info: ModuleInfo,
                    config: ProjectConfig) -> MethodInfo:
    decorators = {_dotted(d, info) for d in node.decorator_list}
    short = {d.rpartition(".")[2] for d in decorators}
    is_static = "staticmethod" in short or "classmethod" in short
    method = MethodInfo(name=node.name, node=node, lineno=node.lineno,
                        is_property="property" in short
                        or "cached_property" in short,
                        is_static=is_static)
    self_name = None
    if not is_static and node.args.args:
        self_name = node.args.args[0].arg
    if self_name is not None:
        _scan_body(node.body, self_name, frozenset(), method, config)
    return method


def _scan_body(stmts: list[ast.stmt], self_name: str,
               held: frozenset[str], method: MethodInfo,
               config: ProjectConfig) -> None:
    for stmt in stmts:
        _scan_stmt(stmt, self_name, held, method, config)


def _scan_stmt(stmt: ast.stmt, self_name: str, held: frozenset[str],
               method: MethodInfo, config: ProjectConfig) -> None:
    if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
        # A closure defined here runs later: not under our locks.
        _scan_body(stmt.body, self_name, frozenset(), method, config)
        return
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        acquired = set()
        for item in stmt.items:
            expr = item.context_expr
            _scan_expr(expr, self_name, held, method, config)
            if isinstance(expr, ast.Attribute) \
                    and isinstance(expr.value, ast.Name) \
                    and expr.value.id == self_name:
                acquired.add(expr.attr)
            if item.optional_vars is not None:
                _scan_expr(item.optional_vars, self_name, held, method,
                           config, store=True)
        _scan_body(stmt.body, self_name, held | acquired, method, config)
        return
    if isinstance(stmt, ast.Assign):
        _scan_expr(stmt.value, self_name, held, method, config)
        for target in stmt.targets:
            _scan_expr(target, self_name, held, method, config,
                       store=True)
        return
    if isinstance(stmt, ast.AugAssign):
        _scan_expr(stmt.value, self_name, held, method, config)
        _scan_expr(stmt.target, self_name, held, method, config,
                   store=True, also_read=True)
        return
    if isinstance(stmt, ast.AnnAssign):
        if stmt.value is not None:
            _scan_expr(stmt.value, self_name, held, method, config)
        _scan_expr(stmt.target, self_name, held, method, config,
                   store=True)
        return
    if isinstance(stmt, ast.Delete):
        for target in stmt.targets:
            _scan_expr(target, self_name, held, method, config,
                       store=True)
        return
    # Generic statement: scan child expressions, recurse into child
    # statement bodies with the same held set.
    for field_name, value in ast.iter_fields(stmt):
        if isinstance(value, list):
            for item in value:
                if isinstance(item, ast.stmt):
                    _scan_stmt(item, self_name, held, method, config)
                elif isinstance(item, ast.expr):
                    _scan_expr(item, self_name, held, method, config)
                elif isinstance(item, ast.excepthandler):
                    _scan_body(item.body, self_name, held, method, config)
        elif isinstance(value, ast.expr):
            _scan_expr(value, self_name, held, method, config)


def _scan_expr(expr: ast.expr, self_name: str, held: frozenset[str],
               method: MethodInfo, config: ProjectConfig,
               store: bool = False, also_read: bool = False) -> None:
    if isinstance(expr, ast.Attribute) \
            and isinstance(expr.value, ast.Name) \
            and expr.value.id == self_name:
        method.accesses.append(AttrAccess(
            attr=expr.attr, line=expr.lineno, col=expr.col_offset,
            write=store, held=held))
        if also_read and store:
            method.accesses.append(AttrAccess(
                attr=expr.attr, line=expr.lineno, col=expr.col_offset,
                write=False, held=held))
        return
    if isinstance(expr, (ast.Subscript,)) and store:
        # self.a[k] = v / del self.a[k]: a write to the container.
        _scan_expr(expr.value, self_name, held, method, config,
                   store=True, also_read=False)
        _scan_expr(expr.slice, self_name, held, method, config)
        return
    if isinstance(expr, ast.Call):
        func = expr.func
        if isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Name) \
                and func.value.id == self_name:
            # self.method(...) -- an intra-class call, not a state read.
            method.self_calls.add(func.attr)
            method.call_sites.append(SelfCall(
                name=func.attr, line=func.lineno, held=held))
        elif isinstance(func, ast.Attribute) \
                and isinstance(func.value, ast.Attribute) \
                and isinstance(func.value.value, ast.Name) \
                and func.value.value.id == self_name \
                and func.attr in config.mutator_methods:
            # self.attr.append(...) -- a write to attr.
            method.accesses.append(AttrAccess(
                attr=func.value.attr, line=func.value.lineno,
                col=func.value.col_offset, write=True, held=held))
        else:
            _scan_expr(func, self_name, held, method, config)
        for arg in expr.args:
            _scan_expr(arg, self_name, held, method, config)
        for kw in expr.keywords:
            _scan_expr(kw.value, self_name, held, method, config)
        return
    if isinstance(expr, (ast.Lambda,)):
        # Lambda bodies run later; treat as unlocked context.
        _scan_expr(expr.body, self_name, frozenset(), method, config)
        return
    for child in ast.iter_child_nodes(expr):
        if isinstance(child, ast.expr):
            _scan_expr(child, self_name, held, method, config,
                       store=store and isinstance(expr, (ast.Tuple,
                                                         ast.List,
                                                         ast.Starred)))
        elif isinstance(child, ast.comprehension):
            # Comprehensions evaluate eagerly in the enclosing frame:
            # `[x.f() for x in self._trace]` reads self._trace here,
            # under whatever locks are currently held.
            _scan_expr(child.iter, self_name, held, method, config)
            for cond in child.ifs:
                _scan_expr(cond, self_name, held, method, config)
            _scan_expr(child.target, self_name, held, method, config,
                       store=True)
