"""The check pass: cross-module rules REP007-REP009.

Each rule here is pure "model in, findings out": the engine builds one
:class:`~repro.lint.project.ProjectModel` per run (the collect pass)
and hands it to :meth:`~repro.lint.rules.ProjectRule.check_project`.
The rules enforce the three conventions PRs 3-6 left to review:

* REP007 -- shared state in the threaded daemon is touched under its
  lock (a static race detector);
* REP008 -- every checkpointable class's mutable state rides its
  snapshot payload (or is explicitly excluded), so resume stays
  bit-identical;
* REP009 -- every spec/config dataclass field feeding a result
  fingerprint is classified identity-bearing or excluded, so the
  result cache can never serve a cached answer for a different
  problem.

docs/DEVELOPMENT.md documents the heuristics and escape hatches.
"""

from __future__ import annotations

from typing import Iterator

from repro.lint.config import FingerprintContract
from repro.lint.findings import Finding, Related
from repro.lint.project import ClassInfo, MethodInfo, ProjectModel
from repro.lint.rules import ProjectRule, register

#: dunder names whose entry context is the caller's thread but which a
#: lock-discipline check cannot usefully constrain (hash/eq run inside
#: container internals that may themselves hold the lock).
_NEUTRAL_DUNDERS = frozenset({"__repr__", "__str__", "__del__"})


def _make_finding(rule: ProjectRule, model: ProjectModel, path: str,
                  line: int, col: int, message: str,
                  related: tuple[Related, ...] = ()) -> Finding:
    module = model.module_for_path(path)
    return Finding(
        rule=rule.id, slug=rule.slug, path=path, line=line, col=col,
        message=message,
        source_line=module.line_text(line) if module else "",
        end_line=line, related=related)


@register
class LockDisciplineRule(ProjectRule):
    """REP007: lock-guarded attributes are always accessed locked.

    Heuristic: a class that builds a lock in ``__init__`` and writes an
    attribute under ``with self.<lock>:`` in any non-init method has
    declared that attribute lock-guarded -- every other read or write
    of it outside ``__init__`` must also hold the lock (or carry a
    ``# repro: allow-unlocked`` pragma with a rationale).  Private
    helpers that are only ever *called* with the lock held inherit the
    callers' lock context (fixed point over the intra-class call
    graph), so ``_evict``-style internals don't need pragmas.
    Thread-safe primitives (Events, Queues) and the locks themselves
    are exempt by construction.
    """

    id = "REP007"
    slug = "unlocked"
    title = "lock-guarded attribute accessed without its lock"
    rationale = ("an attribute written under a lock anywhere is shared "
                 "state; one unlocked read elsewhere is a data race "
                 "that ships at fleet scale")

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        for cls in model.iter_classes():
            if not self.applies_to(cls.path):
                continue
            if cls.lock_attrs:
                yield from self._check_class(model, cls)

    def _check_class(self, model: ProjectModel,
                     cls: ClassInfo) -> Iterator[Finding]:
        locks = set(cls.lock_attrs)
        exempt_attrs = locks | cls.threadsafe_attrs
        init_methods = cls.reachable("__init__")
        entry_held = self._entry_held(cls, locks, init_methods)

        # Pass 1: which attributes are written under a lock anywhere
        # outside __init__?  Those are the declared-guarded set.
        guarded: dict[str, tuple[str, int]] = {}
        for name, method in cls.methods.items():
            if name in init_methods:
                continue
            for access in method.accesses:
                held = access.held | entry_held.get(name, frozenset())
                if access.write and held & locks \
                        and access.attr not in exempt_attrs:
                    guarded.setdefault(access.attr, (name, access.line))
        if not guarded:
            return

        lock_attr, lock_line = next(iter(cls.lock_attrs.items()))
        for name, method in sorted(cls.methods.items()):
            if name in init_methods or name in _NEUTRAL_DUNDERS:
                continue
            for access in method.accesses:
                if access.attr not in guarded:
                    continue
                held = access.held | entry_held.get(name, frozenset())
                if held & locks:
                    continue
                decl_method, decl_line = guarded[access.attr]
                kind = "written" if access.write else "read"
                yield _make_finding(
                    self, model, cls.path, access.line, access.col,
                    f"'{cls.qualname}.{access.attr}' is lock-guarded "
                    f"(written under 'with self.{lock_attr}:' in "
                    f"{decl_method}()) but {kind} here in {name}() "
                    f"without the lock; wrap the access in "
                    f"'with self.{lock_attr}:' or annotate the line "
                    f"with '# repro: allow-unlocked' and a rationale",
                    related=(
                        Related(cls.path, lock_line,
                                f"lock 'self.{lock_attr}' defined here"),
                        Related(cls.path, decl_line,
                                f"locked write in {decl_method}() "
                                "declares the attribute guarded"),
                    ))

    @staticmethod
    def _entry_held(cls: ClassInfo, locks: set[str],
                    init_methods: set[str]) -> dict[str, frozenset[str]]:
        """Locks provably held on entry to each private helper.

        A ``_private`` method whose every intra-class call site holds
        lock L runs under L; public methods and properties are thread
        entry points and start with nothing held.  Iterated to a fixed
        point so helpers called from helpers resolve too.
        """
        candidates = {
            name for name, method in cls.methods.items()
            if name.startswith("_") and not name.startswith("__")
            and not method.is_property and name not in init_methods}
        entry: dict[str, frozenset[str]] = {
            name: frozenset(locks) for name in candidates}
        changed = True
        while changed:
            changed = False
            for name in candidates:
                sites = [
                    site.held | entry.get(caller, frozenset())
                    for caller, method in cls.methods.items()
                    if caller not in init_methods
                    for site in method.call_sites if site.name == name]
                held = (frozenset.intersection(*sites) if sites
                        else frozenset())
                if held != entry[name]:
                    entry[name] = held
                    changed = True
        return entry


@register
class SnapshotCompletenessRule(ProjectRule):
    """REP008: mutable estimator state must ride the snapshot payload.

    A class pairing a snapshot method (``state_snapshot`` or ``state``)
    with ``restore_state`` is checkpointable.  Its *required* state is
    every ``__init__``-established attribute mutated after
    construction, plus every attribute ``restore_state`` itself
    touches.  Each required attribute must be *covered* -- read
    somewhere in the snapshot method or its helpers, i.e. present in
    the payload -- or listed in the class's ``_SNAPSHOT_EXCLUDED``
    allowlist (derived state rebuilt on restore).  Deleting a key from
    the payload, or adding mutable state without snapshotting it, is a
    lint failure instead of a silent resume drift.
    """

    id = "REP008"
    slug = "unsnapshotted"
    title = "mutable state missing from the snapshot payload"
    rationale = ("state that does not ride encode_state makes a "
                 "resumed run drift from the bit-identical contract "
                 "without any test failing")

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        config = model.config
        for cls in model.iter_classes():
            if not self.applies_to(cls.path):
                continue
            snap_name = next((name for name in config.snapshot_methods
                              if name in cls.methods), None)
            restore = cls.methods.get(config.restore_method)
            if snap_name is None or restore is None:
                continue
            yield from self._check_class(model, cls, snap_name, restore)

    def _check_class(self, model: ProjectModel, cls: ClassInfo,
                     snap_name: str,
                     restore: MethodInfo) -> Iterator[Finding]:
        config = model.config
        snap_closure = cls.reachable(snap_name)
        exempt_methods = (cls.reachable("__init__") | snap_closure
                          | {config.restore_method, "__getstate__",
                             "__setstate__"})
        never_state = (set(cls.lock_attrs) | cls.threadsafe_attrs
                       | set(cls.class_consts))

        required: dict[str, int] = {}
        for access in restore.accesses:
            if access.attr in cls.init_attrs \
                    and access.attr not in never_state:
                required.setdefault(access.attr, access.line)
        for name, method in sorted(cls.methods.items()):
            if name in exempt_methods:
                continue
            for access in method.accesses:
                if access.write and access.attr in cls.init_attrs \
                        and access.attr not in never_state:
                    required.setdefault(access.attr, access.line)

        covered = {access.attr
                   for access in cls.accesses_in(snap_closure)}
        excluded = cls.const_string_set(
            config.snapshot_excluded_const) or set()
        snap_line = cls.methods[snap_name].lineno
        for attr in sorted(set(required) - covered - excluded):
            line = cls.init_attrs.get(attr, required[attr])
            yield _make_finding(
                self, model, cls.path, line, 0,
                f"mutable attribute '{cls.qualname}.{attr}' never "
                f"appears in the {snap_name}() payload: a resumed run "
                f"will silently drift; snapshot it, or list it in "
                f"{config.snapshot_excluded_const} if it is derived "
                f"state rebuilt on restore",
                related=(
                    Related(cls.path, snap_line,
                            f"snapshot payload built in {snap_name}()"),
                    Related(cls.path, restore.lineno,
                            f"restored in {config.restore_method}()"),
                ))
        for attr in sorted(excluded & covered):
            yield _make_finding(
                self, model, cls.path, cls.lineno, 0,
                f"'{cls.qualname}.{attr}' is listed in "
                f"{config.snapshot_excluded_const} but the "
                f"{snap_name}() payload reads it; drop the stale "
                f"exclusion",
                related=(Related(cls.path, snap_line,
                                 f"read in {snap_name}()"),))


@register
class FingerprintDriftRule(ProjectRule):
    """REP009: every fingerprint-feeding dataclass field is classified.

    The contract table in :mod:`repro.lint.config` declares, for each
    dataclass whose fields feed ``fingerprint()`` /
    ``solve_fingerprint()``, which fields are identity-bearing and
    which are excluded.  The rule fires when a field exists in code but
    not in the table (the moment someone adds one), when the table
    names a field the code no longer has, and when a declared
    exclusion constant (``_NONRESULT_FIELDS``) drifts from the
    table's exclusion set.  This is the static form of the
    discrimination matrix ``tests/service/test_fingerprints.py``
    probes dynamically.
    """

    id = "REP009"
    slug = "fingerprint-drift"
    title = "fingerprint contract drift"
    rationale = ("an unclassified spec field either silently skips the "
                 "fingerprint (cached results served for the wrong "
                 "problem) or silently joins it (cache invalidated for "
                 "result-neutral knobs); both must be deliberate")

    def check_project(self, model: ProjectModel) -> Iterator[Finding]:
        for contract in model.config.fingerprint_contracts:
            cls = model.find_class(contract.cls)
            if cls is None or not self.applies_to(cls.path):
                continue
            yield from self._check_contract(model, contract, cls)

    def _check_contract(self, model: ProjectModel,
                        contract: FingerprintContract,
                        cls: ClassInfo) -> Iterator[Finding]:
        fields = cls.annotated_fields
        classified = contract.identity | contract.excluded
        contract_note = Related(
            "src/repro/lint/config.py", 1,
            f"fingerprint contract for {contract.cls}")
        for name in sorted(set(fields) - classified):
            yield _make_finding(
                self, model, cls.path, fields[name], 0,
                f"field '{contract.class_name}.{name}' is not "
                f"classified in the fingerprint contract: declare it "
                f"identity-bearing (changes the result) or excluded "
                f"(provably result-neutral) in "
                f"repro.lint.config.FINGERPRINT_CONTRACTS",
                related=(contract_note,))
        for name in sorted(classified - set(fields)):
            yield _make_finding(
                self, model, cls.path, cls.lineno, 0,
                f"fingerprint contract for {contract.class_name} "
                f"names field '{name}' which no longer exists; prune "
                f"the contract",
                related=(contract_note,))
        yield from self._check_exclusion_constant(model, contract, cls)

    def _check_exclusion_constant(
            self, model: ProjectModel, contract: FingerprintContract,
            cls: ClassInfo) -> Iterator[Finding]:
        const = contract.exclusion_constant
        if const is None:
            return
        module = model.modules.get(cls.module)
        literal = cls.const_string_set(const)
        line = cls.lineno
        if literal is None and module is not None:
            literal = module.const_string_set(const)
            line = module.const_line(const) or line
        if literal is None:
            yield _make_finding(
                self, model, cls.path, line, 0,
                f"exclusion constant '{const}' declared in the "
                f"fingerprint contract for {contract.class_name} was "
                f"not found as a literal set of field names in "
                f"{cls.module}",
                related=(Related("src/repro/lint/config.py", 1,
                                 "contract declares the constant"),))
        elif literal != set(contract.excluded):
            drift = sorted(literal ^ contract.excluded)
            yield _make_finding(
                self, model, cls.path, line, 0,
                f"'{const}' and the fingerprint contract for "
                f"{contract.class_name} disagree on: {', '.join(drift)}"
                f"; code and contract must list the same excluded "
                f"fields",
                related=(Related("src/repro/lint/config.py", 1,
                                 "contract exclusion set"),))
