"""Text, JSON, SARIF and GitHub-annotation rendering of lint results.

All four reporters consume the same :class:`LintResult`, so their
finding counts agree by construction; the CI job uploads the SARIF
form as an artifact and emits the GitHub form as workflow commands so
findings annotate PR diffs inline.
"""

from __future__ import annotations

import json
from typing import Sequence

from repro.lint.baseline import assign_fingerprints
from repro.lint.findings import Finding, LintResult

REPORT_VERSION = 2

SARIF_VERSION = "2.1.0"
_SARIF_SCHEMA = ("https://raw.githubusercontent.com/oasis-tcs/"
                 "sarif-spec/master/Schemata/sarif-schema-2.1.0.json")


def render_text(result: LintResult) -> str:
    """Compiler-style ``path:line:col: RULE [slug] message`` lines."""
    lines = []
    for finding in result.findings:
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"[{finding.slug}] {finding.message}")
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
        for rel in finding.related:
            lines.append(f"    see {rel.path}:{rel.line}: {rel.note}")
    for path, error in result.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    lines.append(_summary(result))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable shape, versioned)."""
    fingerprints = assign_fingerprints(result.findings)
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            _json_finding(f, fp)
            for f, fp in zip(result.findings, fingerprints)
        ],
        "summary": {
            "checked_files": result.checked_files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "by_rule": result.counts_by_rule(),
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in result.parse_errors
            ],
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)


def _json_finding(finding: Finding, fingerprint: str) -> dict:
    entry: dict = {
        "rule": finding.rule,
        "slug": finding.slug,
        "path": finding.path,
        "line": finding.line,
        "end_line": finding.last_line,
        "col": finding.col,
        "message": finding.message,
        "source_line": finding.source_line,
        "fingerprint": fingerprint,
    }
    if finding.related:
        entry["related"] = [
            {"path": rel.path, "line": rel.line, "note": rel.note}
            for rel in finding.related]
    return entry


def render_sarif(result: LintResult, rules: Sequence | None = None
                 ) -> str:
    """SARIF 2.1.0 report (one run, the REP rule set as the driver).

    ``rules`` optionally supplies the rule instances used for the run
    so the driver metadata carries titles and rationale; findings for
    rules not in the list still render (minimal metadata).
    """
    by_id = {rule.id: rule for rule in (rules or [])}
    rule_ids = sorted({f.rule for f in result.findings} | set(by_id))
    index = {rule_id: i for i, rule_id in enumerate(rule_ids)}
    driver_rules: list[dict] = []
    for rule_id in rule_ids:
        rule = by_id.get(rule_id)
        meta: dict = {"id": rule_id}
        if rule is not None:
            meta["name"] = rule.slug
            meta["shortDescription"] = {"text": rule.title}
            meta["fullDescription"] = {"text": rule.rationale}
        driver_rules.append(meta)
    results: list[dict] = []
    for finding in result.findings:
        entry: dict = {
            "ruleId": finding.rule,
            "ruleIndex": index[finding.rule],
            "level": "error",
            "message": {"text": f"[{finding.slug}] {finding.message}"},
            "locations": [_sarif_location(
                finding.path, finding.line, finding.col + 1,
                finding.last_line)],
        }
        if finding.related:
            entry["relatedLocations"] = [
                dict(_sarif_location(rel.path, rel.line, 1, rel.line),
                     message={"text": rel.note})
                for rel in finding.related]
        results.append(entry)
    for path, error in result.parse_errors:
        results.append({
            "ruleId": "parse-error",
            "level": "error",
            "message": {"text": error},
            "locations": [_sarif_location(path, 1, 1, 1)],
        })
    payload = {
        "$schema": _SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {"driver": {
                "name": "repro.lint",
                "informationUri":
                    "docs/DEVELOPMENT.md",
                "rules": driver_rules,
            }},
            "results": results,
        }],
    }
    return json.dumps(payload, indent=2)


def _sarif_location(path: str, line: int, col: int,
                    end_line: int) -> dict:
    return {"physicalLocation": {
        "artifactLocation": {"uri": path},
        "region": {"startLine": line, "startColumn": max(col, 1),
                   "endLine": max(end_line, line)},
    }}


def render_github(result: LintResult) -> str:
    """GitHub Actions workflow commands (``::error file=...``).

    Emitted to stdout inside a workflow run, these annotate the PR
    diff at each finding's exact location.  Newlines in messages are
    ``%0A``-escaped per the workflow-command grammar.
    """
    lines = []
    for finding in result.findings:
        message = finding.message
        for rel in finding.related:
            message += f" (see {rel.path}:{rel.line}: {rel.note})"
        lines.append(
            f"::error file={finding.path},line={finding.line},"
            f"endLine={finding.last_line},col={finding.col + 1},"
            f"title={finding.rule} [{finding.slug}]::"
            + _escape_command(message))
    for path, error in result.parse_errors:
        lines.append(f"::error file={path},line=1,title=parse error::"
                     + _escape_command(error))
    lines.append(_summary(result))
    return "\n".join(lines)


def _escape_command(text: str) -> str:
    return (text.replace("%", "%25").replace("\r", "%0D")
            .replace("\n", "%0A"))


def _summary(result: LintResult) -> str:
    bits = [f"{len(result.findings)} finding(s) in "
            f"{result.checked_files} file(s)"]
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed by pragma")
    if result.baselined:
        bits.append(f"{result.baselined} baselined")
    if result.parse_errors:
        bits.append(f"{len(result.parse_errors)} parse error(s)")
    return ", ".join(bits)
