"""Text and JSON rendering of lint results."""

from __future__ import annotations

import json

from repro.lint.baseline import assign_fingerprints
from repro.lint.findings import LintResult

REPORT_VERSION = 1


def render_text(result: LintResult) -> str:
    """Compiler-style ``path:line:col: RULE [slug] message`` lines."""
    lines = []
    for finding in result.findings:
        lines.append(f"{finding.location()}: {finding.rule} "
                     f"[{finding.slug}] {finding.message}")
        if finding.source_line:
            lines.append(f"    {finding.source_line}")
    for path, error in result.parse_errors:
        lines.append(f"{path}: parse error: {error}")
    lines.append(_summary(result))
    return "\n".join(lines)


def render_json(result: LintResult) -> str:
    """Machine-readable report (stable shape, versioned)."""
    fingerprints = assign_fingerprints(result.findings)
    payload = {
        "version": REPORT_VERSION,
        "findings": [
            {
                "rule": f.rule,
                "slug": f.slug,
                "path": f.path,
                "line": f.line,
                "col": f.col,
                "message": f.message,
                "source_line": f.source_line,
                "fingerprint": fp,
            }
            for f, fp in zip(result.findings, fingerprints)
        ],
        "summary": {
            "checked_files": result.checked_files,
            "findings": len(result.findings),
            "suppressed": result.suppressed,
            "baselined": result.baselined,
            "by_rule": result.counts_by_rule(),
            "parse_errors": [
                {"path": path, "error": error}
                for path, error in result.parse_errors
            ],
        },
        "exit_code": result.exit_code,
    }
    return json.dumps(payload, indent=2)


def _summary(result: LintResult) -> str:
    bits = [f"{len(result.findings)} finding(s) in "
            f"{result.checked_files} file(s)"]
    if result.suppressed:
        bits.append(f"{result.suppressed} suppressed by pragma")
    if result.baselined:
        bits.append(f"{result.baselined} baselined")
    if result.parse_errors:
        bits.append(f"{len(result.parse_errors)} parse error(s)")
    return ", ".join(bits)
