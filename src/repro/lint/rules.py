"""The REP rule set: determinism and process-safety checks.

Every rule is a small, self-contained AST pass.  Rules are *pluggable*:
subclass :class:`Rule`, decorate with :func:`register`, and the engine
picks the rule up automatically.  Rules never look at raw text -- pragma
suppression and baselining happen in the engine, so a rule only has to
emit every violation it sees.

Why these rules exist (the one-paragraph version; docs/DEVELOPMENT.md
has the full rationale): the ECRIPSE estimator's eq. 16-19 failure
probabilities are extreme statistics -- a single stray draw from the
global NumPy RNG, a wall-clock read inside a task, or a lambda that
silently demotes the process backend to serial changes results or
performance without any test failing loudly.  The linter turns those
conventions into hard errors.
"""

from __future__ import annotations

import ast
from fnmatch import fnmatch
from pathlib import PurePosixPath
from typing import Iterator

from repro.lint.config import scope_for
from repro.lint.findings import Finding, Related

#: legacy global-state entry points of ``numpy.random``.
_NP_LEGACY = frozenset({
    "beta", "binomial", "bytes", "chisquare", "choice", "dirichlet",
    "exponential", "f", "gamma", "geometric", "get_state", "gumbel",
    "hypergeometric", "laplace", "logistic", "lognormal", "logseries",
    "multinomial", "multivariate_normal", "negative_binomial",
    "noncentral_chisquare", "noncentral_f", "normal", "pareto",
    "permutation", "poisson", "power", "rand", "randint", "randn",
    "random", "random_integers", "random_sample", "ranf", "rayleigh",
    "sample", "seed", "set_state", "shuffle", "standard_cauchy",
    "standard_exponential", "standard_gamma", "standard_normal",
    "standard_t", "triangular", "uniform", "vonmises", "wald",
    "weibull", "zipf", "RandomState",
})

#: wall-clock / entropy call targets (canonical dotted names).
_IMPURE_CALLS = frozenset({
    "time.time", "time.time_ns",
    "datetime.datetime.now", "datetime.datetime.utcnow",
    "datetime.datetime.today", "datetime.date.today",
    "os.urandom", "uuid.uuid1", "uuid.uuid4",
})

#: executor methods whose task callable must survive pickling.
_EXECUTOR_METHODS = frozenset({"map_chunks", "map_tasks", "iter_tasks"})

RULES: list["Rule"] = []


def register(cls: type["Rule"]) -> type["Rule"]:
    """Class decorator adding a rule to the default rule set."""
    RULES.append(cls())
    return cls


def default_rules() -> list["Rule"]:
    """Fresh copy of the registered rule set (engine-mutable)."""
    return list(RULES)


class Rule:
    """One static check.

    Subclasses set ``id``/``slug``/``title``/``rationale`` and implement
    :meth:`check`.  Scoping is declarative: ``applies_to`` consults the
    scope table in :mod:`repro.lint.config` (one place for every
    rule's path globs and their rationale); rules without a table entry
    run everywhere, and the legacy class-level ``include``/``exclude``
    attributes remain as a fallback for ad-hoc rule instances.
    """

    id: str = "REP000"
    slug: str = "base"
    title: str = ""
    rationale: str = ""
    include: tuple[str, ...] = ("*",)
    exclude: tuple[str, ...] = ()

    def applies_to(self, path: str) -> bool:
        scope = scope_for(self.id)
        include = scope.include if scope is not None else self.include
        exclude = scope.exclude if scope is not None else self.exclude
        posix = PurePosixPath(path).as_posix()
        if any(fnmatch(posix, pattern) for pattern in exclude):
            return False
        return any(fnmatch(posix, pattern) for pattern in include)

    def check(self, tree: ast.AST,
              ctx: "FileContext") -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: "FileContext", node: ast.AST,
                message: str,
                related: tuple[Related, ...] = ()) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id, slug=self.slug, path=ctx.path, line=line,
            col=getattr(node, "col_offset", 0), message=message,
            source_line=ctx.line_text(line),
            end_line=getattr(node, "end_lineno", None) or line,
            related=related)


class ProjectRule(Rule):
    """A cross-module check over the whole-program model.

    Project rules skip the per-file pass (:meth:`check` yields nothing)
    and instead implement :meth:`check_project` against the
    :class:`~repro.lint.project.ProjectModel` the engine builds after
    every file is parsed.  ``applies_to`` still scopes them: the engine
    feeds every file into the model, and the rule filters the classes
    it judges by their defining file's path.
    """

    def check(self, tree: ast.AST,
              ctx: "FileContext") -> Iterator[Finding]:
        return iter(())

    def check_project(self, model) -> Iterator[Finding]:
        raise NotImplementedError


class FileContext:
    """Per-file facts shared by all rules: source lines, import table."""

    def __init__(self, path: str, source: str, tree: ast.AST):
        self.path = PurePosixPath(path).as_posix()
        self.lines = source.splitlines()
        self.imports = _import_table(tree)

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""

    def resolve_call(self, node: ast.Call) -> str | None:
        """Canonical dotted name of the call target, if resolvable.

        ``np.random.normal(...)`` -> ``"numpy.random.normal"`` under
        ``import numpy as np``; unresolvable targets return ``None``.
        """
        return self.resolve_name(node.func)

    def resolve_name(self, node: ast.AST) -> str | None:
        parts: list[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        base = self.imports.get(node.id)
        if base is None:
            return None
        parts.append(base)
        return ".".join(reversed(parts))


def _import_table(tree: ast.AST) -> dict[str, str]:
    """Local alias -> canonical dotted module/object path."""
    table: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                name = alias.asname or alias.name.split(".")[0]
                table[name] = alias.name if alias.asname else name
        elif isinstance(node, ast.ImportFrom) and node.module \
                and node.level == 0:
            for alias in node.names:
                if alias.name == "*":
                    continue
                local = alias.asname or alias.name
                table[local] = f"{node.module}.{alias.name}"
    return table


def _contains_none(node: ast.AST) -> bool:
    return any(isinstance(sub, ast.Constant) and sub.value is None
               for sub in ast.walk(node))


@register
class GlobalRngRule(Rule):
    """REP001: randomness must arrive as a ``numpy.random.Generator``.

    Flags legacy global-state draws (``np.random.normal``, stdlib
    ``random.*``) and unseeded ``default_rng()`` -- each one breaks the
    fixed-seed bit-reproducibility the runtime guarantees.
    """

    id = "REP001"
    slug = "global-rng"
    title = "global-state or unseeded RNG"
    rationale = ("all randomness must flow through an explicitly seeded "
                 "numpy.random.Generator passed as an argument (spawn "
                 "children with repro.rng.spawn)")

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call(node)
            if name is None:
                continue
            if name.startswith("numpy.random."):
                leaf = name.removeprefix("numpy.random.")
                if leaf in _NP_LEGACY:
                    yield self.finding(
                        ctx, node,
                        f"legacy global-state RNG call np.random.{leaf}; "
                        "pass a numpy.random.Generator argument instead")
                elif leaf == "default_rng" and self._unseeded(node):
                    yield self.finding(
                        ctx, node,
                        "default_rng() without a deterministic seed; "
                        "seed it explicitly or accept a Generator "
                        "argument (repro.rng.as_generator)")
            elif name == "random" or name.startswith("random."):
                yield self.finding(
                    ctx, node,
                    f"stdlib random call {name}; use a seeded "
                    "numpy.random.Generator instead")

    @staticmethod
    def _unseeded(node: ast.Call) -> bool:
        if node.keywords:
            return any(kw.arg in (None, "seed")
                       and _contains_none(kw.value)
                       for kw in node.keywords)
        if not node.args:
            return True
        return _contains_none(node.args[0])


@register
class WallClockRule(Rule):
    """REP002: no wall-clock or OS-entropy reads in deterministic code.

    ``time.perf_counter``/``monotonic`` stay legal: they feed telemetry
    only and never influence results.
    """

    id = "REP002"
    slug = "wall-clock"
    title = "wall-clock/entropy call in deterministic code"
    rationale = ("estimator outputs must be pure functions of "
                 "(inputs, seed); wall-clock and OS entropy make runs "
                 "unrepeatable")
    # scope (deterministic packages, two sanctioned wall-clock files)
    # lives in the declarative table: repro/lint/config.py RULE_SCOPES.

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.Call):
                continue
            name = ctx.resolve_call(node)
            if name is None:
                continue
            if name in _IMPURE_CALLS or name.startswith("secrets."):
                yield self.finding(
                    ctx, node,
                    f"non-deterministic call {name}; results must depend "
                    "only on inputs and the seed (perf_counter is fine "
                    "for telemetry)")


@register
class ExecutorPicklingRule(Rule):
    """REP003: task callables handed to the Executor must pickle.

    A lambda or locally-defined function silently breaks the process
    backend (every chunk falls back to the parent process), so parallel
    runs degrade to serial without failing a single test.
    """

    id = "REP003"
    slug = "exec-lambda"
    title = "unpicklable callable passed to Executor"
    rationale = ("the process backend pickles the task callable; "
                 "lambdas/closures demote the whole run to the serial "
                 "fallback")

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(tree, ctx, local_defs=[])

    def _walk(self, node: ast.AST, ctx: FileContext,
              local_defs: list[set[str]]) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if local_defs:
                    local_defs[-1].add(child.name)
                yield from self._walk(child, ctx,
                                      local_defs + [self._bound(child)])
                continue
            if isinstance(child, ast.Lambda):
                yield from self._walk(child, ctx,
                                      local_defs + [set()])
                continue
            if isinstance(child, ast.Call):
                yield from self._check_call(child, ctx, local_defs)
            yield from self._walk(child, ctx, local_defs)

    @staticmethod
    def _bound(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
        names: set[str] = set()
        for node in ast.walk(func):
            if isinstance(node, ast.Assign) \
                    and isinstance(node.value, ast.Lambda):
                names.update(t.id for t in node.targets
                             if isinstance(t, ast.Name))
        return names

    def _check_call(self, call: ast.Call, ctx: FileContext,
                    local_defs: list[set[str]]) -> Iterator[Finding]:
        func = call.func
        if not (isinstance(func, ast.Attribute)
                and func.attr in _EXECUTOR_METHODS and call.args):
            return
        task = call.args[0]
        if isinstance(task, ast.Lambda):
            yield self.finding(
                ctx, task,
                f"lambda passed to Executor.{func.attr}; the process "
                "backend cannot pickle it -- use a module-level function")
        elif isinstance(task, ast.Name) \
                and any(task.id in scope for scope in local_defs):
            yield self.finding(
                ctx, task,
                f"locally-defined function {task.id!r} passed to "
                f"Executor.{func.attr}; the process backend cannot "
                "pickle it -- move it to module level")


@register
class FloatEqualityRule(Rule):
    """REP004: no ``==``/``!=`` against float literals.

    Exact float comparison is almost always a tolerance bug in numeric
    code.  Comparisons inside ``assert`` statements are exempt: an
    exact-value assertion *is* the bit-reproducibility check (use
    ``pytest.approx``/``np.isclose`` when a tolerance is intended).
    """

    id = "REP004"
    slug = "float-eq"
    title = "float equality without explicit tolerance"
    rationale = ("compare floats with an explicit tolerance "
                 "(np.isclose/math.isclose) or justify exactness with "
                 "a pragma")

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        yield from self._walk(tree, ctx)

    def _walk(self, node: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.Assert):
                continue
            if isinstance(child, ast.Compare):
                yield from self._check_compare(child, ctx)
            yield from self._walk(child, ctx)

    def _check_compare(self, node: ast.Compare,
                       ctx: FileContext) -> Iterator[Finding]:
        operands = [node.left, *node.comparators]
        for op, left, right in zip(node.ops, operands, operands[1:]):
            if not isinstance(op, (ast.Eq, ast.NotEq)):
                continue
            literal = next(
                (operand for operand in (left, right)
                 if isinstance(operand, ast.Constant)
                 and isinstance(operand.value, float)), None)
            if literal is not None:
                yield self.finding(
                    ctx, node,
                    f"float equality against {literal.value!r}; use an "
                    "explicit tolerance (np.isclose) or justify with "
                    "'# repro: allow-float-eq'")


@register
class MutableDefaultRule(Rule):
    """REP005: no mutable default arguments."""

    id = "REP005"
    slug = "mutable-default"
    title = "mutable default argument"
    rationale = ("a mutable default is created once and shared across "
                 "calls -- state leaks between estimator runs")

    _FACTORY_NAMES = frozenset({"list", "dict", "set", "bytearray"})

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef,
                                     ast.Lambda)):
                continue
            defaults = [*node.args.defaults,
                        *(d for d in node.args.kw_defaults
                          if d is not None)]
            for default in defaults:
                if self._is_mutable(default):
                    yield self.finding(
                        ctx, default,
                        "mutable default argument; default to None and "
                        "create the object inside the function")

    def _is_mutable(self, node: ast.AST) -> bool:
        if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp,
                             ast.DictComp, ast.SetComp)):
            return True
        return (isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in self._FACTORY_NAMES)


@register
class BroadExceptRule(Rule):
    """REP006: no ``except Exception`` / bare ``except``.

    The runtime retry layer (``repro/runtime/executor.py``) is exempt:
    catching everything is its job -- any chunk failure must be retried
    or demoted to the serial fallback, never swallowed silently
    elsewhere.
    """

    id = "REP006"
    slug = "broad-except"
    title = "overbroad exception handler"
    rationale = ("broad handlers hide real failures; outside the "
                 "runtime retry layer, catch the narrowest exception "
                 "that the code can actually handle")
    # the executor exemption lives in config.RULE_SCOPES.

    def check(self, tree: ast.AST, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(tree):
            if not isinstance(node, ast.ExceptHandler):
                continue
            if node.type is None:
                yield self.finding(
                    ctx, node,
                    "bare 'except:'; catch a concrete exception type")
            else:
                for name in self._names(node.type):
                    if name in ("Exception", "BaseException"):
                        yield self.finding(
                            ctx, node,
                            f"'except {name}' outside the runtime retry "
                            "layer; catch the narrowest type the code "
                            "can handle")
                        break

    @staticmethod
    def _names(node: ast.AST) -> list[str]:
        if isinstance(node, ast.Name):
            return [node.id]
        if isinstance(node, ast.Tuple):
            return [e.id for e in node.elts if isinstance(e, ast.Name)]
        return []


# The cross-module rules (REP007-REP009) live in their own module but
# register into the same default rule set; importing here guarantees
# registration wherever default_rules() is used.
from repro.lint import project_rules as _project_rules  # noqa: E402,F401
