"""Minimal, dependency-free machine-learning stack for the classifier.

The paper's classifier is a *linear* SVM over an explicit degree-4
polynomial feature map (Sections II-C and III-B).  scikit-learn is not a
dependency of this package; the pieces are implemented here:

* :mod:`repro.ml.features` -- polynomial feature expansion;
* :mod:`repro.ml.scaler` -- feature standardisation;
* :mod:`repro.ml.svm` -- L2-regularised hinge-loss SVM trained by dual
  coordinate descent (LIBLINEAR-style), warm-startable for the paper's
  incremental training;
* :mod:`repro.ml.blockade` -- the simulation-skipping wrapper: classify
  cheaply, simulate only inside an uncertainty band near the hyperplane.
"""

from __future__ import annotations

from repro.ml.features import PolynomialFeatures
from repro.ml.scaler import StandardScaler
from repro.ml.svm import LinearSvm
from repro.ml.blockade import ClassifierBlockade

__all__ = [
    "PolynomialFeatures",
    "StandardScaler",
    "LinearSvm",
    "ClassifierBlockade",
]
