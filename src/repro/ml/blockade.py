"""The classifier "blockade": skip simulations outside an uncertainty band.

This wraps the polynomial-feature linear SVM into the role it plays in the
paper (Section III-B):

* **rough mode** (stage 1, particle weights): classify *everything* that is
  not in the training subset -- misclassifications only perturb the
  alternative distribution, not the estimate;
* **banded mode** (stage 2, importance sampling): trust the classifier only
  outside an uncertainty band around the hyperplane; points inside the band
  are simulated, and those labels are fed back via :meth:`update` to
  incrementally retrain (warm-started L-BFGS on the squared hinge).

The band half-width is maintained as a quantile of the |decision-function|
values seen at training time, so it adapts as the classifier sharpens.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ClassifierError
from repro.ml.features import PolynomialFeatures
from repro.ml.scaler import StandardScaler
from repro.ml.svm import LinearSvm
from repro.rng import as_generator, rng_from_state, rng_state


@dataclass
class BlockadePrediction:
    """Classifier verdicts for a batch.

    Attributes
    ----------
    labels:
        Boolean failure predictions (True = fail).
    uncertain:
        Mask of points inside the uncertainty band (should be simulated).
    decision:
        Raw decision-function values (positive = fail).
    """

    labels: np.ndarray
    uncertain: np.ndarray
    decision: np.ndarray


class ClassifierBlockade:
    """Degree-``degree`` polynomial SVM with an uncertainty band.

    Parameters
    ----------
    dim:
        Input dimensionality (6 for the SRAM cell).
    degree:
        Polynomial degree; the paper uses 4.
    band_quantile:
        Fraction of training points whose |decision| defines the band
        half-width; 0 disables the band (trust everything).
    c:
        SVM cost parameter.
    retrain_trigger:
        Incremental updates re-run the solver once at least this many new
        labelled samples have accumulated since the last train.
    """

    def __init__(self, dim: int, degree: int = 4, band_quantile: float = 0.1,
                 c: float = 10.0, retrain_trigger: int = 200,
                 max_training_samples: int = 20_000, seed=0):
        if not 0.0 <= band_quantile < 1.0:
            raise ValueError(
                f"band_quantile must lie in [0, 1), got {band_quantile}")
        if retrain_trigger < 1:
            raise ValueError("retrain_trigger must be >= 1")
        if max_training_samples < 10:
            raise ValueError("max_training_samples must be >= 10")
        self.features = PolynomialFeatures(dim=dim, degree=degree)
        self.scaler = StandardScaler()
        self.svm = LinearSvm(c=c, seed=seed)
        self.band_quantile = band_quantile
        self.retrain_trigger = retrain_trigger
        self.max_training_samples = max_training_samples
        self._subsample_rng = as_generator(seed)
        self.band_halfwidth = 0.0
        self._x_train: np.ndarray | None = None
        self._y_train: np.ndarray | None = None
        self._pending = 0
        #: number of times the underlying SVM has been (re)trained.
        self.train_count = 0
        # Trust envelope (see predict): polynomial features extrapolate
        # violently, so predictions are only trusted at radii the training
        # set has covered.
        self._fail_norm_min = np.inf
        self._train_norm_max = 0.0

    @property
    def is_trained(self) -> bool:
        return self.svm.is_fitted

    @property
    def n_training_samples(self) -> int:
        return 0 if self._x_train is None else self._x_train.shape[0]

    @property
    def has_both_classes(self) -> bool:
        """Whether the accumulated training set contains both classes.

        ``False`` means every label seen so far is on one side, so
        :meth:`update` cannot (re)fit yet -- the condition the health
        layer's classifier-blockade monitor watches for.
        """
        return (self._y_train is not None
                and np.unique(self._y_train).size >= 2)

    # ------------------------------------------------------------------
    def train(self, x: np.ndarray, fails: np.ndarray) -> None:
        """(Re)train from scratch on points ``x`` (B, dim) with boolean
        failure labels ``fails``."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        fails = np.asarray(fails, dtype=bool)
        if fails.shape != (x.shape[0],):
            raise ClassifierError(
                f"labels shape {fails.shape} does not match {x.shape[0]} "
                "samples")
        self._x_train = x.copy()
        self._y_train = np.where(fails, 1.0, -1.0)
        self._pending = 0
        self._refit(warm_start=False)

    def update(self, x: np.ndarray, fails: np.ndarray,
               force_retrain: bool = False) -> None:
        """Append newly simulated samples; retrain lazily.

        Labels are accumulated immediately but the (comparatively costly)
        solver re-run happens only every ``retrain_trigger`` samples (or
        immediately with ``force_retrain``), with a warm start from the
        previous solution.
        """
        if self._x_train is None:
            self.train(x, fails)
            return
        x = np.atleast_2d(np.asarray(x, dtype=float))
        fails = np.asarray(fails, dtype=bool)
        if fails.shape != (x.shape[0],):
            raise ClassifierError(
                f"labels shape {fails.shape} does not match {x.shape[0]} "
                "samples")
        if x.size == 0:
            return
        self._x_train = np.vstack([self._x_train, x])
        self._y_train = np.concatenate(
            [self._y_train, np.where(fails, 1.0, -1.0)])
        self._pending += x.shape[0]
        self._enforce_capacity()
        # Retrain cost grows with the accumulated set, so the effective
        # trigger scales with it: late in a long run the classifier is
        # already good and refreshing it less often loses nothing.
        trigger = max(self.retrain_trigger, self.n_training_samples // 10)
        if force_retrain or self._pending >= trigger:
            self._refit(warm_start=not force_retrain)
            self._pending = 0

    def _enforce_capacity(self) -> None:
        """Random-subsample the training set down to the configured cap.

        Both classes are kept in proportion; without a cap the periodic
        refits would slow down linearly over a long stage-2 run.
        """
        n = self.n_training_samples
        if n <= self.max_training_samples:
            return
        keep = self._subsample_rng.choice(n, size=self.max_training_samples,
                                          replace=False)
        keep.sort()
        self._x_train = self._x_train[keep]
        self._y_train = self._y_train[keep]

    def _refit(self, warm_start: bool) -> None:
        if np.unique(self._y_train).size < 2:
            # Keep the previous model (if any) until both classes exist.
            return
        phi = self.features.transform(self._x_train)
        if warm_start and self.scaler.is_fitted:
            # Keep the existing scaling so the previous solution.stays
            # meaningful, then refit with the enlarged set.
            phi_scaled = self.scaler.transform(phi)
            self.svm.fit(phi_scaled, self._y_train, warm_start=True)
        else:
            phi_scaled = self.scaler.fit_transform(phi)
            self.svm.fit(phi_scaled, self._y_train, warm_start=False)
        self.train_count += 1
        decision = self.svm.decision_function(phi_scaled)
        if self.band_quantile > 0.0:
            base = float(np.quantile(np.abs(decision), self.band_quantile))
            # Widen the band to cover where the classifier is *observed* to
            # err: take a high quantile of |decision| over misclassified
            # training points, so residual errors concentrate inside the
            # simulated band instead of biasing the estimate.
            mistakes = (decision >= 0.0) != (self._y_train > 0.0)
            cover = 0.0
            if np.any(mistakes):
                cover = float(np.quantile(np.abs(decision[mistakes]), 0.95))
            self.band_halfwidth = max(base, cover)
        else:
            self.band_halfwidth = 0.0
        norms = np.linalg.norm(self._x_train, axis=1)
        fail_norms = norms[self._y_train > 0]
        self._fail_norm_min = (float(fail_norms.min()) if fail_norms.size
                               else np.inf)
        self._train_norm_max = float(norms.max())

    # ------------------------------------------------------------------
    def predict(self, x: np.ndarray) -> BlockadePrediction:
        """Classify points ``x`` (B, dim).

        Predictions are only trusted inside the radius envelope the
        training set has covered; polynomial features extrapolate
        violently, so

        * points well inside the smallest failing training radius are
          auto-passed (the failure region cannot reach them while the
          margin varies continuously);
        * points beyond the largest training radius are flagged uncertain
          and should be simulated.
        """
        if not self.is_trained:
            raise ClassifierError("blockade used before training")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        phi = self.scaler.transform(self.features.transform(x))
        decision = self.svm.decision_function(phi)
        labels = decision >= 0.0
        uncertain = np.abs(decision) < self.band_halfwidth

        norms = np.linalg.norm(x, axis=1)
        core = norms < 0.8 * self._fail_norm_min
        labels[core] = False
        uncertain[core] = False
        beyond = norms > 1.05 * self._train_norm_max
        uncertain[beyond] = True
        return BlockadePrediction(labels=labels, uncertain=uncertain,
                                  decision=decision)

    def state(self) -> dict:
        """Checkpoint snapshot: training set, model, band, trust radii.

        Non-finite trust radii (the pristine ``inf`` sentinel) are
        stored as ``None`` because the checkpoint codec forbids
        non-finite floats.
        """
        return {
            "dim": self.features.dim,
            "degree": self.features.degree,
            "x_train": (None if self._x_train is None
                        else self._x_train.copy()),
            "y_train": (None if self._y_train is None
                        else self._y_train.copy()),
            "pending": self._pending,
            "train_count": self.train_count,
            "band_halfwidth": self.band_halfwidth,
            "fail_norm_min": (None if not np.isfinite(self._fail_norm_min)
                              else float(self._fail_norm_min)),
            "train_norm_max": float(self._train_norm_max),
            "subsample_rng": rng_state(self._subsample_rng),
            "scaler": self.scaler.state(),
            "svm": self.svm.state(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot bit-exactly.

        The snapshot must come from a blockade over the same feature
        space (``dim``/``degree``); anything else is a configuration
        mismatch and raises :class:`ClassifierError`.
        """
        if (int(state["dim"]) != self.features.dim
                or int(state["degree"]) != self.features.degree):
            raise ClassifierError(
                f"snapshot is for a degree-{state['degree']} blockade "
                f"over {state['dim']} inputs; this one is degree-"
                f"{self.features.degree} over {self.features.dim}")

        def _arr(value):
            return None if value is None else np.asarray(value,
                                                         dtype=float)

        self._x_train = _arr(state["x_train"])
        self._y_train = _arr(state["y_train"])
        self._pending = int(state["pending"])
        self.train_count = int(state["train_count"])
        self.band_halfwidth = float(state["band_halfwidth"])
        fail_norm_min = state["fail_norm_min"]
        self._fail_norm_min = (np.inf if fail_norm_min is None
                               else float(fail_norm_min))
        self._train_norm_max = float(state["train_norm_max"])
        self._subsample_rng = rng_from_state(state["subsample_rng"])
        self.scaler.restore_state(state["scaler"])
        self.svm.restore_state(state["svm"])

    def training_accuracy(self) -> float:
        """Fraction of the accumulated training set currently classified
        correctly (diagnostic)."""
        if not self.is_trained or self._x_train is None:
            raise ClassifierError("blockade used before training")
        phi = self.scaler.transform(self.features.transform(self._x_train))
        predicted = self.svm.decision_function(phi) >= 0.0
        return float(np.mean(predicted == (self._y_train > 0)))
