"""Explicit polynomial feature map.

For input dimension D and degree P the map contains every monomial
``x1^a1 * ... * xD^aD`` with ``0 <= a1+...+aD <= P`` -- the transform the
paper describes ("if the input vector is [x1, x2] and the degree ... is two
then the feature vector is [1, x1, x2, x1x2, x1^2, x2^2]"), including the
constant term so the linear SVM needs no separate bias.

The expansion is computed degree-by-degree from the previous degree's
monomials, vectorised over the sample batch.
"""

from __future__ import annotations

from itertools import combinations_with_replacement

import numpy as np


class PolynomialFeatures:
    """Degree-``degree`` polynomial expansion of D-dimensional inputs.

    >>> pf = PolynomialFeatures(dim=2, degree=2)
    >>> pf.n_features
    6
    >>> pf.transform([[2.0, 3.0]]).tolist()
    [[1.0, 2.0, 3.0, 4.0, 6.0, 9.0]]
    """

    def __init__(self, dim: int, degree: int):
        if dim < 1:
            raise ValueError(f"dim must be >= 1, got {dim}")
        if degree < 1:
            raise ValueError(f"degree must be >= 1, got {degree}")
        self.dim = dim
        self.degree = degree
        #: exponent tuples, one per output feature, ordered by total degree
        #: then lexicographically; the first entry is the constant term.
        self.exponents: list[tuple[int, ...]] = []
        for total in range(degree + 1):
            for combo in combinations_with_replacement(range(dim), total):
                exps = [0] * dim
                for index in combo:
                    exps[index] += 1
                self.exponents.append(tuple(exps))
        self.n_features = len(self.exponents)
        # Build per-feature recurrence: feature k (degree t) = feature
        # parent[k] (degree t-1) * x[:, var[k]].  This turns the transform
        # into n_features vectorised multiplies instead of computing every
        # power from scratch.
        self._parent = np.zeros(self.n_features, dtype=np.intp)
        self._var = np.zeros(self.n_features, dtype=np.intp)
        index_of = {e: i for i, e in enumerate(self.exponents)}
        for k, exps in enumerate(self.exponents):
            if sum(exps) == 0:
                continue
            last_var = max(i for i, e in enumerate(exps) if e > 0)
            reduced = list(exps)
            reduced[last_var] -= 1
            self._parent[k] = index_of[tuple(reduced)]
            self._var[k] = last_var

    # ------------------------------------------------------------------
    def transform(self, x) -> np.ndarray:
        """Expand inputs ``x`` of shape (B, dim) to (B, n_features)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.dim:
            raise ValueError(
                f"expected inputs of dimension {self.dim}, got {x.shape[1]}")
        out = np.empty((x.shape[0], self.n_features))
        out[:, 0] = 1.0
        for k in range(1, self.n_features):
            out[:, k] = out[:, self._parent[k]] * x[:, self._var[k]]
        return out

    def feature_names(self, names: tuple[str, ...] | None = None) -> list[str]:
        """Human-readable monomial names, e.g. ``x0^2*x1``."""
        if names is None:
            names = tuple(f"x{i}" for i in range(self.dim))
        if len(names) != self.dim:
            raise ValueError(f"{len(names)} names for dim {self.dim}")
        labels = []
        for exps in self.exponents:
            parts = [f"{names[i]}" + (f"^{e}" if e > 1 else "")
                     for i, e in enumerate(exps) if e > 0]
            labels.append("*".join(parts) if parts else "1")
        return labels

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"PolynomialFeatures(dim={self.dim}, degree={self.degree}, "
                f"n_features={self.n_features})")
