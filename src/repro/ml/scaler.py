"""Feature standardisation (zero mean, unit variance).

Polynomial features of modest-norm inputs span several orders of magnitude
(``x^4`` vs ``1``); the dual coordinate-descent SVM converges poorly on
such raw features, so the blockade standardises them first.  Supports
incremental refitting via accumulated sufficient statistics so the scaler
stays consistent when the training set grows (the paper's incremental
training in stage 2).
"""

from __future__ import annotations

import numpy as np

from repro.errors import ClassifierError


class StandardScaler:
    """Column-wise standardiser with running sufficient statistics."""

    def __init__(self):
        self._count = 0
        self._sum: np.ndarray | None = None
        self._sum_sq: np.ndarray | None = None
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    @property
    def is_fitted(self) -> bool:
        return self.mean_ is not None

    # ------------------------------------------------------------------
    def partial_fit(self, x) -> "StandardScaler":
        """Accumulate statistics from a new batch and refresh the scaling."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if self._sum is None:
            self._sum = np.zeros(x.shape[1])
            self._sum_sq = np.zeros(x.shape[1])
        elif x.shape[1] != self._sum.size:
            raise ClassifierError(
                f"feature count changed: {self._sum.size} -> {x.shape[1]}")
        self._count += x.shape[0]
        self._sum += x.sum(axis=0)
        self._sum_sq += np.square(x).sum(axis=0)

        mean = self._sum / self._count
        var = self._sum_sq / self._count - np.square(mean)
        var = np.maximum(var, 0.0)
        scale = np.sqrt(var)
        # Constant columns pass through completely untouched (no centring,
        # no scaling).  Centring them would zero out the polynomial bias
        # feature and rob the SVM of its intercept -- the separating
        # surface would be forced through the feature centroid.
        constant = scale <= 1e-12
        self.mean_ = np.where(constant, 0.0, mean)
        self.scale_ = np.where(constant, 1.0, scale)
        return self

    def fit(self, x) -> "StandardScaler":
        """Fit from scratch on ``x`` (resets accumulated statistics)."""
        self._count = 0
        self._sum = None
        self._sum_sq = None
        self.mean_ = None
        self.scale_ = None
        return self.partial_fit(x)

    # ------------------------------------------------------------------
    def transform(self, x) -> np.ndarray:
        if not self.is_fitted:
            raise ClassifierError("scaler used before fitting")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.mean_.size:
            raise ClassifierError(
                f"expected {self.mean_.size} features, got {x.shape[1]}")
        return (x - self.mean_) / self.scale_

    def fit_transform(self, x) -> np.ndarray:
        return self.fit(x).transform(x)

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpoint snapshot of the sufficient statistics."""
        return {
            "count": self._count,
            "sum": None if self._sum is None else self._sum.copy(),
            "sum_sq": (None if self._sum_sq is None
                       else self._sum_sq.copy()),
            "mean": None if self.mean_ is None else self.mean_.copy(),
            "scale": None if self.scale_ is None else self.scale_.copy(),
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot bit-exactly."""

        def _arr(value):
            return None if value is None else np.asarray(value,
                                                         dtype=float)

        self._count = int(state["count"])
        self._sum = _arr(state["sum"])
        self._sum_sq = _arr(state["sum_sq"])
        self.mean_ = _arr(state["mean"])
        self.scale_ = _arr(state["scale"])
