"""Linear support vector machine (L2-regularised squared hinge).

Solves

.. math::

    \\min_w \\; \\tfrac12 \\|w\\|^2 + \\sum_i C_i \\max(0, 1 - y_i w^T x_i)^2

-- the "L2-loss" primal formulation that LIBLINEAR also offers.  The
objective is once-differentiable and convex, so a vectorised L-BFGS solve
converges in a few dozen iterations regardless of sample count; that keeps
classifier (re)training negligible next to transistor-level simulation,
which is the accounting the paper relies on.

No intercept term is kept: callers include a constant feature (the
polynomial map in :mod:`repro.ml.features` does).

Two properties matter for this package:

* **per-sample costs** ``C_i`` -- failure samples are rare, so the blockade
  up-weights the minority class;
* **warm starting** -- :meth:`LinearSvm.fit` can start from the previous
  weight vector, making the paper's incremental stage-2 training cheap.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.errors import ClassifierError


class LinearSvm:
    """L2-regularised squared-hinge linear SVM.

    Parameters
    ----------
    c:
        Base misclassification cost (per-sample costs are ``c`` times the
        class weight).
    max_iterations:
        L-BFGS iteration cap.
    tolerance:
        L-BFGS gradient tolerance.
    class_weight:
        ``"balanced"`` scales each class inversely to its frequency;
        ``None`` uses uniform costs; a ``{label: weight}`` dict sets them
        explicitly (labels are -1/+1).
    seed:
        Unused (kept for interface stability with stochastic solvers).
    """

    def __init__(self, c: float = 1.0, max_iterations: int = 200,
                 tolerance: float = 1e-7, class_weight="balanced", seed=0):
        if c <= 0:
            raise ValueError(f"c must be positive, got {c}")
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        self.c = float(c)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.class_weight = class_weight
        self.weights: np.ndarray | None = None
        self.iterations_run_ = 0

    @property
    def is_fitted(self) -> bool:
        return self.weights is not None

    # ------------------------------------------------------------------
    def fit(self, x, y, warm_start: bool = False) -> "LinearSvm":
        """Train on features ``x`` (B, F) and labels ``y`` in {-1, +1}.

        With ``warm_start=True`` (and matching feature count) optimisation
        starts from the current weights, which converges in a handful of
        iterations when only a small batch of samples was appended.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        y = np.asarray(y)
        y = np.where(y > 0, 1.0, -1.0)
        if y.shape != (x.shape[0],):
            raise ClassifierError(
                f"labels shape {y.shape} does not match {x.shape[0]} samples")
        if np.unique(y).size < 2:
            raise ClassifierError(
                "training set must contain both classes; got only "
                f"label {y[0]:+.0f}")

        costs = self._costs(y)
        w0 = np.zeros(x.shape[1])
        if warm_start and self.weights is not None \
                and self.weights.size == x.shape[1]:
            w0 = self.weights.copy()

        def objective(w):
            margins = 1.0 - y * (x @ w)
            active = np.maximum(margins, 0.0)
            value = 0.5 * (w @ w) + np.sum(costs * active * active)
            grad = w - x.T @ (2.0 * costs * active * y)
            return value, grad

        result = minimize(objective, w0, jac=True, method="L-BFGS-B",
                          options={"maxiter": self.max_iterations,
                                   "gtol": self.tolerance})
        self.weights = result.x
        self.iterations_run_ = int(result.nit)
        return self

    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Checkpoint snapshot (weights and solver diagnostics)."""
        return {
            "weights": (None if self.weights is None
                        else self.weights.copy()),
            "iterations_run": self.iterations_run_,
        }

    def restore_state(self, state: dict) -> None:
        """Restore a :meth:`state` snapshot bit-exactly."""
        weights = state["weights"]
        self.weights = (None if weights is None
                        else np.asarray(weights, dtype=float))
        self.iterations_run_ = int(state["iterations_run"])

    # ------------------------------------------------------------------
    def decision_function(self, x) -> np.ndarray:
        """Signed score ``w . x`` (positive = class +1)."""
        if not self.is_fitted:
            raise ClassifierError("SVM used before fitting")
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != self.weights.size:
            raise ClassifierError(
                f"expected {self.weights.size} features, got {x.shape[1]}")
        return x @ self.weights

    def predict(self, x) -> np.ndarray:
        """Class labels in {-1, +1}."""
        return np.where(self.decision_function(x) >= 0.0, 1.0, -1.0)

    # ------------------------------------------------------------------
    def _costs(self, y: np.ndarray) -> np.ndarray:
        if self.class_weight is None:
            return np.full(y.size, self.c)
        if self.class_weight == "balanced":
            n_pos = max(int(np.sum(y > 0)), 1)
            n_neg = max(int(np.sum(y < 0)), 1)
            half = y.size / 2.0
            weight = {+1.0: half / n_pos, -1.0: half / n_neg}
        elif isinstance(self.class_weight, dict):
            weight = {float(k): float(v) for k, v in self.class_weight.items()}
            missing = set(np.unique(y)) - set(weight)
            if missing:
                raise ClassifierError(f"class_weight missing labels {missing}")
        else:
            raise ClassifierError(
                f"unsupported class_weight {self.class_weight!r}")
        return self.c * np.array([weight[label] for label in y])
