"""repro.perf -- hot-path acceleration for estimator workloads.

Three cooperating pieces, all result-neutral:

* :class:`~repro.perf.adaptive.AdaptiveMarginEvaluator` -- screens
  label batches at reduced bisection depth and refines only samples
  inside a provably safe guard band (labels bit-identical to the exact
  path);
* :class:`~repro.perf.cache.SolveCache` -- an LRU memo of butterfly
  solves keyed on exact ΔVth bytes plus a solve-configuration
  fingerprint, shared across sweeps, repeats and checkpoint resume;
* :class:`~repro.perf.profile.StageProfiler` -- ``perf_counter`` spans
  around the estimator stages, surfaced through ``--perf-report``.

:func:`build_evaluator` assembles an evaluator from a
:class:`~repro.perf.config.PerfConfig`; the CLI's ``--exact-eval`` flag
maps to :meth:`PerfConfig.exact`, which reproduces the legacy
fixed-budget path exactly.
"""

from __future__ import annotations

from pathlib import Path

from repro.perf.adaptive import AdaptiveMarginEvaluator, margin_guard_band
from repro.perf.batch import BatchPlanner
from repro.perf.cache import SolveCache
from repro.perf.config import PerfConfig
from repro.xp import resolve_backend
from repro.perf.profile import StageProfiler, merge_spans
from repro.perf.report import (collect_perf, merge_perf, render_json,
                               render_text)
from repro.sram.cell import SramCell
from repro.sram.evaluator import CellEvaluator
from repro.variability.space import VariabilitySpace

__all__ = [
    "AdaptiveMarginEvaluator",
    "BatchPlanner",
    "CellEvaluator",
    "PerfConfig",
    "SolveCache",
    "StageProfiler",
    "build_evaluator",
    "collect_perf",
    "margin_guard_band",
    "merge_perf",
    "merge_spans",
    "render_json",
    "render_text",
    "save_registered_caches",
]

#: caches opened with on-disk persistence, keyed by (directory,
#: fingerprint) so repeated builds under one CLI run share the instance.
_REGISTERED_CACHES: dict[tuple[str, str], SolveCache] = {}


def build_evaluator(cell: SramCell, space: VariabilitySpace,
                    vdd: float | None = None, grid_points: int = 61,
                    perf: PerfConfig | None = None) -> CellEvaluator:
    """Assemble a (possibly accelerated) cell evaluator.

    ``perf=None`` means the default :class:`PerfConfig` -- adaptive
    screening and an in-memory cache, both on.  With
    ``PerfConfig.exact()`` this returns a plain uncached
    :class:`~repro.sram.evaluator.CellEvaluator`, byte-for-byte the
    legacy construction.
    """
    if perf is None:
        perf = PerfConfig()
    backend = resolve_backend(perf.array_backend)
    planner = (BatchPlanner(max_batch=perf.label_batch)
               if perf.label_batch is not None else None)
    if perf.adaptive:
        evaluator = AdaptiveMarginEvaluator(
            cell, space, vdd=vdd, grid_points=grid_points,
            coarse_iterations=perf.coarse_iterations,
            guard_safety=perf.guard_safety, batched=perf.batched,
            array_backend=backend, planner=planner)
    else:
        evaluator = CellEvaluator(cell, space, vdd=vdd,
                                  grid_points=grid_points,
                                  batched=perf.batched,
                                  array_backend=backend,
                                  planner=planner)
    if perf.caching:
        # Attach the cache after construction: the fingerprint comes
        # from the finished evaluator, so the adaptive screening depth
        # participates and stale coarse entries can never be loaded.
        fingerprint = evaluator.solve_fingerprint()
        if perf.cache_path is not None:
            key = (str(Path(perf.cache_path).resolve()), fingerprint)
            cache = _REGISTERED_CACHES.get(key)
            if cache is None:
                cache = SolveCache.load(perf.cache_path, fingerprint,
                                        max_entries=perf.cache_entries)
                _REGISTERED_CACHES[key] = cache
        else:
            cache = SolveCache(fingerprint,
                               max_entries=perf.cache_entries)
        evaluator.cache = cache
    return evaluator


def save_registered_caches() -> list[Path]:
    """Persist every on-disk cache opened via :func:`build_evaluator`.

    The CLI calls this once after each subcommand finishes, so a sweep
    warms the cache file for the next invocation.  Returns the written
    paths.
    """
    written = []
    for (directory, _), cache in _REGISTERED_CACHES.items():
        written.append(cache.save(directory))
    return written
