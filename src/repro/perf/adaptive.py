"""Adaptive-resolution margin evaluation.

Every estimate funnels through
:meth:`~repro.sram.butterfly.ReadButterflySolver.solve`, which spends a
fixed ``2 x bisection_iterations x grid_points`` device-model
evaluations per sample no matter how far the sample sits from the
failure boundary.  For *labelling* (the only thing the estimators
consume in bulk) that is wasted work: far-from-boundary samples -- the
vast majority in stage 2 -- only need enough resolution to settle the
margin's sign.

:class:`AdaptiveMarginEvaluator` therefore screens every batch with a
reduced-bisection-depth solve on the **same** voltage grid and margin
levels, and refines only samples whose coarse margin lands inside a
guard band around zero.  The guard band is derived from the bisection
error bound, so screened labels are **bit-identical** to the exact
path's (proof sketch below and in ``docs/PERFORMANCE.md``):

* after ``k`` bisection steps on ``[0, vdd]`` every VTC node voltage is
  within ``eps_k = vdd * 2**-(k+1)`` of the converged value;
* in the 45-degree-rotated margin frame both butterfly curves are
  (approximately) 1-Lipschitz -- ``|du/dv| = |(1+y')/(1-y')| <= 1`` for
  a monotone-decreasing VTC -- so perturbing a curve by ``eps`` in sup
  norm moves each interpolated cut by at most ``(1+L) * eps/sqrt(2)``
  with ``L ~ 1``;
* the lobe margin is a max over cut levels of the two-curve gap over
  ``sqrt(2)``, and both max and min (the cell-level margin) are
  1-Lipschitz in sup norm, giving
  ``|margin_coarse - margin_exact| <= 3 * (eps_kc + eps_ke)``.

``guard_band`` multiplies that bound by a safety factor (default 2) to
cover the clamped-extrapolation corner of the interpolator and the
residual non-monotonicity of an unconverged bisection.  Any coarse
margin beyond the band provably has the exact margin's sign; anything
inside it is refined to full depth.  Refinement does not start over:
bisection is deterministic, so the exact solve's first
``coarse_iterations`` steps reproduce the coarse brackets exactly, and
the refinement *resumes* from them, paying only the remaining depth
(in-band rows cost ``exact - coarse`` extra iterations instead of
``exact``).  :meth:`margins` (the float-valued API
used by boundary refinement, cross-entropy and the analyses) always
returns exact values -- adaptivity accelerates labelling only.
"""

from __future__ import annotations

from repro.perf.cache import SolveCache
from repro.rng import stable_seed
from repro.sram.butterfly import ReadButterflySolver
from repro.sram.cell import SramCell
from repro.sram.evaluator import CellEvaluator
from repro.sram.margins import lobe_margins
from repro.variability.space import VariabilitySpace

import numpy as np


def margin_guard_band(vdd: float, coarse_iterations: int,
                      exact_iterations: int, safety: float = 2.0) -> float:
    """Safe screening threshold on coarse margins [V].

    ``3 * (eps_coarse + eps_exact)`` per the error analysis above,
    widened by ``safety``; a coarse margin whose magnitude exceeds this
    has the same sign as the exact margin.
    """
    if safety < 1.0:
        raise ValueError("safety must be >= 1")
    eps = vdd * (2.0 ** -(coarse_iterations + 1)
                 + 2.0 ** -(exact_iterations + 1))
    return safety * 3.0 * eps


class AdaptiveMarginEvaluator(CellEvaluator):
    """Cell evaluator with coarse-screen / exact-refine labelling.

    Drop-in replacement for :class:`~repro.sram.evaluator.CellEvaluator`
    (built by :func:`repro.perf.build_evaluator` when the
    :class:`~repro.perf.config.PerfConfig` enables adaptivity).  Margins
    stay exact; only :meth:`failure_labels` takes the screened path, and
    its labels match the exact path bit for bit by the guard-band
    argument in the module docstring.

    Parameters
    ----------
    coarse_iterations:
        Bisection depth of the screening solver (exact path: 40).
    guard_safety:
        Multiplier on the analytic error bound; >= 1.
    cache:
        Optional :class:`~repro.perf.cache.SolveCache` shared with the
        exact path (coarse entries are stored under their own level
        tag, so the two resolutions never mix).
    """

    def __init__(self, cell: SramCell, space: VariabilitySpace,
                 vdd: float | None = None, grid_points: int = 61,
                 margin_levels: int = 64, max_batch: int = 4096,
                 cache: SolveCache | None = None,
                 coarse_iterations: int = 12, guard_safety: float = 2.0,
                 batched: bool = True, array_backend=None, planner=None):
        super().__init__(cell, space, vdd=vdd, grid_points=grid_points,
                         margin_levels=margin_levels, max_batch=max_batch,
                         cache=cache, batched=batched,
                         array_backend=array_backend, planner=planner)
        # Same grid and margin levels as the exact solver: the guard
        # band only bounds the bisection-depth error, so the screening
        # pass must not introduce any other discretisation difference.
        # The resolved array backend is shared so a fallback is decided
        # once per evaluator.
        self.coarse_solver = ReadButterflySolver(
            cell, vdd=vdd, grid_points=grid_points,
            bisection_iterations=coarse_iterations,
            batched=batched, array_backend=self.solver.backend)
        self.guard_band = margin_guard_band(
            self.vdd, coarse_iterations,
            self.solver.bisection_iterations, guard_safety)
        self.screened = 0
        self.refined = 0

    # ------------------------------------------------------------------
    def failure_labels(self, x: np.ndarray, which: str = "cell"
                       ) -> np.ndarray:
        """Fail labels, bit-identical to ``CellEvaluator``'s exact path.

        Coarse-screens the whole batch, then refines only the rows whose
        coarse margin falls inside the guard band.  Refinement *resumes*
        the coarse bisection (see
        :meth:`~repro.sram.butterfly.ReadButterflySolver.resume`) so an
        in-band row costs only the remaining depth, not a from-scratch
        exact solve.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != 6:
            raise ValueError(f"x must have shape (B, 6), got {x.shape}")
        labels = np.empty(x.shape[0], dtype=bool)
        for start, stop in self.planner.plan(x.shape[0],
                                             self.solve_row_bytes):
            labels[start:stop] = self._label_chunk(x[start:stop], which)
        return labels

    def _label_chunk(self, chunk: np.ndarray, which: str) -> np.ndarray:
        dvth = self.space.to_physical(chunk)
        n = dvth.shape[0]
        state = None
        if self.cache is None:
            curves, state = self.coarse_solver.solve_with_state(dvth)
            c0, c1 = lobe_margins(curves, self.margin_levels)
            solved = np.ones(n, dtype=bool)
            state_index = np.arange(n)
        else:
            hit, c0, c1 = self.cache.lookup("coarse", dvth)
            solved = ~hit
            state_index = np.cumsum(solved) - 1
            if solved.any():
                curves, state = self.coarse_solver.solve_with_state(
                    dvth[solved])
                m0, m1 = lobe_margins(curves, self.margin_levels)
                self.cache.store("coarse", dvth[solved], m0, m1)
                c0[solved] = m0
                c1[solved] = m1
        margin = self._select_margin(c0, c1, which)
        labels = margin < 0.0
        uncertain = np.abs(margin) <= self.guard_band
        self.screened += int(n - uncertain.sum())
        if uncertain.any():
            rows = np.flatnonzero(uncertain)
            self.refined += rows.size
            e0, e1 = self._refine(dvth, rows, solved, state, state_index)
            labels[rows] = self._select_margin(e0, e1, which) < 0.0
        return labels

    def _refine(self, dvth, rows, solved, state, state_index):
        """Exact margins for the chunk rows ``rows``.

        Exact-level cache hits return as-is; solves resume from the
        coarse brackets where this call produced them (rows whose coarse
        margin was itself a cache hit have no brackets and re-solve from
        scratch).  Every branch yields the same bits, so which one a row
        takes is purely a cost matter.
        """
        m0 = np.empty(rows.size)
        m1 = np.empty(rows.size)
        pending = np.ones(rows.size, dtype=bool)
        if self.cache is not None:
            hit, h0, h1 = self.cache.lookup("exact", dvth[rows])
            m0[hit] = h0[hit]
            m1[hit] = h1[hit]
            pending = ~hit
        if pending.any():
            sub = rows[pending]
            out0 = np.empty(sub.size)
            out1 = np.empty(sub.size)
            warm = solved[sub]
            if warm.any():
                ids = sub[warm]
                curves = self.solver.resume(dvth[ids],
                                            state.rows(state_index[ids]))
                out0[warm], out1[warm] = lobe_margins(curves,
                                                      self.margin_levels)
            if not warm.all():
                cold = ~warm
                curves = self.solver.solve(dvth[sub[cold]])
                out0[cold], out1[cold] = lobe_margins(curves,
                                                      self.margin_levels)
            if self.cache is not None:
                self.cache.store("exact", dvth[sub], out0, out1)
            m0[pending] = out0
            m1[pending] = out1
        return m0, m1

    def _local_perf_stats(self) -> dict:
        stats = super()._local_perf_stats()
        stats["screened"] = self.screened
        stats["refined"] = self.refined
        return stats

    def _fingerprint_seed(self) -> int:
        # Coarse-level cache entries depend on the screening depth, so
        # it participates in the fingerprint; adaptive and plain
        # evaluators therefore never share a cache file.
        return stable_seed(super()._fingerprint_seed(), "coarse",
                           self.coarse_solver.bisection_iterations)

    @property
    def device_model_evals(self) -> int:
        return super().device_model_evals + self.coarse_solver.model_evals

    @property
    def evals_saved(self) -> int:
        return super().evals_saved + self.coarse_solver.evals_saved
