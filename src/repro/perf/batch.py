"""Label-batch planning for the batched evaluator core.

The estimators hand the evaluator label requests of wildly different
sizes -- a few boundary-bisection lanes here, tens of thousands of
stage-2 samples there.  :class:`BatchPlanner` turns each request into
solver-call slices that are as large as possible (one fused ``(2B, G)``
array program per slice amortises the Python-level bisection loop over
the whole slice) while staying under an explicit peak-scratch-bytes
budget, replacing the bare ``max_batch`` stride loops that used to be
duplicated across the evaluator, the adaptive labeller and the write
indicator.

Slicing is a pure cost decision: the butterfly solve and the margin
extraction are row-independent elementwise programs, so any
decomposition of a request returns bit-identical results (the PR 5
neutrality contract; asserted by ``tests/perf/test_batch.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = ["BatchPlanner"]


@dataclass(frozen=True)
class BatchPlanner:
    """Plan solver-call slices for a label/margin request.

    Parameters
    ----------
    max_batch:
        Hard per-slice row cap (the evaluator's traditional knob).
    bytes_budget:
        Optional peak-scratch bound; with a per-row cost estimate the
        effective slice size becomes
        ``min(max_batch, bytes_budget // row_bytes)``.  ``None`` leaves
        ``max_batch`` in charge, which reproduces the legacy stride
        loop exactly.
    """

    max_batch: int = 4096
    bytes_budget: int | None = None

    def __post_init__(self) -> None:
        if self.max_batch < 1:
            raise ValueError(
                f"max_batch must be >= 1, got {self.max_batch}")
        if self.bytes_budget is not None and self.bytes_budget < 1:
            raise ValueError(
                f"bytes_budget must be >= 1, got {self.bytes_budget}")

    def batch_size(self, row_bytes: int | None = None) -> int:
        """Effective rows per slice for a given per-row scratch cost."""
        size = self.max_batch
        if self.bytes_budget is not None and row_bytes:
            size = min(size, max(1, self.bytes_budget // row_bytes))
        return size

    def plan(self, n_items: int, row_bytes: int | None = None
             ) -> Iterator[tuple[int, int]]:
        """Yield ``(start, stop)`` slices covering ``range(n_items)``."""
        if n_items < 0:
            raise ValueError(f"n_items must be >= 0, got {n_items}")
        step = self.batch_size(row_bytes)
        for start in range(0, n_items, step):
            yield start, min(start + step, n_items)

    def with_(self, **changes) -> "BatchPlanner":
        from dataclasses import replace

        return replace(self, **changes)
