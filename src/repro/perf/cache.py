"""The simulation memo cache.

:class:`SolveCache` memoises butterfly-solve results keyed on the exact
ΔVth bytes of each sample plus a *fingerprint* of everything else that
determines the solve (cell parameter cards, geometry, supply, grid,
margin levels, bisection depths).  Identical shift vectors recur
naturally: particle-filter resampling duplicates positions verbatim,
discrete RTN occupancy draws collide, and the Fig. 8 duty-ratio sweep
re-evaluates the shared boundary under every bias condition.  A hit
returns the exact floats the original solve produced, so cached and
uncached runs are bit-identical.

The cache is LRU-bounded, thread-safe (the thread backend labels chunks
concurrently through one evaluator) and deliberately *empty after
pickling*: the process backend ships the evaluator to workers per task,
and a growing cache inside those pickles would drown the run in IPC.
State snapshots (:meth:`state`/:meth:`restore_state`) ride estimator
checkpoints, and :meth:`save`/:meth:`load` persist the cache on disk
through the same temp-then-rename discipline as
:mod:`repro.analysis.persistence`.
"""

from __future__ import annotations

import io
import os
import threading
from collections import OrderedDict
from pathlib import Path

import numpy as np

#: resolution levels a cache entry may be stored at.
LEVELS = ("exact", "coarse")


class SolveCache:
    """LRU memo of per-sample lobe margins.

    Parameters
    ----------
    fingerprint:
        Hex id of the solve configuration (see
        :meth:`repro.sram.evaluator.CellEvaluator.solve_fingerprint`).
        Entries are only meaningful under the exact configuration that
        produced them, so restore/load reject mismatched fingerprints.
    max_entries:
        LRU capacity; inserting beyond it evicts least-recently-used
        entries.
    """

    def __init__(self, fingerprint: str, max_entries: int = 100_000):
        if max_entries < 1:
            raise ValueError(f"max_entries must be >= 1, got {max_entries}")
        self.fingerprint = str(fingerprint)
        self.max_entries = int(max_entries)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        self._data: OrderedDict[bytes, tuple[float, float]] = OrderedDict()
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    @staticmethod
    def _key(level: str, row: np.ndarray) -> bytes:
        return level.encode() + b"|" + row.tobytes()

    def lookup(self, level: str, dvth: np.ndarray
               ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Batch lookup; returns ``(hit_mask, rnm0, rnm1)``.

        ``rnm0``/``rnm1`` are only meaningful where ``hit_mask`` is
        true; missed rows are left at 0.
        """
        if level not in LEVELS:
            raise ValueError(f"unknown cache level {level!r}")
        dvth = np.ascontiguousarray(dvth, dtype=float)
        n = dvth.shape[0]
        hit = np.zeros(n, dtype=bool)
        rnm0 = np.zeros(n)
        rnm1 = np.zeros(n)
        with self._lock:
            for i in range(n):
                entry = self._data.get(self._key(level, dvth[i]))
                if entry is None:
                    continue
                self._data.move_to_end(self._key(level, dvth[i]))
                hit[i] = True
                rnm0[i], rnm1[i] = entry
            self.hits += int(hit.sum())
            self.misses += int(n - hit.sum())
        return hit, rnm0, rnm1

    def store(self, level: str, dvth: np.ndarray, rnm0: np.ndarray,
              rnm1: np.ndarray) -> None:
        """Insert solved rows (evicting LRU entries beyond capacity)."""
        if level not in LEVELS:
            raise ValueError(f"unknown cache level {level!r}")
        dvth = np.ascontiguousarray(dvth, dtype=float)
        with self._lock:
            for i in range(dvth.shape[0]):
                self._data[self._key(level, dvth[i])] = (
                    float(rnm0[i]), float(rnm1[i]))
                self._data.move_to_end(self._key(level, dvth[i]))
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1

    @property
    def hit_rate(self) -> float:
        with self._lock:
            total = self.hits + self.misses
            return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Counter snapshot for telemetry/perf reports.

        Taken under the lock so the thread backend never reads counters
        torn across a concurrent :meth:`lookup` update.
        """
        with self._lock:
            return {"cache_entries": len(self._data),
                    "cache_hits": self.hits,
                    "cache_misses": self.misses,
                    "cache_evictions": self.evictions}

    # ------------------------------------------------------------------
    # pickling: workers start cold (see module docstring)
    # ------------------------------------------------------------------
    def __getstate__(self) -> dict:
        with self._lock:
            return {"fingerprint": self.fingerprint,
                    "max_entries": self.max_entries}

    def __setstate__(self, state: dict) -> None:
        self.__init__(state["fingerprint"], state["max_entries"])

    # ------------------------------------------------------------------
    # checkpoint snapshots
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Codec-safe snapshot (rides estimator checkpoints).

        Entries are packed into arrays in LRU order (least recent
        first), so a restore rebuilds the identical eviction order.
        """
        with self._lock:
            n = len(self._data)
            levels = np.zeros(n, dtype=np.uint8)
            keys = np.zeros((n, 6))
            values = np.zeros((n, 2))
            for i, (key, value) in enumerate(self._data.items()):
                level, _, raw = key.partition(b"|")
                levels[i] = LEVELS.index(level.decode())
                keys[i] = np.frombuffer(raw, dtype=float)
                values[i] = value
            return {"fingerprint": self.fingerprint,
                    "max_entries": self.max_entries,
                    "hits": self.hits, "misses": self.misses,
                    "evictions": self.evictions,
                    "levels": levels, "keys": keys, "values": values}

    def restore_state(self, state: dict) -> bool:
        """Restore a :meth:`state` snapshot.

        Returns ``False`` (leaving the cache untouched) when the
        snapshot was taken under a different solve fingerprint -- stale
        entries would silently corrupt results, an empty cache only
        costs speed.
        """
        if str(state["fingerprint"]) != self.fingerprint:
            return False
        levels = np.asarray(state["levels"], dtype=np.uint8)
        keys = np.ascontiguousarray(state["keys"], dtype=float)
        values = np.asarray(state["values"], dtype=float)
        if keys.ndim != 2 or keys.shape[1] != 6 or values.shape != (
                keys.shape[0], 2) or levels.shape != (keys.shape[0],):
            raise ValueError(
                f"inconsistent cache snapshot shapes: keys {keys.shape}, "
                f"values {values.shape}, levels {levels.shape}")
        with self._lock:
            self.max_entries = int(state["max_entries"])
            self.hits = int(state["hits"])
            self.misses = int(state["misses"])
            self.evictions = int(state["evictions"])
            self._data.clear()
            for i in range(keys.shape[0]):
                self._data[self._key(LEVELS[levels[i]], keys[i])] = (
                    float(values[i, 0]), float(values[i, 1]))
            while len(self._data) > self.max_entries:
                self._data.popitem(last=False)
                self.evictions += 1
        return True

    # ------------------------------------------------------------------
    # on-disk persistence (one file per fingerprint)
    # ------------------------------------------------------------------
    @staticmethod
    def _file(directory: str | Path, fingerprint: str) -> Path:
        return Path(directory) / f"solve-cache-{fingerprint}.npz"

    def save(self, directory: str | Path) -> Path:
        """Atomically write the cache under ``directory``.

        The write goes through a temp file plus :func:`os.replace`, so
        a concurrent reader never sees a torn archive; a per-fingerprint
        lock file additionally serialises concurrent writers (two
        service jobs sharing a solve-cache directory), so one job's
        publish cannot interleave with another's temp-file reuse.
        """
        from repro.checkpoint.lockfile import FileLock

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        state = self.state()
        buffer = io.BytesIO()
        np.savez(buffer,
                 meta=np.array([state["max_entries"], state["hits"],
                                state["misses"], state["evictions"]],
                               dtype=np.int64),
                 fingerprint=np.frombuffer(
                     self.fingerprint.encode(), dtype=np.uint8),
                 levels=state["levels"], keys=state["keys"],
                 values=state["values"])
        path = self._file(directory, self.fingerprint)
        tmp = path.with_name(f"{path.name}.{os.getpid()}.tmp")
        with FileLock(path.with_name(path.name + ".lock")):
            tmp.write_bytes(buffer.getvalue())
            os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, directory: str | Path, fingerprint: str,
             max_entries: int = 100_000) -> "SolveCache":
        """Load the cache for ``fingerprint``, or a fresh one.

        A missing or unreadable file degrades to an empty cache -- the
        cache is pure acceleration, never a correctness dependency.
        """
        cache = cls(fingerprint, max_entries=max_entries)
        path = cls._file(directory, fingerprint)
        try:
            with np.load(path) as pack:
                stored = bytes(pack["fingerprint"]).decode()
                meta = pack["meta"]
                cache.restore_state({
                    "fingerprint": stored,
                    "max_entries": max_entries,
                    "hits": int(meta[1]), "misses": int(meta[2]),
                    "evictions": int(meta[3]),
                    "levels": pack["levels"], "keys": pack["keys"],
                    "values": pack["values"]})
        except (OSError, KeyError, ValueError):
            pass
        return cache
