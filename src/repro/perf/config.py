"""Hot-path acceleration knobs.

:class:`PerfConfig` selects how aggressively the margin evaluator may
trade per-sample work for speed.  Every setting is *result-neutral* by
construction: the adaptive screen refines anything inside a provably
safe guard band (see :mod:`repro.perf.adaptive`) and the solve cache
returns the exact floats a fresh solve would produce, so estimates are
bit-identical whether acceleration is on or off.  The config therefore
deliberately does **not** participate in checkpoint fingerprints, just
like :class:`~repro.runtime.config.ExecutionConfig`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace


@dataclass(frozen=True)
class PerfConfig:
    """Acceleration policy for the margin-evaluation hot path.

    Parameters
    ----------
    adaptive:
        Screen every batch on a reduced-bisection-depth solve and refine
        only samples whose coarse margin falls inside the guard band
        (default on; ``False`` restores the fixed-budget exact path).
    coarse_iterations:
        Bisection depth of the screening solve (the exact path uses the
        solver default of 40).  Lower is cheaper but widens the guard
        band, refining more samples; the floor of 8 is the solver's own.
    guard_safety:
        Multiplier on the analytic coarse-vs-exact margin error bound.
        Must be >= 1 for the label-exactness guarantee; the default 2
        doubles the (already conservative) bound to cover the
        interpolation corner cases discussed in ``docs/PERFORMANCE.md``
        -- empirically the bound itself has >3x headroom over the worst
        observed coarse error.
    cache_entries:
        LRU capacity of the :class:`~repro.perf.cache.SolveCache`
        (entries, not bytes; one entry is ~100 B).  0 disables caching.
    cache_path:
        Optional directory for on-disk cache persistence: caches are
        loaded from it at evaluator construction and saved back by
        :func:`repro.perf.save_registered_caches` (the CLI does this
        after every run), one file per solve fingerprint.
    batched:
        Fuse both butterfly sides into one ``(2B, G)`` array program
        per bisection step and run the buffered (allocation-free)
        device-model path.  Bit-identical by construction (elementwise
        over rows; same ufuncs in the same order); off reproduces the
        per-side legacy loop.
    array_backend:
        Array namespace for the solver hot path: ``"numpy"`` (default),
        ``"numba"`` (jitted softplus kernels, verified bit-identical at
        resolve time) or any importable Array-API namespace such as
        ``"cupy"`` (capability-probed, documented tolerance).  Unknown
        or unusable backends silently fall back to numpy -- results
        must never depend on which accelerators are installed (see
        :mod:`repro.xp`).
    label_batch:
        Optional override of the evaluator's per-solver-call row cap
        (default: the evaluator's ``max_batch``, 4096).  Purely a
        peak-memory/speed trade -- slicing is row-independent, so any
        value returns bit-identical labels.
    """

    adaptive: bool = True
    coarse_iterations: int = 12
    guard_safety: float = 2.0
    cache_entries: int = 100_000
    cache_path: str | None = None
    batched: bool = True
    array_backend: str = "numpy"
    label_batch: int | None = None

    def __post_init__(self) -> None:
        if self.coarse_iterations < 8:
            raise ValueError("coarse_iterations must be >= 8")
        if self.guard_safety < 1.0:
            raise ValueError(
                "guard_safety must be >= 1 (the guard band may only be "
                "widened beyond the analytic bound, never narrowed)")
        if self.cache_entries < 0:
            raise ValueError("cache_entries must be >= 0")
        if not self.array_backend:
            raise ValueError("array_backend must be a backend name")
        if self.label_batch is not None and self.label_batch < 1:
            raise ValueError("label_batch must be >= 1")

    @property
    def caching(self) -> bool:
        return self.cache_entries > 0

    @classmethod
    def exact(cls) -> "PerfConfig":
        """The unaccelerated legacy path (``--exact-eval``).

        Disables adaptivity, caching and side fusion, reproducing the
        per-side fixed-budget solve -- the reference every acceleration
        is gated bit-identical against in ``bench_hotpath``.
        """
        return cls(adaptive=False, cache_entries=0, batched=False)

    def with_(self, **changes) -> "PerfConfig":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)
