"""Per-stage profiling spans.

:class:`StageProfiler` accumulates named wall-time spans
(``perf_counter``-based, telemetry only -- REP002-legal) around the
estimator's phases: boundary search, stage-1 prediction/labelling/
resampling, classifier train/predict, stage-2 sampling/labelling.  The
span table folds into :class:`~repro.runtime.metrics.RunMetrics` and
into ``FailureEstimate.metadata["perf"]``, which the CLI renders via
``--perf-report``.

Spans may nest (``stage2-label`` encloses ``classifier-predict``); each
accumulator is independent, so nested totals overlap rather than
partition the run -- the glossary in ``docs/PERFORMANCE.md`` marks
which spans contain which.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from typing import Iterator


class StageProfiler:
    """Accumulate named wall-time spans."""

    def __init__(self) -> None:
        self._spans: dict[str, dict] = {}

    @contextmanager
    def span(self, name: str) -> Iterator[None]:
        """Time one ``with`` block under ``name`` (re-entrant safe)."""
        t0 = time.perf_counter()
        try:
            yield
        finally:
            stat = self._spans.setdefault(
                name, {"total_s": 0.0, "count": 0})
            stat["total_s"] += time.perf_counter() - t0
            stat["count"] += 1

    def add(self, name: str, seconds: float, count: int = 1) -> None:
        """Fold an externally measured duration into ``name``."""
        stat = self._spans.setdefault(name, {"total_s": 0.0, "count": 0})
        stat["total_s"] += float(seconds)
        stat["count"] += int(count)

    def as_dict(self) -> dict[str, dict]:
        """``{name: {"total_s": ..., "count": ...}}`` in first-use order."""
        return {name: dict(stat) for name, stat in self._spans.items()}

    def __bool__(self) -> bool:
        return bool(self._spans)


def merge_spans(into: dict[str, dict], spans: dict[str, dict]) -> None:
    """Accumulate a span table into ``into`` (sums totals and counts)."""
    for name, stat in spans.items():
        merged = into.setdefault(name, {"total_s": 0.0, "count": 0})
        merged["total_s"] += float(stat.get("total_s", 0.0))
        merged["count"] += int(stat.get("count", 0))
