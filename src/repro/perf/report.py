"""Aggregation and rendering of per-run perf telemetry.

Every estimator attaches a perf dict (profiling spans plus
device-model-evaluation and cache counters, all measured as deltas over
the run) to ``FailureEstimate.metadata["perf"]``.  The CLI's
``--perf-report`` walks whatever result object a subcommand produced,
merges every perf dict it finds and renders one text or JSON summary --
the perf twin of ``--health-report``.
"""

from __future__ import annotations

import json

from repro.perf.profile import merge_spans

#: additive counter keys (summed across runs when merging).
_COUNTERS = ("device_model_evals", "evals_saved", "cache_hits",
             "cache_misses", "cache_evictions", "screened", "refined")


def collect_perf(result: object, _depth: int = 0) -> list[dict]:
    """Recursively harvest perf dicts from a result container.

    Mirrors :func:`repro.health.events.collect_reports`: walks
    dataclass-like result objects, lists and dicts, and collects the
    ``metadata["perf"]`` entry of every estimate encountered.
    """
    if _depth > 6 or result is None:
        return []
    perfs: list[dict] = []
    metadata = getattr(result, "metadata", None)
    own = None
    if isinstance(metadata, dict) and isinstance(
            metadata.get("perf"), dict):
        own = metadata["perf"]
        perfs.append(own)
    if isinstance(result, dict):
        children = list(result.values())
    elif isinstance(result, (list, tuple)):
        children = list(result)
    elif hasattr(result, "__dataclass_fields__"):
        children = [getattr(result, name)
                    for name in result.__dataclass_fields__]
    else:
        children = []
    for child in children:
        if isinstance(child, (str, bytes, int, float, bool)):
            continue
        perfs.extend(collect_perf(child, _depth + 1))
    return perfs


def merge_perf(perfs: list[dict]) -> dict:
    """Combine several runs' perf dicts into one summary.

    Counters add up; spans merge by name; derived rates (cache hit
    rate, screened fraction) are recomputed from the merged counters.
    """
    merged: dict = {"runs": len(perfs),
                    "spans": {}}
    for key in _COUNTERS:
        merged[key] = 0
    entries = 0
    for perf in perfs:
        for key in _COUNTERS:
            value = perf.get(key)
            if isinstance(value, (int, float)):
                merged[key] += int(value)
        if isinstance(perf.get("cache_entries"), int):
            entries = max(entries, perf["cache_entries"])
        if isinstance(perf.get("spans"), dict):
            merge_spans(merged["spans"], perf["spans"])
    merged["cache_entries"] = entries
    lookups = merged["cache_hits"] + merged["cache_misses"]
    merged["cache_hit_rate"] = (
        merged["cache_hits"] / lookups if lookups else 0.0)
    labelled = merged["screened"] + merged["refined"]
    merged["screened_fraction"] = (
        merged["screened"] / labelled if labelled else 0.0)
    return merged


def render_json(merged: dict) -> str:
    return json.dumps(merged, indent=2)


def render_text(merged: dict) -> str:
    """Human-readable multi-line perf summary."""
    lines = [f"perf report ({merged['runs']} run(s))",
             f"  device-model evals  {merged['device_model_evals']} "
             f"({merged['evals_saved']} saved by lane compaction)",
             f"  cache               {merged['cache_hits']} hits / "
             f"{merged['cache_misses']} misses "
             f"({merged['cache_hit_rate']:.1%} hit rate, "
             f"{merged['cache_entries']} entries, "
             f"{merged['cache_evictions']} evictions)",
             f"  adaptive screen     {merged['screened']} screened / "
             f"{merged['refined']} refined "
             f"({merged['screened_fraction']:.1%} screened)"]
    if merged["spans"]:
        lines.append("  spans:")
        for name, stat in merged["spans"].items():
            lines.append(f"    {name:20s} {stat['total_s']:9.3f} s "
                         f"({stat['count']} call(s))")
    return "\n".join(lines)
