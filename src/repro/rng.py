"""Random-number-generator plumbing.

Every stochastic component in this package accepts either a seed or a
:class:`numpy.random.Generator`.  Components that own several independent
stochastic sub-processes (e.g. the particle-filter bank) split their
generator with :func:`spawn` so results are reproducible regardless of the
order in which sub-processes consume randomness.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

SeedLike = "int | np.random.Generator | np.random.SeedSequence | None"


def as_generator(seed=None) -> np.random.Generator:
    """Coerce ``seed`` into a :class:`numpy.random.Generator`.

    Accepts ``None`` (non-deterministic), an integer seed, a
    ``SeedSequence`` or an existing ``Generator`` (returned unchanged).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if isinstance(seed, np.random.SeedSequence):
        return np.random.default_rng(seed)
    if seed is None or isinstance(seed, (int, np.integer)):
        return np.random.default_rng(seed)
    raise TypeError(f"cannot build a Generator from {type(seed).__name__}")


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` statistically independent child generators.

    The parent generator remains usable afterwards.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def rng_state(rng: np.random.Generator) -> dict:
    """JSON-serialisable snapshot of a generator's bit-generator state.

    The returned tree contains only builtin types (the PCG64 state words
    are arbitrary-precision ints, which JSON round-trips exactly), so it
    can ride in a checkpoint manifest.  Restore with
    :func:`rng_from_state`.
    """
    bit_generator = rng.bit_generator
    return {"class": type(bit_generator).__name__,
            "state": bit_generator.state}


def rng_from_state(state: dict) -> np.random.Generator:
    """Rebuild a generator from a :func:`rng_state` snapshot.

    The restored generator produces the bit-identical stream the
    snapshotted one would have continued with.
    """
    name = state.get("class") if isinstance(state, dict) else None
    cls = getattr(np.random, name, None) if isinstance(name, str) else None
    if cls is None or not (isinstance(cls, type)
                           and issubclass(cls, np.random.BitGenerator)):
        raise ValueError(f"unknown bit-generator class {name!r}")
    bit_generator = cls()
    try:
        bit_generator.state = state["state"]
    except (KeyError, TypeError, ValueError) as exc:
        raise ValueError(f"invalid {name} state: {exc}") from exc
    return np.random.Generator(bit_generator)


def stable_seed(*parts: Sequence) -> int:
    """Derive a deterministic 63-bit seed from hashable ``parts``.

    Used to give each (experiment, bias-condition) pair its own reproducible
    stream without threading generators through every call site.
    """
    acc = 0xCBF29CE484222325  # FNV-1a offset basis
    for part in parts:
        for byte in repr(part).encode():
            acc ^= byte
            acc = (acc * 0x100000001B3) & 0xFFFFFFFFFFFFFFFF
    return acc & 0x7FFFFFFFFFFFFFFF
