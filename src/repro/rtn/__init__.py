"""Random-telegraph-noise models.

:mod:`repro.rtn.duty` maps the cell's stored-data duty ratio alpha onto
per-transistor gate-ON fractions; :mod:`repro.rtn.traps` computes duty-
averaged time constants and stationary trap occupancy;
:mod:`repro.rtn.model` draws Poissonian threshold shifts (paper eq. 9-10);
:mod:`repro.rtn.telegraph` generates time-domain two-state telegraph
waveforms used to validate the stationary statistics.
"""

from __future__ import annotations

from repro.rtn.duty import device_on_fractions
from repro.rtn.traps import (
    TrapEnsemble,
    per_trap_shift_v,
    stationary_occupancy,
)
from repro.rtn.model import RtnModel, ZeroRtnModel
from repro.rtn.telegraph import TelegraphProcess, simulate_switched_telegraph
from repro.rtn.transient import RtnTransientDriver

__all__ = [
    "device_on_fractions",
    "stationary_occupancy",
    "per_trap_shift_v",
    "TrapEnsemble",
    "RtnModel",
    "ZeroRtnModel",
    "TelegraphProcess",
    "simulate_switched_telegraph",
    "RtnTransientDriver",
]
