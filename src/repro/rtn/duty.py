"""Stored-data duty ratio -> per-transistor gate-ON fractions.

The duty ratio ``alpha`` is the fraction of time the cell stores "1"
(node Q high, node QB low).  Each transistor's gate bias follows one of the
internal nodes, so its ON fraction is a simple function of alpha:

==========  =========  ==========================  ============
device      gate node  ON condition                ON fraction
==========  =========  ==========================  ============
L1 (pMOS)   QB         gate low  <=> storing "1"   alpha
D1 (nMOS)   QB         gate high <=> storing "0"   1 - alpha
L2 (pMOS)   Q          gate low  <=> storing "0"   1 - alpha
D2 (nMOS)   Q          gate high <=> storing "1"   alpha
A1, A2      WL         wordline high               access duty
==========  =========  ==========================  ============

The access duty (read activity) is not specified in the paper; it is a
configuration knob (:attr:`repro.config.PaperConditions.access_on_fraction`)
defaulting to 0.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEVICE_ORDER


def device_on_fractions(alpha: float, access_on_fraction: float = 0.0
                        ) -> np.ndarray:
    """Per-device ON fractions following :data:`repro.config.DEVICE_ORDER`.

    >>> device_on_fractions(0.0).tolist()   # always storing "0"
    [0.0, 1.0, 0.0, 1.0, 0.0, 0.0]
    """
    if not 0.0 <= alpha <= 1.0:
        raise ValueError(f"duty ratio must lie in [0, 1], got {alpha}")
    if not 0.0 <= access_on_fraction <= 1.0:
        raise ValueError(
            f"access ON fraction must lie in [0, 1], got {access_on_fraction}")
    table = {
        "L1": alpha,
        "D1": 1.0 - alpha,
        "A1": access_on_fraction,
        "L2": 1.0 - alpha,
        "D2": alpha,
        "A2": access_on_fraction,
    }
    return np.array([table[name] for name in DEVICE_ORDER])
