"""RTN sampling model used inside the failure-probability estimators.

:class:`RtnModel` draws, for a batch of cells, the per-device RTN threshold
shifts (Poissonian occupied-trap counts times the single-trap shift, paper
eq. 9-10) *and* the stored state at read time (Bernoulli with the duty
ratio alpha).  Shifts are returned in the **whitened** variability space
(divided by the per-device Pelgrom sigma) so they can be added directly to
RDF samples before evaluating the cell indicator.

:class:`ZeroRtnModel` is the no-RTN null model with the same interface,
used for the RDF-only experiments (Fig. 6).
"""

from __future__ import annotations

import numpy as np

from repro.config import MIRROR_PERMUTATION, PaperConditions
from repro.rtn.duty import device_on_fractions
from repro.rtn.traps import TrapEnsemble
from repro.variability.space import VariabilitySpace

_MIRROR = np.array(MIRROR_PERMUTATION)


class RtnModel:
    """Stationary RTN sampler for one duty-ratio bias condition.

    Parameters
    ----------
    conditions:
        Experimental conditions (geometry, trap density, time constants).
    space:
        The whitened RDF space (provides per-device sigmas).
    alpha:
        Stored-data duty ratio: fraction of time the cell holds "1".
    convention:
        Occupancy convention, see :mod:`repro.rtn.traps`.
    """

    def __init__(self, conditions: PaperConditions, space: VariabilitySpace,
                 alpha: float, convention: str = "physical"):
        if not 0.0 <= alpha <= 1.0:
            raise ValueError(f"duty ratio must lie in [0, 1], got {alpha}")
        self.conditions = conditions
        self.space = space
        self.alpha = float(alpha)
        self.convention = convention
        self.on_fractions = device_on_fractions(
            alpha, conditions.access_on_fraction)
        self.ensemble = TrapEnsemble.for_conditions(
            conditions, self.on_fractions, convention)
        #: per-device single-trap shift expressed in whitened units.
        self.unit_shift_whitened = (
            self.ensemble.shift_per_trap_v / space.sigmas)

    # ------------------------------------------------------------------
    def sample_shifts(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Draw whitened RTN shifts of shape ``(*shape, D)``.

        Shifts are non-negative: an occupied trap always increases the
        threshold magnitude, weakening the device.
        """
        shape = tuple(np.atleast_1d(shape))
        rates = np.broadcast_to(self.ensemble.poisson_rates,
                                shape + (self.space.dim,))
        n_eff = rng.poisson(rates)
        return n_eff * self.unit_shift_whitened

    def sample_states(self, shape, rng: np.random.Generator) -> np.ndarray:
        """Draw stored states (1 with probability alpha), shape ``shape``."""
        shape = tuple(np.atleast_1d(shape))
        return (rng.random(shape) < self.alpha).astype(np.int8)

    def sample(self, shape, rng: np.random.Generator
               ) -> tuple[np.ndarray, np.ndarray]:
        """Draw ``(shifts, states)`` together; see the two samplers."""
        return self.sample_shifts(shape, rng), self.sample_states(shape, rng)

    # ------------------------------------------------------------------
    @staticmethod
    def mirror(x: np.ndarray, states: np.ndarray) -> np.ndarray:
        """Map samples into the canonical stored-"0" frame.

        The 6T cell is mirror symmetric: the read margin when storing "1"
        with shifts ``x`` equals the margin when storing "0" with the
        side-swapped shifts ``x[MIRROR_PERMUTATION]``.  Folding every
        sample into the stored-"0" frame lets a *single* classifier (and a
        single lobe margin) serve both states.
        """
        x = np.asarray(x, dtype=float)
        states = np.asarray(states)
        mirrored = x[..., _MIRROR]
        return np.where(states[..., None] == 1, mirrored, x)

    @property
    def is_null(self) -> bool:
        return False

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"RtnModel(alpha={self.alpha}, "
                f"convention={self.convention!r}, "
                f"rates={np.round(self.ensemble.poisson_rates, 3)})")


class ZeroRtnModel:
    """Null RTN model: zero shifts, state irrelevant.

    Used by the RDF-only experiments; the indicator then scores a cell as
    failing if *either* lobe of the butterfly collapses.
    """

    def __init__(self, space: VariabilitySpace):
        self.space = space
        self.alpha = 0.0

    def sample_shifts(self, shape, rng) -> np.ndarray:
        shape = tuple(np.atleast_1d(shape))
        return np.zeros(shape + (self.space.dim,))

    def sample_states(self, shape, rng) -> np.ndarray:
        shape = tuple(np.atleast_1d(shape))
        return np.zeros(shape, dtype=np.int8)

    def sample(self, shape, rng) -> tuple[np.ndarray, np.ndarray]:
        return self.sample_shifts(shape, rng), self.sample_states(shape, rng)

    @staticmethod
    def mirror(x: np.ndarray, states: np.ndarray) -> np.ndarray:
        """Identity: the null model never samples stored-"1" states, and
        it must work for arbitrary-dimension spaces (the cell mirror
        permutation is 6-D specific)."""
        return np.asarray(x, dtype=float)

    @property
    def is_null(self) -> bool:
        return True
