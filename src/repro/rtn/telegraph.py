"""Time-domain two-state telegraph process.

This module is not on the Monte-Carlo hot path; it exists to *validate* the
stationary statistics used by :mod:`repro.rtn.model` (the occupancy formula
and the duty averaging of eq. 7-8) against brute-force continuous-time
simulation, and to render RTN waveforms in the examples.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import RtnTimeConstants
from repro.rng import as_generator


@dataclass
class TelegraphTrace:
    """A simulated telegraph waveform.

    Attributes
    ----------
    times:
        Transition instants, strictly increasing, starting at 0.
    states:
        Trap state *entered* at each instant (1 = captured / high |Vth|).
    duration:
        Total simulated time.
    """

    times: np.ndarray
    states: np.ndarray
    duration: float

    def occupancy(self) -> float:
        """Fraction of time spent in the captured state."""
        edges = np.append(self.times, self.duration)
        dwell = np.diff(edges)
        return float(np.sum(dwell[self.states == 1]) / self.duration)

    def state_at(self, t) -> np.ndarray:
        """Trap state at times ``t`` (vectorised)."""
        t = np.asarray(t, dtype=float)
        if np.any((t < 0) | (t > self.duration)):
            raise ValueError("query times outside the simulated window")
        idx = np.searchsorted(self.times, t, side="right") - 1
        return self.states[np.clip(idx, 0, len(self.states) - 1)]


class TelegraphProcess:
    """Two-state Markov telegraph process with fixed time constants.

    ``tau_c`` is the mean dwell in the empty state (time to capture),
    ``tau_e`` the mean dwell in the captured state (time to emission).
    """

    def __init__(self, tau_c: float, tau_e: float):
        if tau_c <= 0 or tau_e <= 0:
            raise ValueError(
                f"time constants must be positive, got tau_c={tau_c}, "
                f"tau_e={tau_e}")
        self.tau_c = float(tau_c)
        self.tau_e = float(tau_e)

    @property
    def stationary_occupancy(self) -> float:
        """Exact stationary captured probability tau_e / (tau_c + tau_e)."""
        return self.tau_e / (self.tau_c + self.tau_e)

    def simulate(self, duration: float, seed=None,
                 initial_state: int | None = None) -> TelegraphTrace:
        """Simulate for ``duration`` time units.

        The initial state is drawn from the stationary distribution unless
        ``initial_state`` is given.
        """
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        rng = as_generator(seed)
        if initial_state is None:
            state = int(rng.random() < self.stationary_occupancy)
        else:
            if initial_state not in (0, 1):
                raise ValueError("initial_state must be 0 or 1")
            state = initial_state

        times = [0.0]
        states = [state]
        t = 0.0
        while True:
            dwell = rng.exponential(self.tau_e if state else self.tau_c)
            t += dwell
            if t >= duration:
                break
            state = 1 - state
            times.append(t)
            states.append(state)
        return TelegraphTrace(times=np.array(times),
                              states=np.array(states, dtype=np.int8),
                              duration=float(duration))


def simulate_switched_telegraph(time_constants: RtnTimeConstants,
                                on_fraction: float, period: float,
                                n_periods: int, seed=None) -> TelegraphTrace:
    """Simulate a trap under a square-wave gate bias.

    The gate is ON for ``on_fraction * period`` then OFF for the rest of
    each period, for ``n_periods`` periods; within each phase the trap uses
    the corresponding ON/OFF time constants.  The long-run occupancy of this
    trace validates the duty-averaged eq. (7)-(8) when the period is short
    compared to the dwell times (fast-switching limit, the regime the paper
    assumes).
    """
    if not 0.0 <= on_fraction <= 1.0:
        raise ValueError(f"on_fraction must lie in [0, 1], got {on_fraction}")
    if period <= 0 or n_periods < 1:
        raise ValueError("period must be positive and n_periods >= 1")
    rng = as_generator(seed)

    duration = period * n_periods
    on_length = on_fraction * period
    state = int(rng.random() < 0.5)
    times = [0.0]
    states = [state]

    # Piecewise-exponential dwell simulation, advancing phase by phase.
    # Phase boundaries are computed from the period index (never from a
    # floating-point modulo of the running time, which can stall the loop
    # at boundaries): within each phase the hazard is constant, and by the
    # memoryless property the dwell can be re-drawn at each phase entry.
    for k in range(n_periods):
        period_start = k * period
        phases = (
            (period_start, on_length,
             time_constants.tau_e_on, time_constants.tau_c_on),
            (period_start + on_length, period - on_length,
             time_constants.tau_e_off, time_constants.tau_c_off),
        )
        for phase_start, phase_length, tau_e, tau_c in phases:
            if phase_length <= 0.0:
                continue
            t = phase_start
            phase_end = phase_start + phase_length
            while True:
                dwell = rng.exponential(tau_e if state else tau_c)
                if t + dwell >= phase_end:
                    break  # survive to the next phase
                t += dwell
                state = 1 - state
                times.append(t)
                states.append(state)
    return TelegraphTrace(times=np.array(times),
                          states=np.array(states, dtype=np.int8),
                          duration=float(duration))
