"""Time-domain RTN driving for transient simulation.

This is the *expensive reference methodology* the paper positions itself
against (its references [2] Ye et al. and [3] MUSTARD simulate RTN in the
time domain): every trap in every transistor is simulated as an explicit
telegraph process, and the instantaneous threshold shifts feed a
transistor-level transient run.

:class:`RtnTransientDriver` pre-simulates one telegraph trajectory per
trap (trap counts drawn Poissonian from the device's mean count) and, used
as a :class:`~repro.spice.transient.TransientSolver` ``update_hook``,
moves each MOSFET's ``delta_vth`` along those trajectories.

Note the simplification relative to a fully bias-coupled simulation: the
trajectories use the duty-averaged time constants (paper eq. 7-8) rather
than re-reading each device's instantaneous gate voltage -- consistent
with the stationary model the estimators use, and sufficient for the
cost/agreement studies in ``examples/transient_read.py`` and
``bench_timedomain.py``.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEVICE_ORDER, PaperConditions
from repro.rng import as_generator, spawn
from repro.rtn.duty import device_on_fractions
from repro.rtn.telegraph import TelegraphProcess, TelegraphTrace
from repro.rtn.traps import TrapEnsemble
from repro.spice.netlist import Circuit


class RtnTransientDriver:
    """Telegraph-noise driver for the six devices of a cell netlist.

    Parameters
    ----------
    conditions:
        Experimental conditions (trap density, time constants, geometry).
    alpha:
        Stored-data duty ratio (sets the duty-averaged time constants).
    duration:
        Length of the pre-simulated trajectories (same arbitrary time
        unit as the time constants).
    time_scale:
        Circuit seconds per RTN time unit.  RTN dwell times are orders of
        magnitude longer than read pulses; this factor maps the slow RTN
        clock onto circuit time (default 1.0 = same unit).
    """

    def __init__(self, conditions: PaperConditions, alpha: float,
                 duration: float, time_scale: float = 1.0, seed=None):
        if duration <= 0:
            raise ValueError(f"duration must be positive, got {duration}")
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale}")
        self.conditions = conditions
        self.alpha = float(alpha)
        self.duration = float(duration)
        self.time_scale = float(time_scale)

        rng = as_generator(seed)
        on_fractions = device_on_fractions(alpha,
                                           conditions.access_on_fraction)
        ensemble = TrapEnsemble.for_conditions(conditions, on_fractions)
        tau_c = conditions.time_constants.tau_c(on_fractions)
        tau_e = conditions.time_constants.tau_e(on_fractions)

        #: device name -> list of per-trap telegraph traces.
        self.traces: dict[str, list[TelegraphTrace]] = {}
        #: device name -> single-trap shift [V].
        self.shift_per_trap = dict(zip(DEVICE_ORDER,
                                       ensemble.shift_per_trap_v))
        for i, name in enumerate(DEVICE_ORDER):
            n_traps = int(rng.poisson(ensemble.mean_traps[i]))
            process = TelegraphProcess(float(tau_c[i]), float(tau_e[i]))
            child_rngs = spawn(rng, n_traps)
            self.traces[name] = [
                process.simulate(self.duration, seed=child)
                for child in child_rngs
            ]

    # ------------------------------------------------------------------
    def trap_counts(self) -> dict[str, int]:
        """Number of simulated traps per device."""
        return {name: len(traces) for name, traces in self.traces.items()}

    def shifts_at(self, t_circuit: float) -> dict[str, float]:
        """Per-device threshold shift [V] at circuit time ``t_circuit``."""
        t_rtn = (t_circuit / self.time_scale) % self.duration
        shifts = {}
        for name, traces in self.traces.items():
            occupied = sum(int(trace.state_at(t_rtn)) for trace in traces)
            shifts[name] = occupied * self.shift_per_trap[name]
        return shifts

    def bind(self, circuit: Circuit, static_shifts=None):
        """Build an ``update_hook`` applying RTN (plus optional static RDF
        shifts, a 6-vector in volts) to the circuit's MOSFETs."""
        static = (np.zeros(len(DEVICE_ORDER)) if static_shifts is None
                  else np.asarray(static_shifts, dtype=float))
        if static.shape != (len(DEVICE_ORDER),):
            raise ValueError(
                f"static_shifts must have shape ({len(DEVICE_ORDER)},)")

        def hook(t: float) -> None:
            rtn = self.shifts_at(t)
            circuit.set_delta_vth({
                name: rtn[name] + static[i]
                for i, name in enumerate(DEVICE_ORDER)
            })

        return hook
