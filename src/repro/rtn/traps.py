"""Trap statistics: occupancy, per-trap shift, per-device trap ensembles.

Occupancy convention
--------------------
With the paper's Section II-D definitions (``tau_e`` = mean dwell in the
captured / high-|Vth| state, ``tau_c`` = mean time to capture, i.e. dwell in
the empty state), the stationary probability that a trap holds a carrier is

.. math:: p = \\frac{\\tau_e}{\\tau_c + \\tau_e}.

The paper's printed eq. (10) instead uses ``tau_c / (tau_c + tau_e)``, which
under those definitions is the *empty* fraction.  Only the physical form
reproduces Fig. 8's U-shape (worst failure probability at duty ratio 0 or 1),
so ``"physical"`` is the default; ``"paper"`` evaluates the literal formula
for the A4 ablation (see DESIGN.md, "Substitutions").
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import (
    DEVICE_ORDER,
    CellGeometry,
    PaperConditions,
    RtnTimeConstants,
)
from repro.constants import ELEMENTARY_CHARGE, NM, oxide_capacitance_per_area

#: Valid occupancy conventions.
OCCUPANCY_CONVENTIONS = ("physical", "paper")


def stationary_occupancy(time_constants: RtnTimeConstants, on_fraction,
                         convention: str = "physical") -> np.ndarray:
    """Stationary captured probability for traps in a device whose gate is
    ON for a fraction ``on_fraction`` of the time.

    Uses the duty-averaged time constants of paper eq. (7)-(8).
    """
    if convention not in OCCUPANCY_CONVENTIONS:
        raise ValueError(
            f"convention must be one of {OCCUPANCY_CONVENTIONS}, "
            f"got {convention!r}")
    tau_c = time_constants.tau_c(on_fraction)
    tau_e = time_constants.tau_e(on_fraction)
    if convention == "physical":
        return tau_e / (tau_c + tau_e)
    return tau_c / (tau_c + tau_e)


def per_trap_shift_v(w_nm: float, l_nm: float, tox_nm: float) -> float:
    """Threshold shift of a single occupied trap [V], paper eq. (9).

    Delta V_TH = q / (C_ox * L * W) per trap (N_eff = 1).

    >>> shift = per_trap_shift_v(30.0, 16.0, 0.95)   # paper's driver
    >>> 0.008 < shift < 0.011
    True
    """
    if w_nm <= 0 or l_nm <= 0:
        raise ValueError(f"geometry must be positive, got W={w_nm}, L={l_nm}")
    cox = oxide_capacitance_per_area(tox_nm)
    area_m2 = (w_nm * NM) * (l_nm * NM)
    return ELEMENTARY_CHARGE / (cox * area_m2)


@dataclass(frozen=True)
class TrapEnsemble:
    """Aggregate trap statistics for the six cell devices at one bias.

    Attributes
    ----------
    occupancy:
        Per-device stationary captured probability, shape (6,).
    mean_traps:
        Per-device expected trap count ``lambda * W * L``, shape (6,).
    shift_per_trap_v:
        Per-device single-trap threshold shift [V], shape (6,).
    """

    occupancy: np.ndarray
    mean_traps: np.ndarray
    shift_per_trap_v: np.ndarray

    def __post_init__(self):
        n = len(DEVICE_ORDER)
        for label, arr in (("occupancy", self.occupancy),
                           ("mean_traps", self.mean_traps),
                           ("shift_per_trap_v", self.shift_per_trap_v)):
            if np.asarray(arr).shape != (n,):
                raise ValueError(f"{label} must have shape ({n},)")
        if np.any((self.occupancy < 0) | (self.occupancy > 1)):
            raise ValueError("occupancy must lie in [0, 1]")

    @property
    def poisson_rates(self) -> np.ndarray:
        """Per-device Poisson rate of occupied traps (paper eq. 10)."""
        return self.occupancy * self.mean_traps

    @property
    def mean_shift_v(self) -> np.ndarray:
        """Per-device expected RTN threshold shift [V]."""
        return self.poisson_rates * self.shift_per_trap_v

    @classmethod
    def for_conditions(cls, conditions: PaperConditions, on_fractions,
                       convention: str = "physical") -> "TrapEnsemble":
        """Build the ensemble for given per-device ON fractions."""
        on_fractions = np.asarray(on_fractions, dtype=float)
        if on_fractions.shape != (len(DEVICE_ORDER),):
            raise ValueError(
                f"on_fractions must have shape ({len(DEVICE_ORDER)},)")
        geometry: CellGeometry = conditions.geometry
        occupancy = stationary_occupancy(
            conditions.time_constants, on_fractions, convention)
        mean_traps = np.array(
            [conditions.mean_traps(name) for name in DEVICE_ORDER])
        shifts = np.array([
            per_trap_shift_v(geometry.device(name).w_nm,
                             geometry.device(name).l_nm, geometry.tox_nm)
            for name in DEVICE_ORDER
        ])
        return cls(occupancy=occupancy, mean_traps=mean_traps,
                   shift_per_trap_v=shifts)
