"""repro.runtime -- a pluggable parallel execution engine.

One :class:`Executor` API, three backends (``serial``, ``thread``,
``process``), bit-identical results across all of them for a fixed seed
(chunk plans and per-chunk RNG spawning are backend-independent), bounded
retries with serial fallback, and per-chunk :class:`RunMetrics`
telemetry.  This is the seam the estimator hot paths
(:class:`~repro.core.ecripse.EcripseEstimator`,
:class:`~repro.core.filter.ParticleFilterBank`,
:class:`~repro.core.naive.NaiveMonteCarlo`) execute through; later
sharding / async / multi-host work plugs in behind the same
:class:`ExecutionConfig`.
"""

from __future__ import annotations

from repro.runtime.backends import ProcessBackend, ThreadBackend, make_backend
from repro.runtime.chunking import chunk_sizes, plan_chunks
from repro.runtime.config import BACKENDS, ExecutionConfig
from repro.runtime.executor import Executor
from repro.runtime.metrics import ChunkRecord, RunMetrics
from repro.runtime.shm import ShmArraySpec, ShmTransport, shm_map_task
from repro.runtime.signals import (
    GracefulShutdown,
    default_coordinator,
    shutdown_requested,
)
from repro.runtime.tasks import (
    evaluate_indicator,
    evaluate_indicator_stats,
    indicator_perf_stats,
    perf_stats_delta,
)

__all__ = [
    "BACKENDS",
    "ChunkRecord",
    "ExecutionConfig",
    "Executor",
    "GracefulShutdown",
    "ProcessBackend",
    "RunMetrics",
    "ShmArraySpec",
    "ShmTransport",
    "ThreadBackend",
    "chunk_sizes",
    "default_coordinator",
    "evaluate_indicator",
    "evaluate_indicator_stats",
    "indicator_perf_stats",
    "make_backend",
    "perf_stats_delta",
    "plan_chunks",
    "shm_map_task",
    "shutdown_requested",
]
