"""Worker-pool backends behind the :class:`~repro.runtime.executor.Executor`.

Each backend wraps a ``concurrent.futures`` pool created lazily on first
submit and disposable via :meth:`close` (a closed backend transparently
re-creates its pool on the next submit, so executors can be reused).
The serial "backend" is intentionally absent: the executor runs serial
work inline so that laziness (early stopping) costs nothing.

``thread`` shares the interpreter -- cheap to start, but the pure-Python
SPICE solver holds the GIL, so it only overlaps the NumPy-released
sections.  ``process`` pays pickling/startup per task but scales the
solver across cores; see docs/TUNING.md for the trade-off.
"""

from __future__ import annotations

import signal
from multiprocessing import resource_tracker
from concurrent.futures import (
    Executor as FuturesExecutor,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
)
from typing import Callable

from repro.runtime.config import ExecutionConfig


def _worker_ignores_interrupt() -> None:
    """Pool-worker initializer: leave interrupt handling to the parent.

    A Ctrl-C is delivered to the whole foreground process group, so
    without this every pool worker dies of ``KeyboardInterrupt``
    mid-chunk and the parent's graceful drain (finish in-flight chunks,
    flush metrics, final checkpoint -- see :mod:`repro.runtime.signals`)
    collects ``BrokenProcessPool`` instead of results.  Workers ignore
    SIGINT; the parent coordinates the shutdown and closes the pool.
    """
    signal.signal(signal.SIGINT, signal.SIG_IGN)


class PoolBackend:
    """Shared lazy-pool plumbing for the thread and process backends."""

    name = "pool"

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.workers = workers
        self._pool: FuturesExecutor | None = None

    def _make_pool(self) -> FuturesExecutor:  # pragma: no cover
        raise NotImplementedError

    def submit(self, fn: Callable, /, *args) -> Future:
        """Schedule ``fn(*args)`` on the pool (created on first use)."""
        if self._pool is None:
            self._pool = self._make_pool()
        return self._pool.submit(fn, *args)

    def close(self) -> None:
        """Shut the pool down; a later submit re-creates it."""
        if self._pool is not None:
            self._pool.shutdown(wait=True, cancel_futures=True)
            self._pool = None

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(workers={self.workers})"


class ThreadBackend(PoolBackend):
    """``ThreadPoolExecutor``-backed execution (shared interpreter)."""

    name = "thread"

    def _make_pool(self) -> ThreadPoolExecutor:
        return ThreadPoolExecutor(max_workers=self.workers,
                                  thread_name_prefix="repro-runtime")


class ProcessBackend(PoolBackend):
    """``ProcessPoolExecutor``-backed execution (one interpreter per
    worker; tasks and results travel by pickle)."""

    name = "process"

    def _make_pool(self) -> ProcessPoolExecutor:
        # Start the resource tracker *before* the workers exist so they
        # inherit it: shared-memory attaches in workers (see
        # :mod:`repro.runtime.shm`) then register into the parent's
        # tracker, whose cache is a set -- duplicates of the parent's
        # own registration collapse and the parent's unlink settles the
        # books.  Workers started first would each spawn a private
        # tracker that warns about "leaked" segments the parent has
        # long unlinked.
        resource_tracker.ensure_running()
        return ProcessPoolExecutor(
            max_workers=self.workers,
            initializer=_worker_ignores_interrupt)


def make_backend(config: ExecutionConfig) -> PoolBackend | None:
    """Backend instance for ``config`` (``None`` for serial)."""
    if config.backend == "serial":
        return None
    cls = {"thread": ThreadBackend, "process": ProcessBackend}[config.backend]
    return cls(config.effective_workers)
