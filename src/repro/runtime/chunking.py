"""Deterministic chunk planning.

A *chunk plan* is a list of slices covering ``range(n_items)`` in order.
It depends only on ``(n_items, chunk_size)`` -- never on the backend or
worker count -- which is what makes parallel runs bit-identical to serial
ones: the plan fixes both the work decomposition and (for RNG-consuming
workloads) the per-chunk generator spawning order.
"""

from __future__ import annotations


def plan_chunks(n_items: int, chunk_size: int) -> list[slice]:
    """Slices splitting ``range(n_items)`` into chunks of ``chunk_size``.

    The last chunk may be short; ``n_items == 0`` yields an empty plan.
    """
    if n_items < 0:
        raise ValueError(f"n_items must be >= 0, got {n_items}")
    if chunk_size < 1:
        raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
    return [slice(start, min(start + chunk_size, n_items))
            for start in range(0, n_items, chunk_size)]


def chunk_sizes(n_items: int, chunk_size: int) -> list[int]:
    """Lengths of the chunks :func:`plan_chunks` would produce."""
    return [s.stop - s.start for s in plan_chunks(n_items, chunk_size)]
