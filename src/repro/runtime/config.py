"""Execution configuration for the parallel runtime.

An :class:`ExecutionConfig` fully determines *how* a workload is executed
(backend, worker count, retry policy) and -- for RNG-consuming workloads
-- *how it is decomposed* into chunks.  The decomposition is part of the
statistical definition of a run: every chunk receives its own child
generator (see :meth:`repro.runtime.executor.Executor.map_chunks`), so two
runs with the same seed and the same chunking are bit-identical on every
backend, while changing ``chunk_size`` reshuffles the streams exactly
like changing ``batch_size`` always has for
:class:`~repro.core.naive.NaiveMonteCarlo`.

For that reason the *default* chunk size of an RNG-dependent workload
depends only on the problem size, never on the backend or worker count --
``serial``, ``thread`` and ``process`` runs of the same problem agree
bit-for-bit out of the box.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, replace

#: Recognised backend names.
BACKENDS: tuple[str, ...] = ("serial", "thread", "process")

#: Default chunk size for RNG-dependent workloads.  Backend-independent by
#: design so parallel and serial runs share one stream decomposition.
DEFAULT_RNG_CHUNK = 1024

#: Smallest chunk the pure-workload heuristic will produce; keeps the
#: vectorised indicator batches from degenerating into per-row calls.
MIN_PURE_CHUNK = 64


@dataclass(frozen=True)
class ExecutionConfig:
    """How estimator workloads are executed.

    Attributes
    ----------
    backend:
        ``"serial"`` (in-process, the default), ``"thread"``
        (``ThreadPoolExecutor``) or ``"process"``
        (``ProcessPoolExecutor``).
    workers:
        Pool size for the parallel backends; ``None`` means
        ``os.cpu_count()``.
    chunk_size:
        Rows per chunk when splitting a sample block; ``None`` picks a
        heuristic (problem-size-only for RNG-dependent workloads, scaled
        to ``4 * workers`` chunks for pure ones).
    max_retries:
        In-backend retries per failed chunk before falling back.
    retry_backoff_s:
        Sleep before retry ``k`` is ``k * retry_backoff_s`` (bounded
        linear backoff).
    fallback_serial:
        After retries are exhausted (or the pool itself breaks), run the
        chunk in the parent process; disabling this turns chunk failures
        into :class:`~repro.errors.ExecutionError`.
    shm_threshold_bytes:
        Minimum sample-block size (bytes) for which the ``process``
        backend ships chunks through ``multiprocessing.shared_memory``
        instead of pickles (see :mod:`repro.runtime.shm`); smaller
        blocks are not worth the segment round-trip.  ``None`` disables
        the zero-copy transport entirely.  Pure transport policy --
        results are bit-identical either way -- so, like every other
        field here, it never participates in checkpoint fingerprints.
    """

    backend: str = "serial"
    workers: int | None = None
    chunk_size: int | None = None
    max_retries: int = 2
    retry_backoff_s: float = 0.05
    fallback_serial: bool = True
    shm_threshold_bytes: int | None = 1 << 20

    def __post_init__(self) -> None:
        if self.backend not in BACKENDS:
            raise ValueError(
                f"unknown backend {self.backend!r}; expected one of "
                f"{BACKENDS}")
        if self.workers is not None and self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.chunk_size is not None and self.chunk_size < 1:
            raise ValueError(
                f"chunk_size must be >= 1, got {self.chunk_size}")
        if self.max_retries < 0:
            raise ValueError(
                f"max_retries must be >= 0, got {self.max_retries}")
        if self.retry_backoff_s < 0:
            raise ValueError(
                f"retry_backoff_s must be >= 0, got {self.retry_backoff_s}")
        if (self.shm_threshold_bytes is not None
                and self.shm_threshold_bytes < 0):
            raise ValueError(
                f"shm_threshold_bytes must be >= 0 or None, got "
                f"{self.shm_threshold_bytes}")

    # ------------------------------------------------------------------
    @property
    def is_parallel(self) -> bool:
        """Whether a worker pool is used at all."""
        return self.backend != "serial"

    @property
    def effective_workers(self) -> int:
        """Resolved pool size (1 for the serial backend)."""
        if not self.is_parallel:
            return 1
        if self.workers is not None:
            return self.workers
        return os.cpu_count() or 1

    def resolve_chunk_size(self, n_items: int,
                           rng_dependent: bool = False) -> int:
        """Chunk size for a block of ``n_items`` rows.

        RNG-dependent workloads get a backend-independent default so the
        stream decomposition (and therefore the estimate) is identical
        across backends; pure workloads scale to roughly four chunks per
        worker, collapsing to one chunk on the serial backend.
        """
        if self.chunk_size is not None:
            return self.chunk_size
        if n_items < 1:
            return 1
        if rng_dependent:
            return min(n_items, DEFAULT_RNG_CHUNK)
        if not self.is_parallel:
            return n_items
        per_chunk = -(-n_items // (4 * self.effective_workers))
        return min(n_items, max(MIN_PURE_CHUNK, per_chunk))

    def with_(self, **changes) -> "ExecutionConfig":
        """Return a copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)
