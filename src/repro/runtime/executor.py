"""The pluggable execution engine.

:class:`Executor` runs estimator workloads as ordered task lists on a
configurable backend (serial / thread pool / process pool) with

* **deterministic decomposition** -- :meth:`map_chunks` splits a sample
  block with :func:`~repro.runtime.chunking.plan_chunks` and spawns one
  child generator per chunk via :func:`repro.rng.spawn`, so for a fixed
  seed and chunking the concatenated result is bit-identical on every
  backend (results are always collected in plan order, regardless of
  completion order);
* **fault tolerance** -- a chunk that raises on the backend is retried
  with bounded linear backoff and finally re-run serially in the parent
  process; a broken pool (killed worker, unpicklable task) demotes the
  whole run to serial instead of failing it;
* **telemetry** -- every call appends a
  :class:`~repro.runtime.metrics.RunMetrics` (per-chunk wall time,
  attempts, fallbacks, plus the simulation-count delta of an attached
  :class:`~repro.core.indicator.SimulationCounter`) to :attr:`history`.

The task callable and its arguments must be picklable for the process
backend; module-level functions and the repro indicator / RTN-model /
space objects all are.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future
from typing import TYPE_CHECKING, Any, Callable, Iterator

import numpy as np

from repro.errors import ExecutionError
from repro.rng import spawn
from repro.runtime.backends import make_backend
from repro.runtime.signals import shutdown_requested
from repro.runtime.chunking import plan_chunks
from repro.runtime.config import ExecutionConfig
from repro.runtime.metrics import ChunkRecord, RunMetrics
from repro.runtime.shm import ShmTransport, shm_map_task

if TYPE_CHECKING:  # avoid a runtime repro.core <-> repro.runtime cycle
    from repro.core.indicator import SimulationCounter


def _timed(fn: Callable, /, *args) -> tuple[Any, float]:
    """Run ``fn(*args)`` and return ``(result, wall_time_s)``.

    Module-level so it pickles for the process backend.
    """
    t0 = time.perf_counter()
    result = fn(*args)
    return result, time.perf_counter() - t0


class Executor:
    """Backend-pluggable, fault-tolerant, ordered task execution.

    Parameters
    ----------
    config:
        :class:`~repro.runtime.config.ExecutionConfig`; default serial.
    counter:
        Optional :class:`~repro.core.indicator.SimulationCounter` whose
        before/after delta is recorded per run in the metrics.
    """

    def __init__(self, config: ExecutionConfig | None = None,
                 counter: "SimulationCounter | None" = None) -> None:
        self.config = config if config is not None else ExecutionConfig()
        self.counter = counter
        self.history: list[RunMetrics] = []
        self._backend = make_backend(self.config)
        self._broken = False

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------
    def map_chunks(self, fn, block: np.ndarray, *extra, rng=None,
                   chunk_size: int | None = None,
                   simulations: int | None = None,
                   label: str = "map_chunks",
                   stats_sink=None,
                   result_dtype=None) -> np.ndarray:
        """Apply ``fn`` to row-chunks of ``block``, concatenated in order.

        ``fn`` is called as ``fn(chunk, *extra)``, or
        ``fn(chunk, child_rng, *extra)`` when ``rng`` is given -- one
        statistically independent child generator per chunk, spawned in
        plan order from ``rng`` so the decomposition (and hence the
        result) is identical on every backend.  An empty block short-cuts
        to one in-process call so result dtype/shape still come from
        ``fn``.

        ``simulations`` declares how many transistor-level simulations
        this run stands for: the count is added to the attached
        :class:`~repro.core.indicator.SimulationCounter` *before* any
        work is dispatched -- so a budget circuit-breaker trips before
        spending compute -- and recorded in the run's metrics.

        ``stats_sink`` marks ``fn`` as a stats-reporting task returning
        ``(result, stats_dict)`` pairs: the sink is called as
        ``stats_sink(stats, where)`` per chunk -- ``where`` being the
        :class:`~repro.runtime.metrics.ChunkRecord` location -- so
        callers can merge worker-side perf counters that only
        process-pool chunks accumulate out of the parent's sight.

        ``result_dtype`` declares that ``fn`` returns one scalar of
        that dtype per row, which enables the zero-copy shared-memory
        transport (:mod:`repro.runtime.shm`) on the ``process`` backend
        for RNG-free float blocks above
        :attr:`~repro.runtime.config.ExecutionConfig.shm_threshold_bytes`.
        The transport never changes results -- tasks see the same rows
        either way -- so callers declare it unconditionally.
        """
        block = np.asarray(block)
        n = block.shape[0]
        size = (chunk_size if chunk_size is not None
                else self.config.resolve_chunk_size(
                    n, rng_dependent=rng is not None))
        slices = plan_chunks(n, size)
        if not slices:
            pre = self._pre_count(simulations)
            child = spawn(rng, 1)[0] if rng is not None else None
            args = ((block, child) + extra if child is not None
                    else (block,) + extra)
            result, _ = _timed(fn, *args)
            result = self._apply_stats(result, "serial", stats_sink)
            self._record(label, [], n_items=0, n_simulations=pre)
            return np.asarray(result)
        sizes = [sl.stop - sl.start for sl in slices]
        transport = self._open_transport(block, rng, result_dtype)
        try:
            if transport is not None:
                task_fn = shm_map_task
                tasks = [(fn, transport.in_spec, transport.out_spec,
                          sl.start, sl.stop) + extra for sl in slices]
            else:
                task_fn = fn
                rngs = spawn(rng, len(slices)) if rng is not None else None
                tasks = []
                for i, sl in enumerate(slices):
                    chunk = block[sl]
                    if rngs is not None:
                        tasks.append((chunk, rngs[i]) + extra)
                    else:
                        tasks.append((chunk,) + extra)
            outputs = []
            for result, record in self.iter_tasks(
                    task_fn, tasks, sizes=sizes, label=label,
                    simulations=simulations, with_records=True):
                outputs.append(self._apply_stats(result, record.where,
                                                 stats_sink))
            if transport is not None:
                if self.history:
                    self.history[-1].shm_bytes += transport.bytes_shipped
                return transport.result()
            return np.concatenate([np.asarray(r) for r in outputs])
        finally:
            if transport is not None:
                transport.close()

    def _open_transport(self, block, rng, result_dtype
                        ) -> ShmTransport | None:
        """Shared-memory transport for this call, or ``None`` (pickles).

        Engaged only when it can pay off: process backend (a healthy
        one -- a broken pool runs serially in-parent where views are
        free anyway), RNG-free workload (child generators do not ride
        segments), caller-declared per-row result dtype, and a
        contiguous float block at or above the configured threshold.
        A segment-creation failure degrades to the pickle path.
        """
        cfg = self.config
        if (result_dtype is None or rng is not None
                or cfg.backend != "process"
                or cfg.shm_threshold_bytes is None
                or self._backend is None or self._broken
                or block.dtype.kind != "f"
                or not block.flags["C_CONTIGUOUS"]
                or block.nbytes < cfg.shm_threshold_bytes):
            return None
        try:
            return ShmTransport(block, result_dtype)
        except (OSError, ValueError):  # pragma: no cover - no /dev/shm
            return None

    @staticmethod
    def _apply_stats(result, where: str, stats_sink):
        """Unpack a stats task's ``(payload, stats)`` pair into the sink."""
        if stats_sink is None:
            return result
        payload, stats = result
        stats_sink(stats if isinstance(stats, dict) else {}, where)
        return payload

    def map_tasks(self, fn, tasks: list[tuple], sizes=None,
                  simulations: int | None = None,
                  label: str = "map_tasks") -> list:
        """Run ``fn(*args)`` for every argument tuple, results in order."""
        return list(self.iter_tasks(fn, tasks, sizes=sizes, label=label,
                                    simulations=simulations))

    def iter_tasks(self, fn, tasks: list[tuple], sizes=None,
                   simulations: int | None = None,
                   label: str = "iter_tasks",
                   with_records: bool = False) -> Iterator[Any]:
        """Yield results of ``fn(*args)`` in task order, lazily.

        Stopping the iteration early abandons the remaining tasks (on the
        serial backend they never start; on pooled backends outstanding
        futures are cancelled best-effort -- already-running ones finish
        and are discarded, so early stopping never changes the consumed
        prefix).  Telemetry is finalised when the generator exhausts or
        is closed.

        ``with_records=True`` yields ``(result, ChunkRecord)`` pairs
        instead, exposing per-chunk provenance (``record.where``) to
        callers that must know whether a result was produced in the
        parent process or on a pool worker.
        """
        tasks = list(tasks)
        if sizes is None:
            sizes = [1] * len(tasks)
        pre = self._pre_count(simulations)
        return self._run_ordered(fn, tasks, list(sizes), label, pre,
                                 with_records)

    def aggregate(self, label: str = "aggregate") -> RunMetrics:
        """All runs of this executor merged into one metrics object."""
        merged = RunMetrics.merge(self.history, label=label)
        if not self.history:
            merged.backend = self.config.backend
            merged.workers = self.config.effective_workers
        return merged

    @property
    def last_metrics(self) -> RunMetrics | None:
        return self.history[-1] if self.history else None

    def close(self) -> None:
        """Shut the worker pool down (it is re-created on next use)."""
        if self._backend is not None:
            self._backend.close()

    def __enter__(self) -> "Executor":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------
    def _pre_count(self, simulations: int | None) -> int:
        """Account declared simulations up-front (budget trips here)."""
        if not simulations:
            return 0
        if self.counter is not None:
            self.counter.add(simulations)
        return int(simulations)

    def _run_ordered(self, fn, tasks, sizes, label,
                     pre_simulations: int = 0,
                     with_records: bool = False) -> Iterator[Any]:
        start = time.perf_counter()
        count0 = self.counter.count if self.counter is not None else 0
        records: list[ChunkRecord] = []
        futures: list[Future | None] = []

        def emit(result):
            # the helper that produced `result` appended its record
            return (result, records[-1]) if with_records else result

        try:
            if self._backend is None or self._broken:
                for index, args in enumerate(tasks):
                    yield emit(self._run_serial(fn, index, args,
                                                sizes[index], records))
                return
            for args in tasks:
                futures.append(self._submit_safe(fn, args))
            for index, (args, future) in enumerate(zip(tasks, futures)):
                futures[index] = None  # consumed; no cancel on close
                yield emit(self._collect(fn, index, args, sizes[index],
                                         future, records))
        finally:
            for future in futures:
                if future is not None:
                    future.cancel()
            elapsed = time.perf_counter() - start
            count1 = self.counter.count if self.counter is not None else 0
            self._record(label, records, n_items=sum(
                r.size for r in records), wall_time_s=elapsed,
                n_simulations=(count1 - count0) + pre_simulations)

    def _submit_safe(self, fn, args) -> Future:
        """Submit to the pool; a submit-time failure (shut-down or broken
        pool) is converted into a failed future so the per-chunk retry /
        fallback path handles it uniformly."""
        try:
            return self._backend.submit(_timed, fn, *args)
        except (RuntimeError, BrokenExecutor) as exc:
            failed: Future = Future()
            failed.set_exception(exc)
            return failed

    def _collect(self, fn, index, args, size, future, records) -> Any:
        """Resolve one chunk: retries on the backend, then serial fallback."""
        cfg = self.config
        attempts = 1
        while True:
            try:
                result, wall = future.result()
                records.append(ChunkRecord(
                    index=index, size=size, attempts=attempts,
                    wall_time_s=wall, where=self._backend.name))
                return result
            except Exception as exc:
                if isinstance(exc, BrokenExecutor):
                    self._broken = True
                if self._broken or attempts > cfg.max_retries:
                    return self._fallback(fn, index, args, size, attempts,
                                          records, exc)
                # Drain fast under a pending graceful shutdown: the
                # retry itself still happens (the chunk must complete
                # for the result to stay deterministic), but the
                # backoff sleep would only delay the final checkpoint.
                if not shutdown_requested():
                    time.sleep(cfg.retry_backoff_s * attempts)
                attempts += 1
                future = self._submit_safe(fn, args)

    def _fallback(self, fn, index, args, size, attempts, records,
                  cause) -> Any:
        if not self.config.fallback_serial:
            raise ExecutionError(
                f"chunk {index} failed after {attempts} attempt(s) on the "
                f"{self.config.backend} backend: {cause}",
                chunk_index=index) from cause
        try:
            result, wall = _timed(fn, *args)
        except Exception as exc:
            raise ExecutionError(
                f"chunk {index} failed on the {self.config.backend} "
                f"backend and in the serial fallback: {exc}",
                chunk_index=index) from exc
        records.append(ChunkRecord(
            index=index, size=size, attempts=attempts, wall_time_s=wall,
            where="serial-fallback", fell_back=True))
        return result

    def _run_serial(self, fn, index, args, size, records) -> Any:
        result, wall = _timed(fn, *args)
        records.append(ChunkRecord(
            index=index, size=size, attempts=1, wall_time_s=wall,
            where="serial"))
        return result

    def _record(self, label, records, n_items, wall_time_s: float = 0.0,
                n_simulations: int = 0) -> None:
        self.history.append(RunMetrics(
            label=label, backend=self.config.backend,
            workers=self.config.effective_workers,
            wall_time_s=wall_time_s, n_items=n_items,
            n_simulations=n_simulations, records=records))
