"""Per-chunk telemetry of the parallel runtime.

Every :meth:`~repro.runtime.executor.Executor.map_chunks` /
``map_tasks`` call produces one :class:`RunMetrics` holding a
:class:`ChunkRecord` per executed chunk; the executor keeps them all in
``Executor.history`` and :meth:`RunMetrics.merge` aggregates across calls
(e.g. for a whole estimator run).  Reports are available as text
(:meth:`RunMetrics.report`) and JSON (:meth:`RunMetrics.to_json`).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field


@dataclass
class ChunkRecord:
    """Outcome of one executed chunk.

    Attributes
    ----------
    index:
        Position of the chunk in the plan (also the result order).
    size:
        Rows in the chunk (1 for heterogeneous ``map_tasks`` tasks).
    attempts:
        Total attempts on the configured backend (1 = first try worked).
    wall_time_s:
        Wall time of the successful attempt (task body only, excluding
        queueing).
    where:
        Backend that produced the accepted result (``"serial"``,
        ``"thread"``, ``"process"`` or ``"serial-fallback"``).
    fell_back:
        Whether the accepted result came from the in-parent fallback.
    """

    index: int
    size: int
    attempts: int
    wall_time_s: float
    where: str
    fell_back: bool = False


@dataclass
class RunMetrics:
    """Aggregated telemetry of one (or several merged) executor calls."""

    label: str
    backend: str
    workers: int
    wall_time_s: float = 0.0
    n_items: int = 0
    n_simulations: int = 0
    #: bytes moved through the zero-copy shared-memory transport
    #: (:mod:`repro.runtime.shm`) instead of pickles; 0 when the run
    #: used the pickle path.
    shm_bytes: int = 0
    records: list[ChunkRecord] = field(default_factory=list)
    #: per-stage profiling spans (``{name: {"total_s", "count"}}``),
    #: folded in by the estimators from their StageProfiler.  Spans may
    #: nest, so totals overlap rather than partition wall_time_s.
    spans: dict[str, dict] = field(default_factory=dict)

    # ------------------------------------------------------------------
    @property
    def n_chunks(self) -> int:
        return len(self.records)

    @property
    def n_retries(self) -> int:
        """Extra backend attempts beyond the first, summed over chunks."""
        return sum(r.attempts - 1 for r in self.records)

    @property
    def n_fallbacks(self) -> int:
        """Chunks whose accepted result came from the serial fallback."""
        return sum(1 for r in self.records if r.fell_back)

    @property
    def items_per_s(self) -> float:
        """End-to-end throughput in rows per second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.n_items / self.wall_time_s

    @property
    def chunk_time_s(self) -> float:
        """Summed in-task wall time (> wall_time_s when workers overlap)."""
        return sum(r.wall_time_s for r in self.records)

    # ------------------------------------------------------------------
    def as_dict(self, include_chunks: bool = False) -> dict:
        """JSON-serialisable summary (optionally with per-chunk rows)."""
        out = {
            "label": self.label,
            "backend": self.backend,
            "workers": self.workers,
            "wall_time_s": self.wall_time_s,
            "n_items": self.n_items,
            "n_simulations": self.n_simulations,
            "n_chunks": self.n_chunks,
            "n_retries": self.n_retries,
            "n_fallbacks": self.n_fallbacks,
            "items_per_s": self.items_per_s,
            "chunk_time_s": self.chunk_time_s,
            "shm_bytes": self.shm_bytes,
        }
        if self.spans:
            out["spans"] = {name: dict(stat)
                            for name, stat in self.spans.items()}
        if include_chunks:
            out["chunks"] = [vars(r).copy() for r in self.records]
        return out

    def to_json(self, include_chunks: bool = False, indent: int = 2) -> str:
        return json.dumps(self.as_dict(include_chunks=include_chunks),
                          indent=indent)

    def report(self) -> str:
        """Multi-line human-readable summary."""
        lines = [
            f"run '{self.label}' on backend={self.backend} "
            f"workers={self.workers}",
            f"  items        {self.n_items}",
            f"  chunks       {self.n_chunks}",
            f"  wall time    {self.wall_time_s:.3f} s "
            f"({self.items_per_s:.0f} items/s)",
            f"  in-task time {self.chunk_time_s:.3f} s",
            f"  simulations  {self.n_simulations}",
            f"  retries      {self.n_retries}",
            f"  fallbacks    {self.n_fallbacks}",
        ]
        if self.spans:
            lines.append("  spans:")
            for name, stat in self.spans.items():
                lines.append(
                    f"    {name:20s} {stat['total_s']:9.3f} s "
                    f"({stat['count']} call(s))")
        return "\n".join(lines)

    # ------------------------------------------------------------------
    @classmethod
    def merge(cls, runs: list["RunMetrics"],
              label: str = "aggregate") -> "RunMetrics":
        """Combine several runs into one (records are concatenated and
        re-indexed; wall times and counts add up)."""
        if not runs:
            return cls(label=label, backend="serial", workers=1)
        merged = cls(label=label, backend=runs[0].backend,
                     workers=runs[0].workers)
        for run in runs:
            for record in run.records:
                merged.records.append(ChunkRecord(
                    index=len(merged.records), size=record.size,
                    attempts=record.attempts,
                    wall_time_s=record.wall_time_s, where=record.where,
                    fell_back=record.fell_back))
            merged.wall_time_s += run.wall_time_s
            merged.n_items += run.n_items
            merged.n_simulations += run.n_simulations
            merged.shm_bytes += run.shm_bytes
            for name, stat in run.spans.items():
                span = merged.spans.setdefault(
                    name, {"total_s": 0.0, "count": 0})
                span["total_s"] += float(stat.get("total_s", 0.0))
                span["count"] += int(stat.get("count", 0))
        return merged
