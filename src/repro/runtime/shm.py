"""Zero-copy chunk transport over POSIX shared memory.

The process backend normally pickles every chunk of the sample block
into the task tuple and pickles the result array back -- for the
labelling hot path that is two full copies of the ``delta_vth`` block
per run plus per-chunk deserialisation in the workers.  This module
ships both directions through :mod:`multiprocessing.shared_memory`
instead:

* the parent copies the block **once** into a named input segment and
  pre-creates an output segment sized one result scalar per row;
* each task tuple carries only a tiny picklable :class:`ShmArraySpec`
  pair plus ``(start, stop)`` row bounds;
* the worker attaches both segments, evaluates the user task on a
  zero-copy view of its rows and writes the result into the matching
  output rows.

Writes are idempotent (a retried chunk rewrites exactly its own rows),
workers never overlap rows, and the serial fallback works unchanged --
attaching by name succeeds in the parent process too.  The parent owns
both segments and unlinks them when the call finishes; workers
deregister their attachments from the resource tracker so a worker
exit cannot reap a segment the parent is still using.

The transport is an implementation detail of
:meth:`repro.runtime.executor.Executor.map_chunks`: callers opt in by
declaring a ``result_dtype`` and the executor engages it only when the
backend is ``process``, the workload is RNG-free and the block clears
:attr:`~repro.runtime.config.ExecutionConfig.shm_threshold_bytes`.
Results are bit-identical either way -- the task body sees the same
float64 rows whether they arrived through a pickle or a segment view.
"""

from __future__ import annotations

from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArraySpec", "ShmTransport", "shm_map_task"]


@dataclass(frozen=True)
class ShmArraySpec:
    """Picklable descriptor of an ndarray living in a named segment."""

    name: str
    shape: tuple
    dtype: str


def _attach(spec: ShmArraySpec):
    """Attach to a parent-owned segment; returns ``(shm, array_view)``.

    Attaching re-registers the name with the resource tracker (Python
    gained an opt-out ``track=`` flag only in 3.13).  Pool workers
    share the parent's tracker, whose cache is a *set*, so the extra
    registration collapses into the parent's own and the segment still
    has exactly one owner: deliberately no per-attach ``unregister``
    here -- firing one per chunk would strip the parent's registration
    and make the parent's later ``unlink`` race the tracker.
    """
    shm = shared_memory.SharedMemory(name=spec.name)
    array = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype),
                       buffer=shm.buf)
    return shm, array


def shm_map_task(fn, in_spec: ShmArraySpec, out_spec: ShmArraySpec,
                 start: int, stop: int, *extra):
    """Module-level wrapper task executed on the worker.

    Applies ``fn`` to rows ``[start, stop)`` of the input segment (a
    zero-copy view) and writes the result into the same rows of the
    output segment.  ``fn`` may return either a plain result array or a
    ``(result, stats_dict)`` pair; the stats ride back through the
    normal (tiny) pickled return value as ``(None, stats)`` -- the
    result rows themselves never leave shared memory.
    """
    in_shm, in_array = _attach(in_spec)
    out_shm, out_array = _attach(out_spec)
    try:
        ret = fn(in_array[start:stop], *extra)
        stats = None
        if (isinstance(ret, tuple) and len(ret) == 2
                and isinstance(ret[1], dict)):
            ret, stats = ret
        out_array[start:stop] = np.asarray(ret, dtype=out_array.dtype)
        return None, stats
    finally:
        in_shm.close()
        out_shm.close()


class ShmTransport:
    """Parent-side segment pair for one ``map_chunks`` call.

    Creating the transport copies ``block`` into the input segment and
    zero-fills an output segment of one ``result_dtype`` scalar per
    row.  The parent must call :meth:`close` (unlink) when the call
    finishes, successful or not -- segments are not garbage collected
    with the object.
    """

    def __init__(self, block: np.ndarray, result_dtype) -> None:
        self._segments: list[shared_memory.SharedMemory] = []
        out_dtype = np.dtype(result_dtype)
        self.in_spec = self._create(block.shape, block.dtype, init=block)
        self.out_spec = self._create((block.shape[0],), out_dtype)
        #: bytes moved through shared memory instead of pickles
        #: (telemetry; see ``RunMetrics.shm_bytes``).
        self.bytes_shipped = int(block.nbytes
                                 + block.shape[0] * out_dtype.itemsize)

    def _create(self, shape, dtype, init=None) -> ShmArraySpec:
        size = max(1, int(np.prod(shape)) * dtype.itemsize)
        shm = shared_memory.SharedMemory(create=True, size=size)
        self._segments.append(shm)
        array = np.ndarray(shape, dtype=dtype, buffer=shm.buf)
        array[...] = 0 if init is None else init
        return ShmArraySpec(shm.name, tuple(shape), dtype.str)

    def result(self) -> np.ndarray:
        """Copy of the filled output array (call after all chunks)."""
        shm = self._segments[1]
        array = np.ndarray(self.out_spec.shape,
                           dtype=np.dtype(self.out_spec.dtype),
                           buffer=shm.buf)
        return array.copy()

    def close(self) -> None:
        """Release and unlink both segments (idempotent)."""
        for shm in self._segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - double close
                pass
        self._segments = []
