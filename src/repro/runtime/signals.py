"""Graceful SIGTERM/SIGINT handling for long-running workloads.

A :class:`GracefulShutdown` coordinator turns process signals into a
*cooperative* stop request: the handler only sets a flag, and the
running workload drains to its next checkpoint-safe boundary, where
:meth:`repro.checkpoint.manager.CheckpointManager.maybe_save` force-
writes a final snapshot and raises
:class:`~repro.errors.ShutdownRequested`.  The run then unwinds
normally -- worker pools are shut down with ``Executor.close()``
(``shutdown(wait=True)``), run metrics are flushed by the executor's
``finally`` accounting, and caches are persisted by the caller --
instead of relying on interpreter teardown / pool GC, which on a
``ProcessPoolExecutor`` routinely leaks orphan workers.

A *second* signal escalates: the original handler is restored and
re-raised, so a stuck drain can still be interrupted the hard way.

The module-level :func:`default_coordinator` is what the checkpoint
manager consults; entry points (the ``ecripse`` CLI, the
:mod:`repro.service` daemon) call :meth:`GracefulShutdown.install` on
it from the main thread.
"""

from __future__ import annotations

import signal
import threading
from typing import Callable

#: default signals a coordinator listens for.
DEFAULT_SIGNALS: tuple[signal.Signals, ...] = (
    signal.SIGTERM, signal.SIGINT)


class GracefulShutdown:
    """Thread-safe shutdown flag fed by process signals.

    The coordinator can also be tripped programmatically with
    :meth:`request` (used by tests and by the service daemon's
    HTTP-level shutdown), so nothing here requires actual signals.
    """

    def __init__(self) -> None:
        self._event = threading.Event()
        self._lock = threading.Lock()
        self._reason: str | None = None
        self._previous: dict[int, object] = {}
        self._callbacks: list[Callable[[str], None]] = []

    # -- flag ----------------------------------------------------------
    @property
    def requested(self) -> bool:
        """True once a shutdown has been requested."""
        return self._event.is_set()

    @property
    def reason(self) -> str | None:
        """What triggered the request (``"SIGTERM"``, ``"cancel"``...)."""
        with self._lock:
            return self._reason

    def request(self, reason: str = "shutdown") -> None:
        """Trip the flag (idempotent; first reason wins)."""
        callbacks: list[Callable[[str], None]] = []
        with self._lock:
            if not self._event.is_set():
                self._reason = reason
                self._event.set()
                callbacks = list(self._callbacks)
        for callback in callbacks:
            callback(reason)

    def wait(self, timeout: float | None = None) -> bool:
        """Block until a shutdown is requested (or timeout)."""
        return self._event.wait(timeout)

    def reset(self) -> None:
        """Clear the flag (tests; a daemon restart reuses the module
        coordinator)."""
        with self._lock:
            self._event.clear()
            self._reason = None

    def on_request(self, callback: Callable[[str], None]) -> None:
        """Register ``callback(reason)`` to run when the flag trips.

        Callbacks must be quick and non-blocking -- they may run inside
        a signal handler frame.  A callback registered after the flag
        already tripped fires immediately.
        """
        fire = False
        reason = "shutdown"
        with self._lock:
            self._callbacks.append(callback)
            fire = self._event.is_set()
            reason = self._reason or "shutdown"
        if fire:
            callback(reason)

    # -- signal plumbing ----------------------------------------------
    def install(self, signals: tuple[signal.Signals, ...] = DEFAULT_SIGNALS
                ) -> "GracefulShutdown":
        """Register handlers (main thread only); returns ``self``.

        The previous handlers are remembered and restored by
        :meth:`uninstall` -- or by the escalation path: a second signal
        while a drain is in progress restores the original disposition
        and re-raises it, so an operator can always force a stop.
        """
        for signum in signals:
            self._previous[int(signum)] = signal.signal(
                signum, self._handle)
        return self

    def uninstall(self) -> None:
        """Restore the handlers captured by :meth:`install`."""
        for signum, handler in self._previous.items():
            signal.signal(signum, handler)  # type: ignore[arg-type]
        self._previous.clear()

    def _handle(self, signum: int, frame: object) -> None:
        if self.requested:
            # Escalation: restore whatever was installed before us and
            # re-deliver, so a wedged drain still dies.
            previous = self._previous.get(signum, signal.SIG_DFL)
            signal.signal(signum, previous)  # type: ignore[arg-type]
            signal.raise_signal(signum)
            return
        self.request(signal.Signals(signum).name)


#: process-wide coordinator consulted by the checkpoint manager.
_DEFAULT = GracefulShutdown()


def default_coordinator() -> GracefulShutdown:
    """The process-wide coordinator (install it from an entry point)."""
    return _DEFAULT


def shutdown_requested() -> bool:
    """Cheap query used at checkpoint-safe boundaries."""
    return _DEFAULT.requested
