"""Module-level task bodies shared by the estimator hot paths.

These must live at module scope (not as closures or lambdas) so the
process backend can pickle them by qualified name.  Workload-specific
tasks live next to their callers (e.g. the naive-MC chunk task in
:mod:`repro.core.naive`); only the generic ones are collected here.
"""

from __future__ import annotations

import numpy as np


def evaluate_indicator(chunk: np.ndarray, indicator) -> np.ndarray:
    """Label one chunk with a (raw, non-counting) indicator.

    Simulation accounting stays in the parent process: callers add the
    chunk sizes to their :class:`~repro.core.indicator.SimulationCounter`
    *before* dispatch, preserving the budget circuit-breaker semantics of
    :class:`~repro.core.indicator.CountingIndicator`.
    """
    return np.asarray(indicator.evaluate(chunk), dtype=bool)
