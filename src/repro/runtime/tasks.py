"""Module-level task bodies shared by the estimator hot paths.

These must live at module scope (not as closures or lambdas) so the
process backend can pickle them by qualified name.  Workload-specific
tasks live next to their callers (e.g. the naive-MC chunk task in
:mod:`repro.core.naive`); only the generic ones are collected here.
"""

from __future__ import annotations

import numpy as np


def evaluate_indicator(chunk: np.ndarray, indicator) -> np.ndarray:
    """Label one chunk with a (raw, non-counting) indicator.

    Simulation accounting stays in the parent process: callers add the
    chunk sizes to their :class:`~repro.core.indicator.SimulationCounter`
    *before* dispatch, preserving the budget circuit-breaker semantics of
    :class:`~repro.core.indicator.CountingIndicator`.
    """
    return np.asarray(indicator.evaluate(chunk), dtype=bool)


def indicator_perf_stats(indicator) -> dict:
    """The perf counters of the evaluator behind ``indicator`` (or {}).

    Test-double indicators without an ``evaluator`` attribute degrade
    to an empty dict, which makes every stats delta empty too.
    """
    evaluator = getattr(indicator, "evaluator", None)
    stats = getattr(evaluator, "perf_stats", None)
    return stats() if callable(stats) else {}


def perf_stats_delta(before: dict, after: dict) -> dict:
    """Additive-counter delta between two perf snapshots.

    ``cache_entries`` is a gauge (current cache size), not a counter,
    so it is dropped rather than differenced; non-integer entries
    (spans, rates) are dropped for the same reason.
    """
    return {key: int(value) - int(before.get(key, 0))
            for key, value in after.items()
            if key != "cache_entries"
            and isinstance(value, (int, np.integer))
            and not isinstance(value, bool)}


def evaluate_indicator_stats(chunk: np.ndarray, indicator
                             ) -> tuple[np.ndarray, dict]:
    """:func:`evaluate_indicator` plus the evaluator-counter delta.

    On the process backend the worker labels the chunk on its *own*
    unpickled copy of the evaluator, so the parent's perf counters
    (device-model evals, cache hits, screen/refine splits) never see
    that work.  Measuring the delta inside the task -- against whatever
    counter values the copy started with -- captures exactly this
    chunk's contribution; the parent merges it back for process-pool
    chunks only (serial / thread / fallback chunks already ran on the
    parent's evaluator object and would double count).
    """
    before = indicator_perf_stats(indicator)
    labels = evaluate_indicator(chunk, indicator)
    return labels, perf_stats_delta(before, indicator_perf_stats(indicator))
