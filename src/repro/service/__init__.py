"""Estimation as a durable job-queue service.

``ecripse serve`` turns the estimator library into a long-running
daemon: jobs are submitted over HTTP as declarative
:class:`~repro.service.spec.JobSpec` payloads, dispatched by priority
across a worker pool, checkpointed at every safe boundary, and cached
by result fingerprint -- a duplicate submission is answered with zero
new simulations, and a ``kill -9``'d daemon restarts and resumes every
in-flight job to a bit-identical estimate.  See ``docs/SERVICE.md``.
"""

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.model import (
    TERMINAL_STATES,
    TRANSITIONS,
    JobRecord,
    JobState,
)
from repro.service.scheduler import QuotaPolicy, Scheduler
from repro.service.spec import JobSpec
from repro.service.store import JobStore
from repro.service.worker import execute_job, spec_fingerprint

__all__ = [
    "TERMINAL_STATES",
    "TRANSITIONS",
    "JobRecord",
    "JobSpec",
    "JobState",
    "JobStore",
    "QuotaPolicy",
    "Scheduler",
    "ServiceClient",
    "ServiceError",
    "execute_job",
    "spec_fingerprint",
]
