"""Command-line surface of the job service.

Forwarded from the main ``ecripse`` entry point::

    ecripse serve --root state/               # run the daemon
    ecripse submit --vdd 0.6 --alpha 0.5      # submit one job
    ecripse submit --quick --wait             # submit and block
    ecripse jobs                              # list all jobs
    ecripse job job-000001                    # one record
    ecripse job job-000001 --events --follow  # live progress feed
    ecripse job job-000001 --result           # the finished estimate
    ecripse job job-000001 --cancel           # request cancellation

``submit``/``job``/``jobs`` talk to a running daemon over HTTP
(``--url``, default ``http://127.0.0.1:8765``) and print the server's
JSON, so the output is pipeable into ``jq`` and friends.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ServiceError
from repro.service.client import ServiceClient
from repro.service.scheduler import QuotaPolicy

DEFAULT_URL = "http://127.0.0.1:8765"


def _positive_int(value: str) -> int:
    n = int(value)
    if n < 1:
        raise argparse.ArgumentTypeError(f"must be >= 1, got {n}")
    return n


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="ecripse service",
        description="Durable job-queue service for ECRIPSE estimations "
                    "(see docs/SERVICE.md).")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the job-service daemon")
    serve.add_argument("--root", required=True,
                       help="state directory (jobs, results, "
                            "checkpoints); safe to reuse across "
                            "restarts -- unfinished jobs resume")
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=8765,
                       help="TCP port; 0 picks a free one (printed on "
                            "the readiness line)")
    serve.add_argument("--workers", type=_positive_int, default=2,
                       help="concurrent job slots (default: 2)")
    serve.add_argument("--backend", default="serial",
                       help="runtime backend each job executes under "
                            "(results are backend-invariant)")
    serve.add_argument("--backend-workers", type=_positive_int,
                       default=None,
                       help="pool size for thread/process backends")
    serve.add_argument("--checkpoint-keep", type=_positive_int,
                       default=3,
                       help="snapshots retained per job (default: 3)")
    serve.add_argument("--solve-cache", default=None, metavar="DIR",
                       help="shared on-disk solve-cache directory "
                            "(lock-guarded across jobs)")
    serve.add_argument("--quota-default", type=_positive_int,
                       default=QuotaPolicy.default_simulations,
                       help="simulation budget for jobs that do not "
                            "request one")
    serve.add_argument("--quota-max", type=_positive_int,
                       default=QuotaPolicy.max_simulations,
                       help="hard per-job simulation ceiling (larger "
                            "requests are clamped)")
    serve.add_argument("--lease", type=float, default=60.0,
                       metavar="SECONDS", dest="lease_s",
                       help="worker lease on a running job; the "
                            "watchdog re-queues jobs whose lease "
                            "expired (default: 60)")
    serve.add_argument("--watchdog-interval", type=float, default=None,
                       metavar="SECONDS",
                       help="lease sweep cadence (default: lease/4)")
    serve.add_argument("--max-attempts", type=_positive_int, default=3,
                       help="attempt budget before a repeatedly "
                            "failing job is dead-lettered "
                            "(default: 3)")
    # test/CI only: deterministic filesystem fault schedule, e.g.
    # 'rename:3:fail' (see docs/ROBUSTNESS.md, service chaos)
    serve.add_argument("--inject-fs", default=None,
                       help=argparse.SUPPRESS)

    submit = sub.add_parser("submit", help="submit one estimation job")
    submit.add_argument("--url", default=DEFAULT_URL)
    submit.add_argument("--kind", choices=("estimate", "naive", "array"),
                        default="estimate")
    submit.add_argument("--vdd", type=float, default=None)
    submit.add_argument("--alpha", type=float, default=None)
    submit.add_argument("--seed", type=int, default=2015)
    submit.add_argument("--target", type=float, default=0.05,
                        help="target relative error")
    submit.add_argument("--max-simulations", type=_positive_int,
                        default=None)
    submit.add_argument("--n-samples", type=_positive_int,
                        default=100_000, help="naive-MC sample budget")
    submit.add_argument("--quick", action="store_true")
    submit.add_argument("--grid-points", type=_positive_int, default=61)
    submit.add_argument("--health-policy", default="strict",
                        choices=("strict", "recover", "permissive"))
    submit.add_argument("--pfail", type=float, default=None,
                        help="array jobs: direct cell pfail (omit to "
                             "chain a full estimator run)")
    submit.add_argument("--capacity", default=None,
                        help="array jobs: data capacity, e.g. 128Gb")
    submit.add_argument("--word-bits", type=_positive_int, default=None,
                        help="array jobs: data bits per ECC word")
    submit.add_argument("--node", default=None,
                        help="array jobs: technology node (e.g. 16nm)")
    submit.add_argument("--environment", default=None,
                        help="array jobs: operating environment")
    submit.add_argument("--fit-target", type=float, default=None,
                        help="array jobs: uncorrectable-FIT budget")
    submit.add_argument("--scrub-hours", default=None,
                        help="array jobs: comma-separated scrub "
                             "periods in hours")
    submit.add_argument("--schemes", default=None,
                        help="array jobs: comma-separated ECC schemes")
    submit.add_argument("--priority", type=int, default=0)
    submit.add_argument("--checkpoint-every", type=_positive_int,
                        default=1000)
    submit.add_argument("--max-attempts", type=_positive_int,
                        default=None,
                        help="per-job attempt budget before "
                             "dead-lettering (default: the daemon's)")
    submit.add_argument("--array-backend", default=None, metavar="NAME",
                        help="solver array namespace (numpy, numba, or "
                             "an importable Array-API module); "
                             "result-neutral -- unusable backends fall "
                             "back to numpy")
    submit.add_argument("--wait", action="store_true",
                        help="block until the job is terminal and "
                             "print its final record")
    submit.add_argument("--follow", action="store_true",
                        help="stream the event feed while waiting")
    submit.add_argument("--timeout", type=float, default=600.0,
                        help="--wait timeout in seconds")

    jobs = sub.add_parser("jobs", help="list all jobs")
    jobs.add_argument("--url", default=DEFAULT_URL)
    jobs.add_argument("--table", action="store_true",
                      help="render an aligned summary table (id, "
                           "state, attempts, pfail, error) instead "
                           "of JSON")

    job = sub.add_parser("job", help="inspect or act on one job")
    job.add_argument("id")
    job.add_argument("--url", default=DEFAULT_URL)
    action = job.add_mutually_exclusive_group()
    action.add_argument("--result", action="store_true",
                        help="print the finished estimate")
    action.add_argument("--events", action="store_true",
                        help="print the event feed")
    action.add_argument("--cancel", action="store_true",
                        help="request cancellation")
    action.add_argument("--requeue", action="store_true",
                        help="revive a dead-lettered job (resets its "
                             "attempt budget)")
    job.add_argument("--since", type=int, default=0,
                     help="--events: skip the first N events")
    job.add_argument("--follow", action="store_true",
                     help="--events: stream until the job is terminal")
    return parser


def _spec_from_args(args: argparse.Namespace) -> dict:
    spec = {"kind": args.kind, "seed": args.seed,
            "target_relative_error": args.target,
            "n_samples": args.n_samples, "quick": args.quick,
            "grid_points": args.grid_points,
            "health_policy": args.health_policy,
            "priority": args.priority,
            "checkpoint_every": args.checkpoint_every}
    if args.vdd is not None:
        spec["vdd"] = args.vdd
    if args.alpha is not None:
        spec["alpha"] = args.alpha
    if args.max_simulations is not None:
        spec["max_simulations"] = args.max_simulations
    if args.max_attempts is not None:
        spec["max_attempts"] = args.max_attempts
    if args.array_backend is not None:
        spec["array_backend"] = args.array_backend
    if args.kind == "array":
        from repro.analysis.ecc import ArrayConfig, parse_capacity

        overrides: dict = {}
        if args.capacity is not None:
            overrides["capacity_mbit"] = parse_capacity(args.capacity)
        if args.word_bits is not None:
            overrides["data_bits"] = args.word_bits
        if args.node is not None:
            overrides["node"] = args.node
        if args.environment is not None:
            overrides["environment"] = args.environment
        if args.fit_target is not None:
            overrides["fit_target"] = args.fit_target
        if args.scrub_hours is not None:
            overrides["scrub_hours"] = tuple(
                float(h) for h in args.scrub_hours.split(","))
        if args.schemes is not None:
            overrides["schemes"] = tuple(
                s.strip() for s in args.schemes.split(","))
        spec["array"] = ArrayConfig(**overrides).as_dict()
        if args.pfail is not None:
            spec["pfail"] = args.pfail
    return spec


def _emit(payload: object) -> None:
    print(json.dumps(payload, indent=1, sort_keys=True))


def _jobs_table(records: list[dict]) -> str:
    """Aligned operator summary of ``ecripse jobs`` output."""
    headers = ("ID", "STATE", "ATTEMPTS", "PFAIL", "ERROR")
    rows = [headers]
    for record in records:
        pfail = record.get("pfail")
        error = record.get("error") or ""
        if len(error) > 40:
            error = error[:37] + "..."
        rows.append((
            str(record.get("id", "?")),
            str(record.get("state", "?")),
            str(record.get("attempts", 0)),
            f"{pfail:.3e}" if pfail is not None else "-",
            error or "-"))
    widths = [max(len(row[col]) for row in rows)
              for col in range(len(headers))]
    lines = ["  ".join(cell.ljust(width)
                       for cell, width in zip(row, widths)).rstrip()
             for row in rows]
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    try:
        if args.command == "serve":
            from repro.chaos.config import ChaosConfig
            from repro.service.scheduler import QuotaPolicy as Quota
            from repro.service.server import ServeConfig, ServiceDaemon

            config = ServeConfig(
                root=args.root, host=args.host, port=args.port,
                workers=args.workers, backend=args.backend,
                backend_workers=args.backend_workers,
                quota=Quota(default_simulations=args.quota_default,
                            max_simulations=args.quota_max),
                checkpoint_keep=args.checkpoint_keep,
                solve_cache=args.solve_cache,
                chaos=ChaosConfig(
                    inject_fs=args.inject_fs,
                    lease_s=args.lease_s,
                    watchdog_interval_s=args.watchdog_interval,
                    max_attempts=args.max_attempts))
            return ServiceDaemon(config).run()

        client = ServiceClient(args.url)
        if args.command == "submit":
            record = client.submit(_spec_from_args(args))
            _emit(record)
            if args.follow:
                for event in client.stream_events(record["id"]):
                    _emit(event)
            if args.wait or args.follow:
                final = client.wait(record["id"], timeout_s=args.timeout)
                _emit(final)
                return 0 if final["state"] == "done" else 1
            return 0
        if args.command == "jobs":
            records = client.jobs()
            if args.table:
                print(_jobs_table(records))
            else:
                _emit(records)
            return 0
        if args.command == "job":
            if args.cancel:
                _emit(client.cancel(args.id))
            elif args.requeue:
                _emit(client.requeue(args.id))
            elif args.result:
                _emit(client.result(args.id))
            elif args.events:
                if args.follow:
                    for event in client.stream_events(args.id,
                                                      since=args.since):
                        _emit(event)
                else:
                    _emit(client.events(args.id, since=args.since))
            else:
                _emit(client.job(args.id))
            return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
