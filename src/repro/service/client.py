"""Thin stdlib HTTP client for the job service.

Wraps ``urllib`` -- no dependencies, usable from tests, the CLI
(``ecripse submit`` / ``ecripse job``) and notebooks alike.  Methods
return the server's parsed JSON; protocol-level failures (HTTP error
codes, unreachable daemon) raise :class:`~repro.errors.ServiceError`
with the server's message when one was provided.

Resilience: *idempotent* requests -- every GET, plus ``POST /jobs``,
which is idempotent by result fingerprint -- are retried on transport
failures and 503s with capped exponential backoff and full jitter
(the AWS-style decorrelated sleep that avoids thundering herds when a
fleet of clients hits one recovering daemon).  A 503-while-draining
carrying ``Retry-After`` is honoured as the backoff floor.  Event
streams carry a read timeout and the server's idle heartbeats keep a
healthy-but-quiet stream alive, so a dead server can no longer block a
client forever; :meth:`ServiceClient.wait` polls with growing backoff
instead of a tight loop.
"""

from __future__ import annotations

import json
import random
import time
from dataclasses import dataclass
from typing import Callable, Iterator
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ServiceError

#: default per-request timeout [s]; also the stream read timeout, so
#: it must comfortably exceed the server's heartbeat interval.
DEFAULT_TIMEOUT_S = 30.0

#: HTTP status codes worth retrying (the request never ran, or the
#: server explicitly said "come back later").
_RETRYABLE_CODES = frozenset({503})


@dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with full jitter.

    Attempt ``n`` (0-based) sleeps ``uniform(0, min(cap_s, base_s *
    2**n))`` before retrying -- the full-jitter variant spreads a fleet
    of synchronised clients across the whole window instead of
    re-colliding them at fixed multiples.  ``attempts`` counts tries
    including the first; ``attempts=1`` disables retrying.
    """

    attempts: int = 4
    base_s: float = 0.2
    cap_s: float = 5.0

    def __post_init__(self) -> None:
        if self.attempts < 1:
            raise ValueError(
                f"attempts must be >= 1, got {self.attempts}")
        if self.base_s <= 0 or self.cap_s < self.base_s:
            raise ValueError(
                f"need 0 < base_s <= cap_s, got base_s={self.base_s}, "
                f"cap_s={self.cap_s}")

    def backoff_s(self, attempt: int, rng: random.Random,
                  floor_s: float = 0.0) -> float:
        """Sleep before retry ``attempt`` (0-based), >= ``floor_s``."""
        window = min(self.cap_s, self.base_s * (2.0 ** attempt))
        return max(floor_s, rng.uniform(0.0, window))


class _Retryable(Exception):
    """Internal: transport failure worth another attempt."""

    def __init__(self, wrapped: ServiceError,
                 retry_after_s: float = 0.0) -> None:
        super().__init__(str(wrapped))
        self.wrapped = wrapped
        self.retry_after_s = retry_after_s


def _retry_after_s(exc: HTTPError) -> float:
    """The server's Retry-After hint in seconds (0 when absent)."""
    value = exc.headers.get("Retry-After") if exc.headers else None
    try:
        return max(0.0, float(value)) if value is not None else 0.0
    except ValueError:
        return 0.0


class ServiceClient:
    """Client bound to one daemon base URL (e.g. ``http://127.0.0.1:8765``).

    ``retry`` tunes the idempotent-request retry policy
    (``RetryPolicy(attempts=1)`` disables it); ``sleep`` and ``rng``
    are injectable for tests -- the jitter source is operational
    randomness that never touches an estimate.
    """

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S,
                 retry: RetryPolicy | None = None,
                 sleep: Callable[[float], None] = time.sleep,
                 rng: random.Random | None = None) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)
        self.retry = retry if retry is not None else RetryPolicy()
        self._sleep = sleep
        self._rng = rng if rng is not None \
            else random.Random()  # repro: allow-global-rng

    # -- raw transport -------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: object | None = None,
                 idempotent: bool | None = None) -> dict:
        """One JSON request; idempotent ones retried per the policy.

        ``idempotent`` defaults to ``method == "GET"``; ``POST /jobs``
        passes ``True`` explicitly (safe to repeat: the fingerprint
        dedupes on the server, a duplicate is a pure cache hit).
        """
        if idempotent is None:
            idempotent = method == "GET"
        attempts = self.retry.attempts if idempotent else 1
        for attempt in range(attempts):
            try:
                return self._request_once(method, path, payload)
            except _Retryable as failure:
                if attempt + 1 >= attempts:
                    raise failure.wrapped from failure
                self._sleep(self.retry.backoff_s(
                    attempt, self._rng,
                    floor_s=failure.retry_after_s))
        raise AssertionError("unreachable")  # pragma: no cover

    def _request_once(self, method: str, path: str,
                      payload: object | None = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = Request(self.base_url + path, data=body,
                          headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            error = ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}")
            if exc.code in _RETRYABLE_CODES:
                raise _Retryable(
                    error, retry_after_s=_retry_after_s(exc)) from exc
            raise error from exc
        except (URLError, TimeoutError) as exc:
            reason = getattr(exc, "reason", exc)
            raise _Retryable(ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{reason}")) from exc

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit one job spec; returns the created job record.

        Retried like a GET: submission is idempotent by fingerprint,
        so re-sending after an ambiguous transport failure either
        creates the job or lands a zero-cost duplicate.
        """
        return self._request("POST", "/jobs", payload=spec,
                             idempotent=True)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished estimate (raises while the job is not done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def requeue(self, job_id: str) -> dict:
        """Revive a dead-lettered job (``dead/failed -> queued``).

        Not retried: after an ambiguous failure the job may already be
        queued again, and the second attempt's 409 must surface rather
        than be papered over.
        """
        return self._request("POST", f"/jobs/{job_id}/requeue")

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        """The event feed so far (non-streaming snapshot)."""
        return self._events_once(job_id, since, follow=False)

    def _events_once(self, job_id: str, since: int,
                     follow: bool) -> list[dict]:
        suffix = "&follow=1" if follow else ""
        request = Request(
            f"{self.base_url}/jobs/{job_id}/events"
            f"?since={int(since)}{suffix}")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return [json.loads(line)
                        for line in response.read().splitlines() if line]
        except (HTTPError, URLError) as exc:
            raise ServiceError(
                f"cannot read events for {job_id}: {exc}") from exc

    def stream_events(self, job_id: str,
                      since: int = 0) -> Iterator[dict]:
        """Yield events live until the job reaches a terminal state.

        Uses the server's ``follow`` mode: one long-lived response,
        newline-delimited JSON, closed by the server once the job is
        terminal (or the daemon drains).  The socket carries a read
        timeout; the server's idle heartbeats (filtered out here) keep
        a healthy stream inside it, so a timeout means the server is
        actually gone -- the stream then reconnects from its cursor
        under the retry policy before giving up.
        """
        cursor = int(since)
        failures = 0
        while True:
            request = Request(f"{self.base_url}/jobs/{job_id}/events"
                              f"?since={cursor}&follow=1")
            try:
                with urlopen(request,
                             timeout=self.timeout_s) as response:
                    for line in response:
                        line = line.strip()
                        if not line:
                            continue
                        event = json.loads(line)
                        if event.get("kind") == "heartbeat":
                            # server keep-alive, not a stored event:
                            # resets the read timeout, never the cursor
                            continue
                        cursor += 1
                        failures = 0
                        yield event
                return  # server closed the stream: job is terminal
            except (HTTPError, URLError, TimeoutError) as exc:
                failures += 1
                if failures >= self.retry.attempts:
                    raise ServiceError(
                        f"event stream for {job_id} failed: "
                        f"{exc}") from exc
                self._sleep(self.retry.backoff_s(failures - 1,
                                                 self._rng))

    # -- conveniences --------------------------------------------------
    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2, max_poll_s: float = 2.0) -> dict:
        """Poll until the job is terminal; returns its final record.

        The poll interval grows 1.5x per round up to ``max_poll_s`` --
        long jobs no longer see a tight 5 Hz poll loop -- and each
        ``GET`` inherits the transport retry policy, so a daemon
        restart mid-wait is survived transparently.
        """
        deadline = time.monotonic() + timeout_s
        interval = poll_s
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled",
                                   "dead"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout_s:.0f}s")
            self._sleep(interval)
            interval = min(max_poll_s, interval * 1.5)
