"""Thin stdlib HTTP client for the job service.

Wraps ``urllib`` -- no dependencies, usable from tests, the CLI
(``ecripse submit`` / ``ecripse job``) and notebooks alike.  Methods
return the server's parsed JSON; protocol-level failures (HTTP error
codes, unreachable daemon) raise :class:`~repro.errors.ServiceError`
with the server's message when one was provided.
"""

from __future__ import annotations

import json
import time
from typing import Iterator
from urllib.error import HTTPError, URLError
from urllib.request import Request, urlopen

from repro.errors import ServiceError

#: default per-request timeout [s].
DEFAULT_TIMEOUT_S = 30.0


class ServiceClient:
    """Client bound to one daemon base URL (e.g. ``http://127.0.0.1:8765``)."""

    def __init__(self, base_url: str,
                 timeout_s: float = DEFAULT_TIMEOUT_S) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout_s = float(timeout_s)

    # -- raw transport -------------------------------------------------
    def _request(self, method: str, path: str,
                 payload: object | None = None) -> dict:
        body = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            body = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        request = Request(self.base_url + path, data=body,
                          headers=headers, method=method)
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return json.loads(response.read())
        except HTTPError as exc:
            detail = exc.read().decode(errors="replace")
            try:
                detail = json.loads(detail).get("error", detail)
            except json.JSONDecodeError:
                pass
            raise ServiceError(
                f"{method} {path} failed ({exc.code}): {detail}") from exc
        except URLError as exc:
            raise ServiceError(
                f"cannot reach service at {self.base_url}: "
                f"{exc.reason}") from exc

    # -- endpoints -----------------------------------------------------
    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, spec: dict) -> dict:
        """Submit one job spec; returns the created job record."""
        return self._request("POST", "/jobs", payload=spec)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def result(self, job_id: str) -> dict:
        """The finished estimate (raises while the job is not done)."""
        return self._request("GET", f"/jobs/{job_id}/result")

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def events(self, job_id: str, since: int = 0) -> list[dict]:
        """The event feed so far (non-streaming snapshot)."""
        request = Request(
            f"{self.base_url}/jobs/{job_id}/events?since={int(since)}")
        try:
            with urlopen(request, timeout=self.timeout_s) as response:
                return [json.loads(line)
                        for line in response.read().splitlines() if line]
        except (HTTPError, URLError) as exc:
            raise ServiceError(
                f"cannot read events for {job_id}: {exc}") from exc

    def stream_events(self, job_id: str,
                      since: int = 0) -> Iterator[dict]:
        """Yield events live until the job reaches a terminal state.

        Uses the server's ``follow`` mode: one long-lived response,
        newline-delimited JSON, closed by the server once the job is
        terminal (or the daemon drains).
        """
        request = Request(f"{self.base_url}/jobs/{job_id}/events"
                          f"?since={int(since)}&follow=1")
        try:
            with urlopen(request, timeout=None) as response:
                for line in response:
                    line = line.strip()
                    if line:
                        yield json.loads(line)
        except (HTTPError, URLError) as exc:
            raise ServiceError(
                f"event stream for {job_id} failed: {exc}") from exc

    # -- conveniences --------------------------------------------------
    def wait(self, job_id: str, timeout_s: float = 600.0,
             poll_s: float = 0.2) -> dict:
        """Poll until the job is terminal; returns its final record."""
        deadline = time.monotonic() + timeout_s
        while True:
            record = self.job(job_id)
            if record["state"] in ("done", "failed", "cancelled"):
                return record
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"job {job_id} still {record['state']} after "
                    f"{timeout_s:.0f}s")
            time.sleep(poll_s)
