"""The job state machine and its durable record.

States::

    queued ------> running ------> done
      ^  |          |  ^  \\-----> failed ----> dead
      |  |          v  |                \\----> queued (retry)
      |  |   checkpointed ------> dead
      |  |          |
      |  +----------+----------> cancelled
      +--- dead (requeue)

``checkpointed`` is the resumable-pause state: a job lands there when
the daemon shuts down gracefully mid-run (snapshot force-saved at a safe
boundary), when a restarted daemon finds a job that was ``running``
when the previous process was killed, or when the watchdog reclaims a
lease-expired job from a hung worker (the snapshot on disk is whatever
the periodic cadence last published).  Either way the scheduler feeds
it back to a worker, which restores the snapshot and continues to a
bit-identical result.

``dead`` is the dead-letter state: a job whose attempt budget is spent
(repeated failures or lease expiries) parks there with its last error
and full attempt history intact, instead of looping through the queue
forever.  An operator may revive it (``dead -> queued`` via the
requeue endpoint); nothing else leaves ``dead``.  ``failed`` likewise
gained exits -- the daemon retries a failed job (``failed -> queued``)
while budget remains, and buries it (``failed -> dead``) once spent.

Transitions are validated centrally in :meth:`JobRecord.transition`;
an illegal edge raises :class:`~repro.errors.ServiceError`, which is
how e.g. "cancel beat the worker to a queued job" is resolved safely.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from repro.errors import ServiceError
from repro.service.spec import JobSpec

#: bumped when the job record layout changes incompatibly.
RECORD_SCHEMA = 1


class JobState(str, Enum):
    """Lifecycle states of a job."""

    QUEUED = "queued"
    RUNNING = "running"
    CHECKPOINTED = "checkpointed"
    DONE = "done"
    FAILED = "failed"
    CANCELLED = "cancelled"
    DEAD = "dead"


#: legal state-machine edges.
TRANSITIONS: dict[JobState, frozenset[JobState]] = {
    JobState.QUEUED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.DEAD}),
    JobState.RUNNING: frozenset(
        {JobState.CHECKPOINTED, JobState.DONE, JobState.FAILED,
         JobState.CANCELLED}),
    JobState.CHECKPOINTED: frozenset(
        {JobState.RUNNING, JobState.CANCELLED, JobState.DEAD}),
    JobState.DONE: frozenset(),
    # retry while the attempt budget lasts; dead-letter once it is spent
    JobState.FAILED: frozenset({JobState.QUEUED, JobState.DEAD}),
    JobState.CANCELLED: frozenset(),
    # operator revival via POST /jobs/<id>/requeue
    JobState.DEAD: frozenset({JobState.QUEUED}),
}

#: states the daemon itself never moves a job out of.  ``failed`` and
#: ``dead`` keep *operator* exits (retry/requeue) in TRANSITIONS, but a
#: job resting in any of these states is finished as far as waiting
#: clients are concerned.
TERMINAL_STATES = frozenset(
    {JobState.DONE, JobState.FAILED, JobState.CANCELLED, JobState.DEAD})


@dataclass
class JobRecord:
    """Durable facts about one job (mirrors ``job.json`` on disk).

    ``pfail``/``ci_halfwidth``/``n_simulations`` are the completed
    result's headline numbers, denormalised into the record so listing
    jobs does not re-read result files; the full estimate lives in the
    result store keyed by :attr:`fingerprint`.

    ``lease_owner``/``lease_expires_at`` describe the worker currently
    charged with the job: set when a worker starts an attempt, renewed
    at checkpoint boundaries, cleared whenever the job leaves
    ``running``.  A ``running`` record whose lease has expired is the
    watchdog's signal that its worker hung or died.  Additive fields --
    records written before they existed load with both ``None``, so
    the record schema is unchanged.
    """

    id: str
    spec: JobSpec
    fingerprint: str
    state: JobState = JobState.QUEUED
    created_at: float = 0.0
    updated_at: float = 0.0
    attempts: int = 0
    cached: bool = False
    error: str | None = None
    pfail: float | None = None
    ci_halfwidth: float | None = None
    n_simulations: int | None = None
    lease_owner: str | None = None
    lease_expires_at: float | None = None
    history: list[list] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def lease_expired(self, at: float) -> bool:
        """True when a ``running`` job's worker lease has lapsed."""
        return (self.state is JobState.RUNNING
                and self.lease_expires_at is not None
                and at >= self.lease_expires_at)

    def clear_lease(self) -> None:
        """Drop the worker lease (job is leaving ``running``)."""
        self.lease_owner = None
        self.lease_expires_at = None

    def transition(self, to_state: JobState, at: float) -> None:
        """Apply one validated state-machine edge in place."""
        to_state = JobState(to_state)
        if to_state not in TRANSITIONS[self.state]:
            raise ServiceError(
                f"illegal transition {self.state.value} -> "
                f"{to_state.value} for job {self.id}")
        self.state = to_state
        self.updated_at = at
        self.history.append([to_state.value, at])

    # -- wire format ---------------------------------------------------
    def as_dict(self) -> dict:
        return {
            "schema": RECORD_SCHEMA,
            "id": self.id,
            "spec": self.spec.as_dict(),
            "fingerprint": self.fingerprint,
            "state": self.state.value,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "attempts": self.attempts,
            "cached": self.cached,
            "error": self.error,
            "pfail": self.pfail,
            "ci_halfwidth": self.ci_halfwidth,
            "n_simulations": self.n_simulations,
            "lease_owner": self.lease_owner,
            "lease_expires_at": self.lease_expires_at,
            "history": [list(entry) for entry in self.history],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "JobRecord":
        schema = data.get("schema")
        if isinstance(schema, int) and schema > RECORD_SCHEMA:
            raise ServiceError(
                f"job record has schema {schema}, newer than this "
                f"build's {RECORD_SCHEMA}; upgrade the repro package")
        if schema != RECORD_SCHEMA:
            raise ServiceError(
                f"unsupported job record schema {schema!r}")
        try:
            return cls(
                id=str(data["id"]),
                spec=JobSpec.from_dict(data["spec"]),
                fingerprint=str(data["fingerprint"]),
                state=JobState(data["state"]),
                created_at=float(data["created_at"]),
                updated_at=float(data["updated_at"]),
                attempts=int(data["attempts"]),
                cached=bool(data["cached"]),
                error=data.get("error"),
                pfail=data.get("pfail"),
                ci_halfwidth=data.get("ci_halfwidth"),
                n_simulations=data.get("n_simulations"),
                lease_owner=data.get("lease_owner"),
                lease_expires_at=data.get("lease_expires_at"),
                history=[list(entry) for entry in data.get("history", [])],
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise ServiceError(
                f"corrupt job record: {exc}") from exc
