"""Dispatch order, quotas, and the service's sanctioned wall clock.

This module is the single place in :mod:`repro.service` allowed to read
the wall clock (the REP002 lint scope excludes exactly this file,
mirroring ``repro/checkpoint/trigger.py``): job records and event
streams carry human-facing timestamps from :func:`now`, and nothing
downstream of an estimate ever depends on them.

The :class:`Scheduler` itself is a thread-safe priority queue of job
ids -- higher :attr:`~repro.service.spec.JobSpec.priority` first, FIFO
within a priority -- feeding the daemon's worker threads.  Simulation
*budget* fairness is handled before a job ever reaches the queue:
:class:`QuotaPolicy` clamps every submission's simulation budget, and
the clamped spec is the canonical job (and the cache key), so one
tenant's unbounded request cannot monopolise the pool.
"""

from __future__ import annotations

import heapq
import threading
import time
from dataclasses import dataclass

from repro.service.spec import JobSpec


def now() -> float:
    """Unix timestamp for records/events -- never for estimator logic."""
    return time.time()


@dataclass(frozen=True)
class QuotaPolicy:
    """Per-job simulation budgets.

    Attributes
    ----------
    default_simulations:
        Budget applied when a spec does not request one.
    max_simulations:
        Hard ceiling; requests above it are clamped down.
    """

    default_simulations: int = 2_000_000
    max_simulations: int = 10_000_000

    def __post_init__(self) -> None:
        if self.default_simulations < 1 or self.max_simulations < 1:
            raise ValueError("quota budgets must be >= 1")
        if self.default_simulations > self.max_simulations:
            raise ValueError(
                f"default quota {self.default_simulations} exceeds the "
                f"hard ceiling {self.max_simulations}")

    def apply(self, spec: JobSpec) -> JobSpec:
        """Return the canonical (budget-clamped) form of ``spec``.

        The clamp happens *before* fingerprinting, so the cache key
        reflects the budget the job actually ran under -- a request for
        more than the ceiling and a request for exactly the ceiling are
        the same job.
        """
        requested = (self.default_simulations
                     if spec.max_simulations is None
                     else spec.max_simulations)
        budget = min(int(requested), self.max_simulations)
        samples = min(spec.n_samples, budget)
        if budget == spec.max_simulations and samples == spec.n_samples:
            return spec
        return spec.with_(max_simulations=budget, n_samples=samples)


class Scheduler:
    """Priority dispatch queue for job ids.

    ``submit`` may be called from any thread (the HTTP handlers);
    ``pop`` blocks the worker threads with a timeout so they can
    re-check the shutdown flag.  Entries are lazily invalidated by
    :meth:`discard` (cancellation) -- a discarded id still sits in the
    heap but is skipped on pop.
    """

    def __init__(self) -> None:
        self._heap: list[tuple[int, int, str]] = []
        self._discarded: set[str] = set()
        self._queued: set[str] = set()
        self._seq = 0
        self._wake_generation = 0
        self._cond = threading.Condition()

    def submit(self, job_id: str, priority: int = 0) -> None:
        """Queue ``job_id``; larger ``priority`` dispatches first."""
        with self._cond:
            if job_id in self._queued:
                return
            self._queued.add(job_id)
            self._discarded.discard(job_id)
            heapq.heappush(self._heap, (-int(priority), self._seq, job_id))
            self._seq += 1
            self._cond.notify()

    def pop(self, timeout: float | None = None) -> str | None:
        """Highest-priority queued id, or ``None`` on timeout.

        With a timeout, a wake-up that finds the queue empty (another
        consumer won the race, or :meth:`wake_all` fired for shutdown)
        also returns ``None`` -- callers re-check their stop condition
        and loop.  An untimed pop blocks until an item actually
        arrives: spurious or raced wake-ups go back to waiting, and
        only :meth:`wake_all` releases it empty-handed (``None``).
        """
        with self._cond:
            generation = self._wake_generation
            while True:
                while self._heap:
                    _, _, job_id = heapq.heappop(self._heap)
                    self._queued.discard(job_id)
                    if job_id in self._discarded:
                        self._discarded.discard(job_id)
                        continue
                    return job_id
                if timeout is not None:
                    if not self._cond.wait(timeout) or not self._heap:
                        return None
                else:
                    self._cond.wait()
                    if self._wake_generation != generation:
                        return None  # wake_all: shutdown drain

    def discard(self, job_id: str) -> None:
        """Drop a queued id (no-op if it was never queued)."""
        with self._cond:
            if job_id in self._queued:
                self._discarded.add(job_id)
                self._queued.discard(job_id)

    def wake_all(self) -> None:
        """Release every blocked :meth:`pop` (shutdown path)."""
        with self._cond:
            self._wake_generation += 1
            self._cond.notify_all()

    def __len__(self) -> int:
        with self._cond:
            return len(self._queued)

    def __contains__(self, job_id: str) -> bool:
        with self._cond:
            return job_id in self._queued
