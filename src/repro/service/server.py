"""The ``ecripse serve`` daemon.

One process hosts three cooperating pieces:

* a :class:`~repro.service.store.JobStore` (durable records, event
  feeds, per-job checkpoints, the fingerprint-keyed result cache);
* a pool of worker threads pulling job ids off the
  :class:`~repro.service.scheduler.Scheduler` and running them through
  :func:`repro.service.worker.execute_job`;
* a stdlib ``ThreadingHTTPServer`` front (see ``docs/SERVICE.md`` for
  the endpoint reference).

Durability model: every state change lands on disk before it is
visible over HTTP, so the daemon itself is stateless across restarts --
``kill -9`` it at any instant, start a new one on the same root, and
:meth:`~repro.service.store.JobStore.recover` moves orphaned ``running``
jobs to ``checkpointed`` and re-queues everything unfinished; each
resumes from its last snapshot to a bit-identical result.  Graceful
shutdown (SIGTERM/SIGINT) is cheaper: workers drain their jobs to the
next checkpoint-safe boundary, force-save, and exit with everything
``checkpointed``.

Resilience model (:class:`~repro.chaos.config.ChaosConfig`): every
``running`` job carries a worker *lease* that the worker renews at
checkpoint boundaries; the :class:`Watchdog` thread reclaims jobs whose
lease expired (hung or died worker) back to ``checkpointed`` and
re-queues them.  A failing job is retried until its attempt budget is
spent, then *dead-lettered* (terminal ``dead`` state, last error and
history preserved) instead of looping forever; ``POST
/jobs/<id>/requeue`` revives it.  For crash-consistency testing the
daemon can route every durable write through a deterministic fault
schedule (``--inject-fs``, see :mod:`repro.chaos.fsops`).
"""

from __future__ import annotations

import json
import sys
import threading
import time
from collections.abc import Callable
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from urllib.parse import parse_qs, urlparse

from repro.analysis.persistence import estimate_to_dict
from repro.chaos.config import ChaosConfig
from repro.chaos.fsops import ChaosFsOps, install_fs
from repro.core.estimate import FailureEstimate
from repro.errors import ServiceError, ShutdownRequested
from repro.perf import PerfConfig, save_registered_caches
from repro.runtime import ExecutionConfig, default_coordinator
from repro.service.model import JobRecord, JobState
from repro.service.scheduler import QuotaPolicy, Scheduler, now
from repro.service.spec import JobSpec
from repro.service.store import JobStore

#: how often blocked waits re-check the shutdown flag [s].
_POLL_S = 0.2


class _LostRace(Exception):
    """Internal: a worker-side update found the record already settled
    by a concurrent :meth:`ServiceDaemon.cancel` (never leaves this
    module)."""


@dataclass
class ServeConfig:
    """Daemon configuration (the ``ecripse serve`` flag surface)."""

    root: Path
    host: str = "127.0.0.1"
    port: int = 8765
    workers: int = 2
    backend: str = "serial"
    backend_workers: int | None = None
    quota: QuotaPolicy = field(default_factory=QuotaPolicy)
    checkpoint_keep: int = 3
    solve_cache: str | None = None
    chaos: ChaosConfig = field(default_factory=ChaosConfig)

    def __post_init__(self) -> None:
        self.root = Path(self.root)
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")


class Watchdog:
    """Background lease sweeper.

    Periodically calls :meth:`ServiceDaemon.sweep_leases`, reclaiming
    ``running`` jobs whose worker lease expired: back to
    ``checkpointed`` and re-queued while attempt budget remains,
    dead-lettered once it is spent.  The sweep interval defaults to a
    quarter of the lease, so a hung worker's job is back in the queue
    well within one lease interval of the expiry.
    """

    def __init__(self, daemon: "ServiceDaemon",
                 interval_s: float) -> None:
        self._daemon = daemon
        self.interval_s = float(interval_s)
        self.thread = threading.Thread(target=self._loop,
                                       name="service-watchdog",
                                       daemon=True)

    def start(self) -> None:
        self.thread.start()

    def _loop(self) -> None:
        coordinator = self._daemon.coordinator
        while not coordinator.requested:
            slept = 0.0
            while slept < self.interval_s and not coordinator.requested:
                time.sleep(min(_POLL_S, self.interval_s - slept))
                slept += _POLL_S
            if coordinator.requested:
                return
            self._daemon.sweep_leases(now())


class ServiceDaemon:
    """Job-queue daemon over one state tree (see module docstring)."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.store = JobStore(config.root)
        self.scheduler = Scheduler()
        self.coordinator = default_coordinator()
        self.execution = ExecutionConfig(backend=config.backend,
                                         workers=config.backend_workers)
        self._httpd: ThreadingHTTPServer | None = None
        self._threads: list[threading.Thread] = []
        self._chaos_fs: ChaosFsOps | None = None
        self.watchdog: Watchdog | None = None
        # watchdog/lease telemetry for /healthz, guarded by its own
        # lock (written by the watchdog thread, read by HTTP handlers)
        self._stats_lock = threading.Lock()
        with self._stats_lock:
            self._expired_requeued_total = 0
            self._dead_lettered_total = 0
            self._watchdog_sweeps = 0

    # -- lifecycle -----------------------------------------------------
    def start(self) -> str:
        """Recover state, spawn workers, bind HTTP; returns base URL."""
        if self.config.chaos.inject_fs:
            # test/CI only: route every durable write through the
            # deterministic fault schedule until shutdown
            self._chaos_fs = ChaosFsOps(self.config.chaos.inject_fs)
            install_fs(self._chaos_fs)
        for job_id in self.store.recover(now()):
            record = self.store.load(job_id)
            self.scheduler.submit(job_id, record.spec.priority)
        self._httpd = ThreadingHTTPServer(
            (self.config.host, self.config.port), _make_handler(self))
        self._httpd.daemon_threads = True
        http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": _POLL_S},
            name="service-http", daemon=True)
        http_thread.start()
        self._threads.append(http_thread)
        for index in range(self.config.workers):
            worker = threading.Thread(target=self._worker_loop,
                                      name=f"service-worker-{index}",
                                      daemon=True)
            worker.start()
            self._threads.append(worker)
        self.watchdog = Watchdog(self,
                                 self.config.chaos.sweep_interval_s)
        self.watchdog.start()
        self._threads.append(self.watchdog.thread)
        return self.address

    @property
    def address(self) -> str:
        assert self._httpd is not None, "daemon not started"
        host, port = self._httpd.server_address[:2]
        return f"http://{host}:{port}"

    def shutdown(self, reason: str = "shutdown") -> None:
        """Stop accepting work and drain (blocks until workers exit)."""
        self.coordinator.request(reason)
        self.scheduler.wake_all()
        if self._httpd is not None:
            self._httpd.shutdown()
        for thread in self._threads:
            thread.join(timeout=60)
        save_registered_caches()
        if self._chaos_fs is not None:
            install_fs(None)
            self._chaos_fs = None

    def run(self) -> int:
        """Blocking entry point: serve until SIGTERM/SIGINT, drain,
        exit 0.  (``kill -9`` needs no cooperation -- the store is
        crash-consistent by construction.)"""
        self.coordinator.reset()
        self.coordinator.install()
        try:
            self.start()
            print(f"ecripse service listening on {self.address}",
                  flush=True)
            self.coordinator.wait()
            print(f"ecripse service draining "
                  f"({self.coordinator.reason})", flush=True)
            self.shutdown(self.coordinator.reason or "shutdown")
        finally:
            self.coordinator.uninstall()
        return 0

    # -- submission / cancellation (shared by HTTP and tests) ----------
    def submit(self, payload: object) -> JobRecord:
        """Validate, quota-clamp, fingerprint and enqueue one job.

        A fingerprint already present in the result cache completes the
        job immediately (``cached=True``, zero new simulations).
        """
        spec = self.config.quota.apply(JobSpec.from_dict(payload))
        fingerprint = spec.fingerprint()
        record = self.store.create_job(spec, fingerprint, now())
        cached = self._cached_result(fingerprint)
        if cached is not None:
            at = now()

            def finish(rec: JobRecord) -> None:
                rec.transition(JobState.RUNNING, at)
                self._apply_result(rec, cached, at, cached_hit=True)

            record = self.store.update(record.id, finish)
            self.store.append_event(record.id, "cache-hit", at,
                                    fingerprint=fingerprint,
                                    new_simulations=0)
        else:
            self.store.append_event(record.id, "queued", now(),
                                    fingerprint=fingerprint,
                                    priority=spec.priority)
            self.scheduler.submit(record.id, spec.priority)
        return record

    def cancel(self, job_id: str) -> JobRecord:
        """Request cancellation; returns the (possibly updated) record.

        Queued/checkpointed jobs cancel immediately; a running job is
        flagged and drains at its next checkpoint-safe boundary (the
        snapshot is kept, so a cancelled job is still inspectable).
        """
        record = self.store.load(job_id)
        self.store.request_cancel(job_id)
        self.scheduler.discard(job_id)
        if record.state in (JobState.QUEUED, JobState.CHECKPOINTED):
            at = now()
            try:
                record = self.store.update(
                    job_id,
                    lambda rec: rec.transition(JobState.CANCELLED, at))
                self.store.append_event(job_id, "cancelled", at,
                                        detail="cancelled before running")
            except ServiceError:
                # Lost the race with a worker pickup; the cancel flag
                # stops it at the next safe boundary instead.
                record = self.store.load(job_id)
        return record

    # -- workers -------------------------------------------------------
    def _worker_loop(self) -> None:
        while not self.coordinator.requested:
            job_id = self.scheduler.pop(timeout=_POLL_S)
            if job_id is None:
                continue
            if self.coordinator.requested:
                # Not started; the record stays queued on disk and the
                # next daemon's recovery scan re-queues it.
                return
            try:
                self._run_job(job_id)
            except Exception as exc:  # repro: allow-broad-except
                # _run_job already turns estimator failures into
                # durable ``failed`` records, so anything landing here
                # is a daemon bug -- but a worker thread must never die
                # silently and shrink the pool.  Record what we can and
                # keep serving.
                self._note_worker_error(job_id, exc)

    def _note_worker_error(self, job_id: str, exc: Exception) -> None:
        """Best-effort durable trace of an unexpected worker failure."""
        detail = f"unexpected worker error: {type(exc).__name__}: {exc}"
        try:
            self._settle_failure(job_id, detail, now())
        except Exception:  # repro: allow-broad-except
            # The record may already be terminal (or unreadable); the
            # stderr line below is then the only trace.
            pass
        print(f"ecripse service: worker error on job {job_id}: "
              f"{detail}", file=sys.stderr, flush=True)

    def _settle(self, job_id: str,
                mutate: Callable[[JobRecord], None],
                token: str | None = None) -> JobRecord | None:
        """Apply a worker-side record update, tolerating lost races.

        :meth:`cancel` may commit ``queued/running -> cancelled`` after
        the worker loaded the record; the worker's next transition then
        hits an illegal ``cancelled -> X`` edge.  The cancel side
        already wrote the authoritative terminal state, so the worker
        backs off and leaves the record alone (returns ``None``).

        With a ``token``, the update additionally requires that the
        worker still owns the job's lease: a watchdog reclaim (or a
        competing attempt) that reassigned the lease wins, and the
        stale worker backs off the same way.  Any mutation that takes
        the record out of ``running`` drops the lease centrally, so no
        caller can forget it.
        """
        def guarded(rec: JobRecord) -> None:
            if rec.state is JobState.CANCELLED:
                raise _LostRace
            if token is not None and rec.lease_owner != token:
                raise _LostRace
            mutate(rec)
            if rec.state is not JobState.RUNNING:
                rec.clear_lease()

        try:
            return self.store.update(job_id, guarded)
        except _LostRace:
            return None

    def _attempt_budget(self, spec: JobSpec) -> int:
        """The job's attempt budget (per-job override, else daemon)."""
        if spec.max_attempts is not None:
            return spec.max_attempts
        return self.config.chaos.max_attempts

    def _settle_failure(self, job_id: str, error: str, at: float,
                        token: str | None = None) -> JobRecord | None:
        """Record one failed attempt: retry or dead-letter, atomically.

        The record passes through ``failed`` (so the history shows the
        failure) and lands on ``queued`` while attempt budget remains,
        or on ``dead`` once it is spent -- both edges inside one
        durable update, so a crash between them is impossible.
        """
        def fail(rec: JobRecord) -> None:
            rec.transition(JobState.FAILED, at)
            rec.error = error
            if rec.attempts >= self._attempt_budget(rec.spec):
                rec.transition(JobState.DEAD, at)
            else:
                rec.transition(JobState.QUEUED, at)

        record = self._settle(job_id, fail, token=token)
        if record is None:
            return None
        if record.state is JobState.DEAD:
            self.store.append_event(
                job_id, "dead", at, error=error,
                attempts=record.attempts,
                detail=f"attempt budget "
                       f"{self._attempt_budget(record.spec)} spent; "
                       f"dead-lettered (requeue to revive)")
            with self._stats_lock:
                self._dead_lettered_total += 1
        else:
            self.store.append_event(
                job_id, "failed", at, error=error,
                attempt=record.attempts,
                detail="re-queued for retry")
            self.scheduler.submit(job_id, record.spec.priority)
        return record

    def _renew_lease(self, job_id: str, token: str) -> bool:
        """Extend the worker's lease; ``False`` means it was lost.

        Renewal is throttled to the back half of the lease so hot
        checkpoint cadences do not turn every boundary into a record
        write; the read that checks ownership is cheap.
        """
        at = now()
        try:
            record = self.store.load(job_id)
        except ServiceError:
            return False
        if record.lease_owner != token:
            return False
        expires = record.lease_expires_at
        if (expires is not None
                and expires - at > self.config.chaos.lease_s / 2):
            return True

        def extend(rec: JobRecord) -> None:
            rec.lease_expires_at = at + self.config.chaos.lease_s

        return self._settle(job_id, extend, token=token) is not None

    def sweep_leases(self, at: float) -> list[str]:
        """Reclaim every lease-expired ``running`` job (the watchdog
        body; callable directly from tests).  Returns the ids swept."""
        swept: list[str] = []
        for record in self.store.list_jobs():
            if not record.lease_expired(at):
                continue
            owner = record.lease_owner

            def reclaim(rec: JobRecord, owner: str | None = owner) -> None:
                if not rec.lease_expired(at):  # re-check under lock
                    raise _LostRace
                rec.transition(JobState.CHECKPOINTED, at)
                rec.clear_lease()
                if rec.attempts >= self._attempt_budget(rec.spec):
                    rec.error = (f"worker lease expired (owner "
                                 f"{owner}) with attempt budget spent")
                    rec.transition(JobState.DEAD, at)

            try:
                updated = self.store.update(record.id, reclaim)
            except (_LostRace, ServiceError):
                continue  # worker settled (or cancel won) in between
            swept.append(record.id)
            if updated.state is JobState.DEAD:
                self.store.append_event(
                    record.id, "dead", at, error=updated.error,
                    attempts=updated.attempts,
                    detail="lease expired; dead-lettered")
                with self._stats_lock:
                    self._dead_lettered_total += 1
            else:
                self.store.append_event(
                    record.id, "lease-expired", at, owner=owner,
                    attempt=updated.attempts,
                    detail="watchdog reclaimed hung/killed worker's "
                           "job; re-queued from last checkpoint")
                self.scheduler.submit(record.id,
                                      updated.spec.priority)
                with self._stats_lock:
                    self._expired_requeued_total += 1
        with self._stats_lock:
            self._watchdog_sweeps += 1
        return swept

    def requeue(self, job_id: str) -> JobRecord:
        """Revive a dead-lettered (or legacy ``failed``) job.

        Resets the attempt budget and drops stale error/lease/cancel
        state; any other starting state raises the usual illegal-
        transition :class:`~repro.errors.ServiceError` (HTTP 409).
        """
        at = now()

        def revive(rec: JobRecord) -> None:
            rec.transition(JobState.QUEUED, at)
            rec.error = None
            rec.attempts = 0
            rec.clear_lease()

        record = self.store.update(job_id, revive)
        self.store.clear_cancel(job_id)
        self.store.append_event(job_id, "requeued", at,
                                detail="operator requeue; attempt "
                                       "budget reset")
        self.scheduler.submit(job_id, record.spec.priority)
        return record

    def _run_job(self, job_id: str) -> None:
        try:
            record = self.store.load(job_id)
        except ServiceError:
            return
        if record.terminal:
            return
        if self.store.cancel_requested(job_id):
            at = now()
            if self._settle(
                    job_id,
                    lambda rec: rec.transition(JobState.CANCELLED,
                                               at)) is not None:
                self.store.append_event(job_id, "cancelled", at,
                                        detail="cancelled before running")
            return

        # A retried job resumes too: its checkpoint directory holds
        # whatever the failed/reclaimed attempt last published (or a
        # completed result whose record settle lost a race), and the
        # bit-identity guarantee makes restoring it equivalent to --
        # and much cheaper than -- starting over.
        resume = (record.state is JobState.CHECKPOINTED
                  or record.attempts > 0)
        at = now()
        worker_name = threading.current_thread().name

        def start(rec: JobRecord) -> None:
            rec.transition(JobState.RUNNING, at)
            rec.attempts += 1
            rec.error = None
            rec.lease_owner = f"{worker_name}:{job_id}:a{rec.attempts}"
            rec.lease_expires_at = at + self.config.chaos.lease_s

        record = self._settle(job_id, start)
        if record is None:  # cancel committed between load and start
            return
        token = record.lease_owner
        self.store.append_event(job_id, "started", at,
                                attempt=record.attempts, resume=resume,
                                lease_owner=token,
                                backend=self.execution.backend)

        cached = self._cached_result(record.fingerprint)
        if cached is not None:
            finish_at = now()
            if self._settle(
                    job_id, lambda rec: self._apply_result(
                        rec, cached, finish_at, cached_hit=True),
                    token=token) is not None:
                self.store.append_event(job_id, "cache-hit", finish_at,
                                        fingerprint=record.fingerprint,
                                        new_simulations=0)
            return

        def listener(n_simulations: int, kind: str) -> None:
            self.store.append_event(job_id, "checkpoint", now(),
                                    n_simulations=n_simulations,
                                    save_kind=kind)

        def interrupt() -> str | None:
            if self.store.cancel_requested(job_id):
                return "cancel"
            if token is not None and not self._renew_lease(job_id,
                                                           token):
                # the watchdog reclaimed this job (renewals starved
                # past the lease); its new owner is authoritative --
                # drain without touching the record
                return "lease-lost"
            return None

        perf = (PerfConfig(cache_path=self.config.solve_cache)
                if self.config.solve_cache is not None else None)
        try:
            estimate = execute(record.spec,
                               self.store.checkpoint_dir(job_id),
                               resume=resume, execution=self.execution,
                               perf=perf, keep=self.config.checkpoint_keep,
                               interrupt=interrupt, listener=listener)
        except ShutdownRequested as stop:
            at = now()
            if stop.reason == "lease-lost":
                # The watchdog already re-queued (or buried) the job;
                # this worker is a zombie and must not touch it.
                return
            if stop.reason == "cancel":
                if self._settle(
                        job_id,
                        lambda rec: rec.transition(JobState.CANCELLED,
                                                   at),
                        token=token) is not None:
                    self.store.append_event(
                        job_id, "cancelled", at,
                        detail="cancelled mid-run; final snapshot kept")
            else:
                if self._settle(
                        job_id,
                        lambda rec: rec.transition(JobState.CHECKPOINTED,
                                                   at),
                        token=token) is not None:
                    self.store.append_event(
                        job_id, "checkpointed", at,
                        detail=f"graceful shutdown ({stop.reason}); "
                               f"will resume on restart")
            return
        except Exception as exc:  # repro: allow-broad-except
            # The job boundary: any estimator failure becomes a durable
            # record instead of killing the worker thread -- re-queued
            # while attempt budget remains, dead-lettered after.
            self._settle_failure(job_id,
                                 f"{type(exc).__name__}: {exc}",
                                 now(), token=token)
            return

        # The result is published under the spec fingerprint even when
        # a concurrent cancel wins the record: determinism makes it
        # valid for every future job with the same fingerprint.
        self.store.store_result(record.fingerprint, estimate)
        done_at = now()
        if self._settle(
                job_id, lambda rec: self._apply_result(
                    rec, estimate, done_at, cached_hit=False),
                token=token) is not None:
            self.store.append_event(
                job_id, "done", done_at, pfail=float(estimate.pfail),
                ci_halfwidth=float(estimate.ci_halfwidth),
                n_simulations=int(estimate.n_simulations))
        if perf is not None:
            save_registered_caches()

    # -- helpers -------------------------------------------------------
    def _cached_result(self, fingerprint: str) -> FailureEstimate | None:
        try:
            return self.store.load_result(fingerprint)
        except ServiceError:
            return None

    @staticmethod
    def _apply_result(record: JobRecord, estimate: FailureEstimate,
                      at: float, *, cached_hit: bool) -> None:
        record.transition(JobState.DONE, at)
        record.cached = cached_hit
        record.pfail = float(estimate.pfail)
        record.ci_halfwidth = float(estimate.ci_halfwidth)
        record.n_simulations = int(estimate.n_simulations)

    def stats(self) -> dict:
        """Health snapshot for ``GET /healthz``."""
        counts: dict[str, int] = {}
        active_leases = 0
        for record in self.store.list_jobs():
            counts[record.state.value] = counts.get(
                record.state.value, 0) + 1
            if (record.state is JobState.RUNNING
                    and record.lease_owner is not None):
                active_leases += 1
        with self._stats_lock:
            expired_requeued = self._expired_requeued_total
            dead_lettered = self._dead_lettered_total
            sweeps = self._watchdog_sweeps
        return {"status": "ok", "queued": len(self.scheduler),
                "workers": self.config.workers,
                "backend": self.execution.backend,
                "jobs": counts,
                "leases": {"active": active_leases,
                           "lease_s": self.config.chaos.lease_s,
                           "expired_requeued_total": expired_requeued},
                "dead_letter": {
                    "dead_jobs": counts.get(JobState.DEAD.value, 0),
                    "dead_lettered_total": dead_lettered,
                    "max_attempts": self.config.chaos.max_attempts},
                "watchdog": {
                    "interval_s": self.config.chaos.sweep_interval_s,
                    "sweeps": sweeps}}


def execute(spec, checkpoint_dir, **kwargs):
    """Indirection point for :func:`repro.service.worker.execute_job`
    (kept separate so tests can monkeypatch job execution)."""
    from repro.service.worker import execute_job

    return execute_job(spec, checkpoint_dir, **kwargs)


# ---------------------------------------------------------------------
# HTTP front
# ---------------------------------------------------------------------
def _make_handler(daemon: ServiceDaemon) -> type[BaseHTTPRequestHandler]:
    class Handler(BaseHTTPRequestHandler):
        server_version = "ecripse-service/1"

        # The event feed is the service's log; HTTP chatter stays quiet.
        def log_message(self, fmt: str, *args: object) -> None:
            pass

        # -- plumbing --------------------------------------------------
        def _send_json(self, code: int, payload: object,
                       headers: dict[str, str] | None = None) -> None:
            body = (json.dumps(payload, indent=1, sort_keys=True)
                    + "\n").encode()
            self.send_response(code)
            self.send_header("Content-Type", "application/json")
            self.send_header("Content-Length", str(len(body)))
            for name, value in (headers or {}).items():
                self.send_header(name, value)
            self.end_headers()
            self.wfile.write(body)

        def _error(self, code: int, message: str,
                   headers: dict[str, str] | None = None) -> None:
            self._send_json(code, {"error": message}, headers=headers)

        @staticmethod
        def _error_code(exc: ServiceError) -> int:
            text = str(exc)
            if "unknown job" in text:
                return 404
            if "illegal transition" in text:
                # the job exists but is in the wrong state for the
                # requested action (e.g. requeue of a running job)
                return 409
            return 400

        def _read_body(self) -> object:
            length = int(self.headers.get("Content-Length", 0))
            raw = self.rfile.read(length) if length else b""
            try:
                return json.loads(raw or b"{}")
            except json.JSONDecodeError as exc:
                raise ServiceError(f"invalid JSON body: {exc}") from exc

        # -- routing ---------------------------------------------------
        def do_GET(self) -> None:  # noqa: N802 (stdlib API)
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            try:
                if parts == ["healthz"]:
                    self._send_json(200, daemon.stats())
                elif parts == ["jobs"]:
                    self._send_json(200, {
                        "jobs": [r.as_dict()
                                 for r in daemon.store.list_jobs()]})
                elif len(parts) == 2 and parts[0] == "jobs":
                    self._send_json(200, daemon.store.load(
                        parts[1]).as_dict())
                elif (len(parts) == 3 and parts[0] == "jobs"
                        and parts[2] == "result"):
                    self._get_result(parts[1])
                elif (len(parts) == 3 and parts[0] == "jobs"
                        and parts[2] == "events"):
                    self._get_events(parts[1], parse_qs(url.query))
                else:
                    self._error(404, f"no route for GET {url.path}")
            except ServiceError as exc:
                self._error(self._error_code(exc), str(exc))

        def do_POST(self) -> None:  # noqa: N802 (stdlib API)
            url = urlparse(self.path)
            parts = [p for p in url.path.split("/") if p]
            try:
                if parts == ["jobs"]:
                    if daemon.coordinator.requested:
                        # Retry-After tells resilient clients this is a
                        # drain, not a death: another daemon instance
                        # (or a restart) may accept the job shortly.
                        self._error(503, "service is draining",
                                    headers={"Retry-After": "1"})
                        return
                    record = daemon.submit(self._read_body())
                    self._send_json(201, record.as_dict())
                elif (len(parts) == 3 and parts[0] == "jobs"
                        and parts[2] == "cancel"):
                    self._send_json(200, daemon.cancel(parts[1]).as_dict())
                elif (len(parts) == 3 and parts[0] == "jobs"
                        and parts[2] == "requeue"):
                    self._send_json(200,
                                    daemon.requeue(parts[1]).as_dict())
                else:
                    self._error(404, f"no route for POST {url.path}")
            except ServiceError as exc:
                self._error(self._error_code(exc), str(exc))

        # -- endpoints -------------------------------------------------
        def _get_result(self, job_id: str) -> None:
            record = daemon.store.load(job_id)
            if record.state is not JobState.DONE:
                self._error(409, f"job {job_id} is {record.state.value}, "
                                 f"not done"
                                 + (f": {record.error}" if record.error
                                    else ""))
                return
            estimate = daemon.store.load_result(record.fingerprint)
            if estimate is None:
                self._error(500, f"result file for job {job_id} "
                                 f"(fingerprint {record.fingerprint}) "
                                 f"is missing")
                return
            payload = estimate_to_dict(estimate)
            payload["job"] = {"id": record.id,
                              "fingerprint": record.fingerprint,
                              "cached": record.cached}
            self._send_json(200, payload)

        def _get_events(self, job_id: str, query: dict) -> None:
            daemon.store.load(job_id)  # 404 on unknown ids
            raw_since = query.get("since", ["0"])[0]
            try:
                since = int(raw_since)
            except ValueError:
                raise ServiceError(
                    f"invalid 'since' value {raw_since!r}: expected an "
                    f"integer event index") from None
            follow = query.get("follow", ["0"])[0] in ("1", "true")
            self.send_response(200)
            self.send_header("Content-Type", "application/x-ndjson")
            self.send_header("Cache-Control", "no-store")
            self.end_headers()
            cursor = max(0, since)
            idle_s = 0.0
            while True:
                events = daemon.store.read_events(job_id, since=cursor)
                for event in events:
                    self.wfile.write(
                        (json.dumps(event, sort_keys=True)
                         + "\n").encode())
                cursor += len(events)
                if events:
                    idle_s = 0.0
                elif idle_s >= daemon.config.chaos.heartbeat_s:
                    # Keep-alive for clients with read timeouts: not a
                    # stored event (the cursor does not advance), just
                    # proof of life on a quiet stream.  Clients drop
                    # lines with kind == "heartbeat".
                    idle_s = 0.0
                    self.wfile.write(
                        (json.dumps({"at": now(), "kind": "heartbeat"},
                                    sort_keys=True) + "\n").encode())
                self.wfile.flush()
                if not follow:
                    return
                record = daemon.store.load(job_id)
                if record.terminal and not daemon.store.read_events(
                        job_id, since=cursor):
                    return
                if daemon.coordinator.requested:
                    return
                time.sleep(_POLL_S)
                idle_s += _POLL_S

    return Handler
