"""Declarative job specifications.

A :class:`JobSpec` is the unit the service accepts over HTTP: a frozen,
validated description of one estimation problem plus its scheduling
hints.  The result-determining fields (problem + budget + seed) feed
:meth:`JobSpec.fingerprint`, the key of the durable result cache --
two submissions with equal fingerprints are *the same job* and the
second is served from the result store with zero new simulations.

Scheduling hints (``priority``, ``checkpoint_every``, ``max_attempts``)
deliberately stay out of the fingerprint, exactly like the execution
backend stays out of the estimator fingerprints: they change *how* (or
how often) a job runs, never what it computes -- a job retried under a
different attempt budget must still hit the same result-cache entry.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, fields, replace

from repro.analysis.ecc import ArrayConfig
from repro.errors import ServiceError

#: job kinds the worker knows how to build (see repro.service.worker).
JOB_KINDS: tuple[str, ...] = ("estimate", "naive", "array")

#: bumped when the spec layout changes incompatibly.
SPEC_SCHEMA = 1

#: fields that do not participate in the result fingerprint:
#: scheduling/resilience hints plus result-neutral performance knobs
#: (``array_backend`` selects *how* margins are computed, never what
#: they are -- the REP009 neutrality contract).
_NONRESULT_FIELDS = frozenset(
    {"priority", "checkpoint_every", "max_attempts", "array_backend"})


@dataclass(frozen=True)
class JobSpec:
    """One estimation job.

    Attributes
    ----------
    kind:
        ``"estimate"`` runs the two-stage ECRIPSE estimator;
        ``"naive"`` runs the chunked naive Monte-Carlo reference;
        ``"array"`` answers the array-reliability decision question
        (:func:`repro.analysis.ecc.analyze_array`), either from a
        directly supplied ``pfail`` or by chaining a full estimator
        run.
    vdd:
        Supply voltage [V]; ``None`` means the paper's nominal supply.
    alpha:
        RTN duty ratio; ``None`` disables RTN (RDF-only).
    seed:
        Estimator seed -- part of the fingerprint: a different seed is
        a different (statistically independent) job.
    target_relative_error:
        Stop when the 95 % CI relative error drops below this.
    max_simulations:
        Simulation budget; ``None`` lets the service apply its default
        quota.  The *clamped* value is canonical (see
        :meth:`repro.service.scheduler.QuotaPolicy.apply`).
    n_samples:
        Sample budget for ``kind="naive"`` (clamped by the same quota).
    quick:
        Use the reduced-budget smoke configuration
        (:meth:`~repro.core.ecripse.EcripseConfig.quick`), matching the
        CLI's ``--quick`` bit-for-bit.
    grid_points:
        Butterfly grid resolution of the evaluator.
    health_policy:
        ``strict`` / ``recover`` / ``permissive`` (see
        :mod:`repro.health`); part of the fingerprint because recovery
        paths may legitimately change the estimate.
    pfail:
        Direct cell failure probability for ``kind="array"``; ``None``
        chains an estimator run first.  Part of the fingerprint: a
        different pfail is a different decision question.
    array:
        The :class:`~repro.analysis.ecc.ArrayConfig` describing the
        array-reliability question (``kind="array"`` only).  Submitted
        as a nested JSON object; canonicalised to tuples so the wire
        round trip cannot change the fingerprint.
    priority:
        Larger runs first (ties FIFO).  Scheduling-only.
    checkpoint_every:
        Snapshot cadence in simulations.  Scheduling-only: cadence
        never changes the result (the kill/resume bit-identity
        guarantee), so jobs differing only here share a cache entry.
    max_attempts:
        Per-job attempt budget before the daemon dead-letters the job;
        ``None`` uses the daemon's configured default
        (:attr:`repro.chaos.config.ChaosConfig.max_attempts`).
        Resilience-only, excluded from the fingerprint.
    array_backend:
        Array namespace for the solver hot path (``"numpy"``,
        ``"numba"``, or an importable Array-API namespace; see
        :mod:`repro.xp`).  Performance-only and excluded from the
        fingerprint: by the neutrality contract every backend labels
        identically (unusable ones silently fall back to numpy), so
        jobs differing only here are the same job and share a result
        cache entry.
    """

    kind: str = "estimate"
    vdd: float | None = None
    alpha: float | None = None
    seed: int = 2015
    target_relative_error: float = 0.05
    max_simulations: int | None = None
    n_samples: int = 100_000
    quick: bool = False
    grid_points: int = 61
    health_policy: str = "strict"
    pfail: float | None = None
    array: ArrayConfig | None = None
    priority: int = 0
    checkpoint_every: int = 1000
    max_attempts: int | None = None
    array_backend: str = "numpy"

    def __post_init__(self) -> None:
        if self.kind not in JOB_KINDS:
            raise ServiceError(
                f"unknown job kind {self.kind!r}; expected one of "
                f"{', '.join(JOB_KINDS)}")
        if self.vdd is not None and not 0.0 < float(self.vdd) < 2.0:
            raise ServiceError(
                f"vdd must lie in (0, 2) volts, got {self.vdd}")
        if self.alpha is not None and not 0.0 <= float(self.alpha) <= 1.0:
            raise ServiceError(
                f"alpha must lie in [0, 1], got {self.alpha}")
        if self.target_relative_error <= 0:
            raise ServiceError("target_relative_error must be positive")
        if self.max_simulations is not None and self.max_simulations < 1:
            raise ServiceError(
                f"max_simulations must be >= 1, got "
                f"{self.max_simulations}")
        if self.n_samples < 1:
            raise ServiceError(
                f"n_samples must be >= 1, got {self.n_samples}")
        if self.grid_points < 3:
            raise ServiceError(
                f"grid_points must be >= 3, got {self.grid_points}")
        if self.health_policy not in ("strict", "recover", "permissive"):
            raise ServiceError(
                f"unknown health_policy {self.health_policy!r}")
        if self.checkpoint_every < 1:
            raise ServiceError(
                f"checkpoint_every must be >= 1, got "
                f"{self.checkpoint_every}")
        if self.max_attempts is not None and self.max_attempts < 1:
            raise ServiceError(
                f"max_attempts must be >= 1, got {self.max_attempts}")
        if not self.array_backend or not isinstance(self.array_backend,
                                                    str):
            raise ServiceError(
                "array_backend must be a non-empty backend name")
        if isinstance(self.array, dict):
            try:
                object.__setattr__(
                    self, "array", ArrayConfig.from_dict(self.array))
            except (TypeError, ValueError) as exc:
                raise ServiceError(
                    f"invalid array config: {exc}") from exc
        if self.kind == "array":
            if self.array is None:
                # canonical default question, so the fingerprint of
                # "array job with defaults" is unique
                object.__setattr__(self, "array", ArrayConfig())
            if self.pfail is not None \
                    and not 0.0 <= float(self.pfail) <= 0.5:
                raise ServiceError(
                    f"pfail must lie in [0, 0.5], got {self.pfail}")
        else:
            if self.array is not None:
                raise ServiceError(
                    "array config is only valid for kind='array'")
            if self.pfail is not None:
                raise ServiceError(
                    "pfail is only valid for kind='array'")

    # -- wire format ---------------------------------------------------
    def as_dict(self) -> dict:
        """JSON-ready plain dict (schema-tagged)."""
        data = asdict(self)
        data["schema"] = SPEC_SCHEMA
        return data

    @classmethod
    def from_dict(cls, data: object) -> "JobSpec":
        """Parse and validate a submitted spec.

        Unknown keys are rejected -- a typo'd field silently falling
        back to its default would run (and cache!) the wrong job.
        """
        if not isinstance(data, dict):
            raise ServiceError(
                f"job spec must be a JSON object, got "
                f"{type(data).__name__}")
        payload = dict(data)
        schema = payload.pop("schema", SPEC_SCHEMA)
        if schema != SPEC_SCHEMA:
            raise ServiceError(
                f"unsupported spec schema {schema!r}; this build "
                f"speaks version {SPEC_SCHEMA}")
        known = {f.name for f in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ServiceError(
                f"unknown spec field(s): {', '.join(unknown)}")
        try:
            return cls(**payload)
        except TypeError as exc:
            raise ServiceError(f"invalid job spec: {exc}") from exc

    def with_(self, **changes: object) -> "JobSpec":
        """Copy with ``changes`` applied (dataclass replace)."""
        return replace(self, **changes)  # type: ignore[arg-type]

    # -- identity ------------------------------------------------------
    def result_fields(self) -> dict:
        """The fields that determine the job's result (canonical
        order) -- everything except the scheduling hints and the
        result-neutral performance knobs."""
        data = asdict(self)
        return {name: data[name] for name in sorted(data)
                if name not in _NONRESULT_FIELDS}

    def fingerprint(self) -> str:
        """Stable hex id of the *result* this job computes.

        Combines the estimator's checkpoint fingerprint (method,
        configuration, RTN model) with the evaluator's solve
        fingerprint (cell, supply, grid, bisection depths) and the
        spec's own budget/seed fields -- see
        :func:`repro.service.worker.spec_fingerprint`.  Equal
        fingerprints mean bit-identical results, which is the licence
        for the result cache to answer without simulating.
        """
        from repro.service.worker import spec_fingerprint

        return spec_fingerprint(self)
