"""Durable state for the job service.

Layout, one tree per daemon::

    <root>/
        .seq                    # last allocated job number
        jobs/
            job-000001/
                job.json        # JobRecord (atomic temp-then-rename)
                events.jsonl    # append-only progress/health/perf feed
                cancel          # flag file: cancellation requested
                checkpoints/    # CheckpointStore root for this job
            job-000002/
            ...
        results/
            result-<fingerprint>.json   # FailureEstimate per fingerprint

Every mutation of ``job.json`` goes through the same temp-then-rename
discipline as the checkpoint store, so a ``kill -9`` at any instant
leaves either the old record or the new one -- never a torn file.  The
event feed is append-only JSONL: a torn final line (the only possible
damage) is dropped on read.

The result cache is keyed on the job *fingerprint* (see
:meth:`~repro.service.spec.JobSpec.fingerprint`), not the job id:
any number of jobs may share one result file, which is exactly the
duplicate-submission-costs-zero-simulations guarantee.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path
from typing import Callable, Iterable

from repro.analysis.persistence import load_estimate, save_estimate
from repro.chaos.fsops import FsOps, default_fs
from repro.checkpoint.atomic import atomic_write_text
from repro.checkpoint.lockfile import FileLock
from repro.core.estimate import FailureEstimate
from repro.errors import ServiceError
from repro.service.model import JobRecord, JobState
from repro.service.spec import JobSpec

_JOB_FILE = "job.json"
_EVENTS_FILE = "events.jsonl"
_CANCEL_FILE = "cancel"
_CHECKPOINTS_DIR = "checkpoints"


class JobStore:
    """Owns one service state tree (see module docstring).

    Thread-safe for one daemon process (an ``RLock`` serialises
    load-modify-write cycles); job-id allocation additionally takes a
    file lock so two daemons pointed at one tree cannot mint the same
    id.  The store itself carries no clock -- callers pass timestamps
    (from :func:`repro.service.scheduler.now`) in.
    """

    def __init__(self, root: str | Path,
                 fs: FsOps | None = None) -> None:
        self.root = Path(root)
        self.jobs_dir = self.root / "jobs"
        self.results_dir = self.root / "results"
        self.jobs_dir.mkdir(parents=True, exist_ok=True)
        self.results_dir.mkdir(parents=True, exist_ok=True)
        self._fs = fs
        self._seq_path = self.root / ".seq"
        self._seq_lock = FileLock(self.root / ".seq.lock", fs=fs)
        self._lock = threading.RLock()

    @property
    def fs(self) -> FsOps:
        """The filesystem plane every durable write routes through."""
        return self._fs if self._fs is not None else default_fs()

    # -- job records ---------------------------------------------------
    def create_job(self, spec: JobSpec, fingerprint: str,
                   at: float) -> JobRecord:
        """Mint a fresh ``queued`` record and persist it."""
        job_id = self._allocate_id()
        record = JobRecord(id=job_id, spec=spec, fingerprint=fingerprint,
                           created_at=at, updated_at=at,
                           history=[[JobState.QUEUED.value, at]])
        (self.job_dir(job_id) / _CHECKPOINTS_DIR).mkdir(
            parents=True, exist_ok=True)
        self.save(record)
        return record

    def save(self, record: JobRecord) -> None:
        """Atomically persist ``record`` as its ``job.json``."""
        path = self.job_dir(record.id) / _JOB_FILE
        path.parent.mkdir(parents=True, exist_ok=True)
        atomic_write_text(
            path,
            json.dumps(record.as_dict(), indent=1, sort_keys=True) + "\n",
            fs=self.fs)

    def load(self, job_id: str) -> JobRecord:
        """Read one record; unknown ids raise :class:`ServiceError`."""
        path = self.job_dir(job_id) / _JOB_FILE
        try:
            data = json.loads(path.read_text())
        except FileNotFoundError:
            raise ServiceError(f"unknown job {job_id!r}") from None
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise ServiceError(
                f"corrupt record for job {job_id!r}: {exc}") from exc
        return JobRecord.from_dict(data)

    def update(self, job_id: str,
               mutate: Callable[[JobRecord], None]) -> JobRecord:
        """Load-modify-write one record under the store lock."""
        with self._lock:
            record = self.load(job_id)
            mutate(record)
            self.save(record)
            return record

    def list_jobs(self) -> list[JobRecord]:
        """All readable records, oldest id first (skips corrupt ones)."""
        records = []
        for entry in sorted(self.jobs_dir.iterdir()):
            if not entry.is_dir():
                continue
            try:
                records.append(self.load(entry.name))
            except ServiceError:
                continue
        return records

    def find_by_fingerprint(self, fingerprint: str) -> JobRecord | None:
        """Newest record sharing ``fingerprint``, if any."""
        match = None
        for record in self.list_jobs():
            if record.fingerprint == fingerprint:
                match = record
        return match

    def job_dir(self, job_id: str) -> Path:
        if ("/" in job_id or "\\" in job_id or job_id.startswith(".")
                or not job_id):
            raise ServiceError(f"invalid job id {job_id!r}")
        return self.jobs_dir / job_id

    def checkpoint_dir(self, job_id: str) -> Path:
        """The per-job :class:`CheckpointStore` root."""
        return self.job_dir(job_id) / _CHECKPOINTS_DIR

    def _allocate_id(self) -> str:
        with self._lock, self._seq_lock:
            try:
                last = int(self._seq_path.read_text().strip())
            except (FileNotFoundError, ValueError):
                last = 0
            nxt = last + 1
            atomic_write_text(self._seq_path, f"{nxt}\n", fs=self.fs)
            return f"job-{nxt:06d}"

    # -- event feed ----------------------------------------------------
    def append_event(self, job_id: str, kind: str, at: float,
                     **payload: object) -> None:
        """Append one event line to the job's feed."""
        event = {"kind": str(kind), "at": float(at), **payload}
        path = self.job_dir(job_id) / _EVENTS_FILE
        with self._lock:
            self.fs.append_text(
                path, json.dumps(event, sort_keys=True) + "\n")

    def read_events(self, job_id: str, since: int = 0) -> list[dict]:
        """Events from index ``since`` onward (torn tail dropped)."""
        path = self.job_dir(job_id) / _EVENTS_FILE
        try:
            lines = path.read_text().splitlines()
        except FileNotFoundError:
            return []
        events = []
        for line in lines[max(0, int(since)):]:
            try:
                events.append(json.loads(line))
            except json.JSONDecodeError:
                break
        return events

    # -- cancellation --------------------------------------------------
    def request_cancel(self, job_id: str) -> None:
        """Raise the cancel flag (workers poll it at safe boundaries)."""
        self.fs.touch(self.job_dir(job_id) / _CANCEL_FILE)

    def cancel_requested(self, job_id: str) -> bool:
        return (self.job_dir(job_id) / _CANCEL_FILE).exists()

    def clear_cancel(self, job_id: str) -> None:
        """Drop a stale cancel flag (an operator requeue must not be
        instantly re-cancelled by the flag of a previous life)."""
        self.fs.unlink(self.job_dir(job_id) / _CANCEL_FILE,
                       missing_ok=True)

    # -- result cache --------------------------------------------------
    def result_path(self, fingerprint: str) -> Path:
        return self.results_dir / f"result-{fingerprint}.json"

    def store_result(self, fingerprint: str,
                     estimate: FailureEstimate) -> Path:
        """Publish a finished estimate under its fingerprint.

        ``overwrite=True`` is safe *because* of the determinism
        guarantee: two jobs with one fingerprint produce bit-identical
        estimates, so the second write is a no-op in content.
        """
        return save_estimate(estimate, self.result_path(fingerprint),
                             overwrite=True)

    def load_result(self, fingerprint: str) -> FailureEstimate | None:
        """The cached estimate for ``fingerprint``, or ``None``."""
        path = self.result_path(fingerprint)
        try:
            return load_estimate(path)
        except FileNotFoundError:
            return None
        except ValueError as exc:
            raise ServiceError(
                f"corrupt cached result {path.name}: {exc}") from exc

    # -- crash recovery ------------------------------------------------
    def recover(self, at: float) -> list[str]:
        """Reconcile records after a daemon restart.

        Jobs found ``running`` were orphaned by a crash (the previous
        process died without a graceful drain): they move to
        ``checkpointed`` -- their on-disk snapshot is whatever the
        periodic cadence last published, and resume from there is
        bit-identical by the checkpoint guarantee.  Returns every job
        id that should be re-queued (``queued`` + ``checkpointed``),
        oldest first.
        """
        def park(rec: JobRecord) -> None:
            rec.transition(JobState.CHECKPOINTED, at)
            rec.clear_lease()

        requeue: list[str] = []
        for record in self.list_jobs():
            if record.state is JobState.RUNNING:
                self.update(record.id, park)
                self.append_event(record.id, "recovered", at,
                                  detail="daemon restart found job "
                                         "running; resuming from last "
                                         "checkpoint")
                requeue.append(record.id)
            elif record.state in (JobState.QUEUED, JobState.CHECKPOINTED):
                requeue.append(record.id)
        return requeue
