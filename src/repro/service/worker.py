"""Turning a :class:`~repro.service.spec.JobSpec` into an estimate.

Three responsibilities:

* :func:`build_estimator` -- construct the estimator a spec describes
  (two-stage ECRIPSE or the chunked naive reference), mirroring the CLI
  flag-to-object wiring bit-for-bit (``quick`` uses the same
  :meth:`~repro.core.ecripse.EcripseConfig.quick` preset as
  ``ecripse --quick``);
* :func:`spec_fingerprint` -- the durable result-cache key: estimator
  checkpoint fingerprint + evaluator solve fingerprint + the spec's
  result fields.  Equal keys mean bit-identical estimates, so the cache
  may answer without simulating;
* :func:`execute_job` -- one checkpointed run with the full resume
  protocol, wired to the service's cancellation hook and progress
  listener through the :class:`~repro.checkpoint.manager.CheckpointManager`
  seam (the same safe-boundary seam the kill/resume harness uses, so
  every interruption resumes bit-identically).

Naive jobs always run the *chunked* path (a real
:class:`~repro.runtime.config.ExecutionConfig`, never ``None``): the
chunk decomposition is backend-invariant, so the cached result is valid
whatever backend a later daemon happens to serve it under.
"""

from __future__ import annotations

from typing import Callable

from repro.checkpoint.config import CheckpointConfig
from repro.core.ecripse import EcripseConfig, EcripseEstimator
from repro.core.estimate import FailureEstimate
from repro.core.naive import NaiveMonteCarlo
from repro.errors import ServiceError
from repro.experiments.setup import ExperimentSetup, paper_setup
from repro.health import HealthConfig
from repro.perf import PerfConfig
from repro.rng import stable_seed
from repro.runtime import ExecutionConfig
from repro.service.spec import SPEC_SCHEMA, JobSpec


def job_setup(spec: JobSpec,
              perf: PerfConfig | None = None) -> ExperimentSetup:
    """The paper setup a spec describes.

    The spec's ``array_backend`` is applied on top of whatever perf
    policy the daemon runs with: the knob is result-neutral (excluded
    from the fingerprint), so honouring it per job can never make the
    result cache lie.
    """
    perf = PerfConfig() if perf is None else perf
    if perf.array_backend != spec.array_backend:
        perf = perf.with_(array_backend=spec.array_backend)
    return paper_setup(vdd=spec.vdd, alpha=spec.alpha,
                       grid_points=spec.grid_points, perf=perf)


def build_estimator(spec: JobSpec, setup: ExperimentSetup,
                    execution: ExecutionConfig | None = None):
    """Construct the estimator for ``spec`` over ``setup``."""
    execution = ExecutionConfig() if execution is None else execution
    if spec.kind in ("estimate", "array"):
        health = HealthConfig(policy=spec.health_policy)
        config = (EcripseConfig.quick() if spec.quick
                  else EcripseConfig()).with_(execution=execution,
                                              health=health)
        return EcripseEstimator(setup.space, setup.indicator,
                                setup.rtn_model, config=config,
                                seed=spec.seed)
    if spec.kind == "naive":
        return NaiveMonteCarlo(setup.space, setup.indicator,
                               setup.rtn_model, seed=spec.seed,
                               execution=execution)
    raise ServiceError(f"unknown job kind {spec.kind!r}")


def run_kwargs(spec: JobSpec) -> dict:
    """The ``estimator.run`` arguments a spec implies."""
    if spec.kind in ("estimate", "array"):
        return {"target_relative_error": spec.target_relative_error,
                "max_simulations": spec.max_simulations}
    return {"n_samples": spec.n_samples,
            "target_relative_error": spec.target_relative_error}


def spec_fingerprint(spec: JobSpec) -> str:
    """Stable hex id of the *result* ``spec`` computes.

    Three layers, deliberately overlapping:

    * the estimator's checkpoint fingerprint (method, configuration
      including the health policy, RTN model class + alpha; execution
      backend excluded by construction);
    * the evaluator's solve fingerprint (cell parameter cards,
      geometry, supply, grid resolution, margin levels, bisection
      depths);
    * the spec's own result fields (seed, budgets, target) -- the
      knobs the estimator fingerprints do not see.

    Scheduling hints (priority, checkpoint cadence) never enter: by the
    kill/resume bit-identity guarantee they cannot change the estimate.
    """
    setup = job_setup(spec)
    estimator = build_estimator(spec, setup)
    return format(stable_seed(
        "service-job", SPEC_SCHEMA,
        estimator.fingerprint(),
        setup.evaluator.solve_fingerprint(),
        spec.result_fields()), "016x")


def execute_job(spec: JobSpec, checkpoint_dir, *, resume: bool,
                execution: ExecutionConfig | None = None,
                perf: PerfConfig | None = None,
                keep: int = 3,
                interrupt: Callable[[], str | None] | None = None,
                listener: Callable[[int, str], None] | None = None
                ) -> FailureEstimate:
    """Run (or resume) one job to completion.

    ``interrupt`` is polled at every checkpoint-safe boundary; a
    non-``None`` reason force-saves the boundary and unwinds with
    :class:`~repro.errors.ShutdownRequested` carrying that reason
    (the process-wide signal coordinator is honoured the same way).
    ``listener(n_simulations, kind)`` fires after each durable save.

    The resume protocol matches
    :func:`repro.checkpoint.integrate.run_checkpointed`: a finished
    run's ``result.json`` short-circuits, an interrupted run restores
    the newest snapshot and continues bit-identically, and the final
    estimator state is snapshotted before the result is published.
    """
    if spec.kind == "array" and spec.pfail is not None:
        # the decision question with a directly supplied pfail is pure
        # arithmetic -- no simulations, nothing to checkpoint
        return _direct_array_estimate(spec)
    setup = job_setup(spec, perf=perf)
    estimator = build_estimator(spec, setup, execution=execution)
    cp = CheckpointConfig(directory=checkpoint_dir,
                          every_simulations=spec.checkpoint_every,
                          keep=keep, resume=resume)
    manager = cp.manager("run")
    manager.interrupt = interrupt
    manager.listener = listener
    if resume:
        result = manager.load_result()
        if result is not None:
            manager.restore_into(estimator)
            return result
        manager.restore_into(estimator)
    estimate = estimator.run(checkpoint=manager, **run_kwargs(spec))
    if spec.kind == "array":
        _attach_array_report(spec, estimate)
    manager.save_final(estimator, estimate.n_simulations)
    manager.save_result(estimate)
    return estimate


def _attach_array_report(spec: JobSpec,
                         estimate: FailureEstimate) -> None:
    """Evaluate the decision chain on a finished estimate (robustness
    is judged at the CI upper bound) and ride it on the metadata, so
    the fingerprint-keyed result cache serves the full decision."""
    from repro.analysis.ecc import analyze_array

    assert spec.array is not None
    pfail = min(float(estimate.pfail), 0.5)
    upper = min(pfail + float(estimate.ci_halfwidth), 0.5)
    report = analyze_array(spec.array, pfail, cell_pfail_upper=upper)
    estimate.metadata["array"] = report.as_dict()


def _direct_array_estimate(spec: JobSpec) -> FailureEstimate:
    from repro.analysis.ecc import analyze_array

    assert spec.array is not None and spec.pfail is not None
    report = analyze_array(spec.array, float(spec.pfail))
    estimate = FailureEstimate(
        pfail=float(spec.pfail), ci_halfwidth=0.0, n_simulations=0,
        n_statistical_samples=0, method="array-direct",
        wall_time_s=0.0)
    estimate.metadata["array"] = report.as_dict()
    return estimate
