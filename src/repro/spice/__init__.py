"""A small transistor-level DC circuit simulator.

This subpackage is the "transistor-level simulation" substrate of the paper:
a netlist representation (:mod:`repro.spice.netlist`), an EKV-style MOSFET
compact model approximating the PTM 16 nm HP node
(:mod:`repro.spice.model`), modified-nodal-analysis stamping
(:mod:`repro.spice.mna`), a Newton--Raphson DC operating-point solver with
gmin/source stepping (:mod:`repro.spice.solver`) and DC sweeps
(:mod:`repro.spice.sweep`).

The Monte-Carlo hot path does *not* go through the generic solver -- the
vectorised evaluator in :mod:`repro.sram.butterfly` is used instead -- but
the generic engine validates that fast path and supports arbitrary circuits
in examples and tests.
"""

from __future__ import annotations

from repro.spice.model import MosfetParams, MosfetModel, NMOS_PTM16, PMOS_PTM16
from repro.spice.netlist import Circuit
from repro.spice.transient import TransientSolver, TransientResult, pulse
from repro.spice.elements import (
    Resistor,
    Capacitor,
    CurrentSource,
    VoltageSource,
    Mosfet,
)
from repro.spice.solver import DcSolver, OperatingPoint
from repro.spice.sweep import dc_sweep

__all__ = [
    "MosfetParams",
    "MosfetModel",
    "NMOS_PTM16",
    "PMOS_PTM16",
    "Circuit",
    "Resistor",
    "Capacitor",
    "CurrentSource",
    "VoltageSource",
    "Mosfet",
    "DcSolver",
    "OperatingPoint",
    "dc_sweep",
    "TransientSolver",
    "TransientResult",
    "pulse",
]
