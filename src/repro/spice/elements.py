"""Circuit elements for the DC simulator.

Each element knows how to *stamp* its linearised companion model into an
MNA system (:class:`repro.spice.mna.MnaSystem`) around a given candidate
solution.  Linear elements ignore the candidate; nonlinear ones (the
MOSFET) re-linearise every Newton iteration.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.spice.model import MosfetModel


class Element(ABC):
    """Base class for all circuit elements.

    Parameters
    ----------
    name:
        Unique identifier within a circuit.
    nodes:
        Node names this element connects to, in element-specific order.
    """

    #: number of auxiliary MNA unknowns (e.g. branch currents) the element
    #: contributes; voltage sources use 1, most elements 0.
    n_aux = 0

    def __init__(self, name: str, nodes: tuple[str, ...]):
        if not name:
            raise ValueError("element name must be non-empty")
        self.name = name
        self.nodes = tuple(nodes)

    @abstractmethod
    def stamp(self, system, x: np.ndarray) -> None:
        """Stamp the element linearised around solution vector ``x``."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r}, nodes={self.nodes})"


class Resistor(Element):
    """Two-terminal linear resistor."""

    def __init__(self, name: str, node_a: str, node_b: str, resistance: float):
        if resistance <= 0:
            raise ValueError(f"resistance must be positive, got {resistance}")
        super().__init__(name, (node_a, node_b))
        self.resistance = float(resistance)

    def stamp(self, system, x):
        a, b = (system.node_index(n) for n in self.nodes)
        g = 1.0 / self.resistance
        system.add_conductance(a, b, g)


class Capacitor(Element):
    """Two-terminal linear capacitor.

    In DC analysis a capacitor is an open circuit and stamps nothing; in
    transient analysis (:mod:`repro.spice.transient`) it stamps its
    backward-Euler companion model -- a conductance ``C/dt`` in parallel
    with a history current source -- using the time-step context the
    transient solver places on the MNA system.
    """

    def __init__(self, name: str, node_a: str, node_b: str,
                 capacitance: float):
        if capacitance <= 0:
            raise ValueError(
                f"capacitance must be positive, got {capacitance}")
        super().__init__(name, (node_a, node_b))
        self.capacitance = float(capacitance)

    def stamp(self, system, x):
        context = system.transient_context
        if context is None:
            return  # DC: open circuit
        dt, x_prev = context
        a, b = (system.node_index(n) for n in self.nodes)
        g = self.capacitance / dt
        v_prev = ((x_prev[a] if a >= 0 else 0.0)
                  - (x_prev[b] if b >= 0 else 0.0))
        system.add_conductance(a, b, g)
        history = g * v_prev
        system.add_rhs(a, history)
        system.add_rhs(b, -history)


class CurrentSource(Element):
    """DC current source pushing ``current`` amperes from ``node_a`` to
    ``node_b`` through the external circuit (i.e. out of ``node_b``)."""

    def __init__(self, name: str, node_a: str, node_b: str, current: float):
        super().__init__(name, (node_a, node_b))
        self.current = float(current)

    def stamp(self, system, x):
        a, b = (system.node_index(n) for n in self.nodes)
        system.add_rhs(a, -self.current)
        system.add_rhs(b, +self.current)


class VoltageSource(Element):
    """Ideal DC voltage source; contributes one branch-current unknown."""

    n_aux = 1

    def __init__(self, name: str, node_plus: str, node_minus: str,
                 voltage: float):
        super().__init__(name, (node_plus, node_minus))
        self.voltage = float(voltage)

    def stamp(self, system, x):
        p, m = (system.node_index(n) for n in self.nodes)
        k = system.aux_index(self.name)
        if p >= 0:
            system.matrix[p, k] += 1.0
            system.matrix[k, p] += 1.0
        if m >= 0:
            system.matrix[m, k] -= 1.0
            system.matrix[k, m] -= 1.0
        system.rhs[k] += self.voltage * system.source_scale


class Mosfet(Element):
    """Three-terminal MOSFET (bulk tied to source rail implicitly).

    Node order is ``(drain, gate, source)``.  ``delta_vth`` is the
    threshold-shift magnitude applied to this instance (RDF + RTN); positive
    shifts weaken the device for both polarities.
    """

    def __init__(self, name: str, drain: str, gate: str, source: str,
                 model: MosfetModel, delta_vth: float = 0.0):
        super().__init__(name, (drain, gate, source))
        self.model = model
        self.delta_vth = float(delta_vth)

    def stamp(self, system, x):
        d, g, s = (system.node_index(n) for n in self.nodes)
        vd = x[d] if d >= 0 else 0.0
        vg = x[g] if g >= 0 else 0.0
        vs = x[s] if s >= 0 else 0.0

        ids, gm, gds, gms = self.model.conductances(vg, vd, vs, self.delta_vth)
        ids, gm, gds, gms = float(ids), float(gm), float(gds), float(gms)

        # Current flowing into the drain node is +ids, into source -ids.
        # Linearised: i(v) ~= ieq + gm*vg + gds*vd + gms*vs.
        ieq = ids - gm * vg - gds * vd - gms * vs

        for node, sign in ((d, +1.0), (s, -1.0)):
            if node < 0:
                continue
            if g >= 0:
                system.matrix[node, g] += sign * gm
            if d >= 0:
                system.matrix[node, d] += sign * gds
            if s >= 0:
                system.matrix[node, s] += sign * gms
            system.rhs[node] -= sign * ieq

    def current(self, x, system) -> float:
        """Drain current at solution ``x`` (diagnostics)."""
        d, g, s = (system.node_index(n) for n in self.nodes)
        vd = x[d] if d >= 0 else 0.0
        vg = x[g] if g >= 0 else 0.0
        vs = x[s] if s >= 0 else 0.0
        return float(self.model.ids(vg, vd, vs, self.delta_vth))
