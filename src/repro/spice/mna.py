"""Modified nodal analysis (MNA) system assembly.

A dense formulation is used: the circuits in this package have a handful of
nodes (a 6T SRAM cell has four), so sparse machinery would only add
overhead.  The system is rebuilt and re-linearised around the candidate
solution on every Newton iteration by calling :meth:`MnaSystem.assemble`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import NetlistError
from repro.spice.netlist import GROUND_NAMES, Circuit


class MnaSystem:
    """Dense MNA matrix/RHS for a circuit.

    The unknown vector is ``[node voltages..., aux currents...]``; ground is
    index ``-1`` and is never stamped.

    Parameters
    ----------
    circuit:
        The netlist to assemble.  Node/aux ordering is frozen at
        construction; element *values* may change between assemblies
        (sweeps, Monte-Carlo threshold shifts).
    """

    def __init__(self, circuit: Circuit):
        circuit.validate()
        self.circuit = circuit
        self._node_order = {name: i for i, name in enumerate(circuit.nodes)}
        self.n_nodes = len(self._node_order)

        self._aux_order: dict[str, int] = {}
        offset = self.n_nodes
        for element in circuit.elements:
            if element.n_aux:
                self._aux_order[element.name] = offset
                offset += element.n_aux
        self.size = offset

        self.matrix = np.zeros((self.size, self.size))
        self.rhs = np.zeros(self.size)
        #: multiplier applied to independent sources (source stepping).
        self.source_scale = 1.0
        #: conductance added from every node to ground (gmin stepping).
        self.gmin = 0.0
        #: ``(dt, x_prev)`` during a transient step, ``None`` in DC;
        #: reactive elements read this to stamp companion models.
        self.transient_context: tuple[float, np.ndarray] | None = None

    # ------------------------------------------------------------------
    def node_index(self, name: str) -> int:
        """Index of node ``name`` in the unknown vector; -1 for ground."""
        if name in GROUND_NAMES:
            return -1
        try:
            return self._node_order[name]
        except KeyError:
            raise NetlistError(f"unknown node {name!r}") from None

    def aux_index(self, element_name: str) -> int:
        try:
            return self._aux_order[element_name]
        except KeyError:
            raise NetlistError(
                f"element {element_name!r} has no auxiliary unknown") from None

    def voltage(self, x: np.ndarray, node: str) -> float:
        """Voltage of ``node`` in solution ``x`` (0.0 for ground)."""
        idx = self.node_index(node)
        return 0.0 if idx < 0 else float(x[idx])

    # ------------------------------------------------------------------
    def add_conductance(self, a: int, b: int, g: float) -> None:
        """Stamp a two-terminal conductance between node indices a and b."""
        if a >= 0:
            self.matrix[a, a] += g
        if b >= 0:
            self.matrix[b, b] += g
        if a >= 0 and b >= 0:
            self.matrix[a, b] -= g
            self.matrix[b, a] -= g

    def add_rhs(self, node: int, value: float) -> None:
        if node >= 0:
            self.rhs[node] += value

    # ------------------------------------------------------------------
    def assemble(self, x: np.ndarray) -> None:
        """(Re)build matrix and RHS linearised around ``x``."""
        self.matrix[:] = 0.0
        self.rhs[:] = 0.0
        for element in self.circuit.elements:
            element.stamp(self, x)
        if self.gmin > 0.0:
            idx = np.arange(self.n_nodes)
            self.matrix[idx, idx] += self.gmin

    def solve_linearised(self, x: np.ndarray) -> np.ndarray:
        """Assemble around ``x`` and return the linear-system solution."""
        self.assemble(x)
        return np.linalg.solve(self.matrix, self.rhs)

    def residual(self, x: np.ndarray) -> float:
        """KCL residual norm at ``x`` (amps; max over node equations)."""
        self.assemble(x)
        return float(np.max(np.abs(self.matrix @ x - self.rhs)))
