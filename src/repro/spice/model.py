"""EKV-style MOSFET compact model.

The model is a single-piece, infinitely differentiable I--V description that
covers subthreshold, triode and saturation without regional switching:

.. math::

    I_D = I_S \\left[ F(v_p - v_s) - F(v_p - v_d) \\right],
    \\qquad F(u) = \\ln^2\\!\\left(1 + e^{u/2}\\right)

with all voltages normalised by the thermal voltage, the pinch-off voltage
``v_p = (V_G - V_{TH})/n`` and the specific current
``I_S = 2 n \\beta V_t^2 (W/L)``.  Three second-order effects relevant at the
16 nm node are layered on top:

* **DIBL** -- the effective threshold drops by ``dibl * |V_DS|``;
* **mobility reduction / velocity saturation** -- the gain degrades as
  ``beta / (1 + theta * V_{ov})`` with overdrive ``V_ov``;
* **channel-length modulation** -- the saturated current grows as
  ``1 + lambda_clm * |V_DS|``.

Because the source/drain of a MOSFET are interchangeable, negative
``V_DS`` is handled by swapping the terminals, which keeps the model exactly
antisymmetric in drain--source reversal (required for pass-gate/access
transistors whose current direction flips during SRAM reads).

Terminal voltages are absolute node potentials; the slope-factor division
``(V_G - V_TH)/n`` is referenced to the global rail, which acts as an
implicit bulk terminal.  Consequently the model is *not* invariant under a
common shift of gate/drain/source -- a deliberate, crude body effect that
penalises source-elevated devices such as the SRAM access transistor
during reads.

Parameters named ``*_PTM16`` approximate the predictive technology model
16 nm high-performance node used in the paper: they were tuned so that a 6T
cell built per the paper's Table I shows a realistic read-noise-margin
(~80 mV) at ``V_DD = 0.7 V`` and a failure probability of the order of
1e-4 under the paper's Pelgrom mismatch.  See DESIGN.md, "Substitutions".

Everything in this module is numpy-vectorised: terminal voltages and
threshold shifts may be arrays of any broadcastable shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.constants import thermal_voltage


def exp_neg_abs(x, out=None):
    """``exp(-|x|)``, the intermediate shared by softplus and sigmoid.

    With ``out`` the value is built in place (abs, negate, exp) with no
    temporaries; the op sequence reproduces ``np.exp(-np.abs(x))``
    bit-for-bit (negation and abs are exact, exp sees the same input).
    """
    if out is None:
        x = np.asarray(x, dtype=float)
        return np.exp(-np.abs(x))
    np.abs(x, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    return out


def softplus(x):
    """Overflow-safe ``log(1 + exp(x))`` for scalars or arrays."""
    x = np.asarray(x, dtype=float)
    return np.maximum(x, 0.0) + np.log1p(exp_neg_abs(x))


def softplus_into(x, out, scratch, kernels=None):
    """Buffered :func:`softplus`: result into ``out``, no temporaries.

    ``scratch`` must be a float buffer of ``x``'s shape; ``x`` may alias
    ``out`` (the shared intermediate is finished in ``scratch`` before
    ``out`` is touched).  When a verified numba kernel set is supplied
    (see :mod:`repro.xp.numba_kernels`) and the arrays are contiguous,
    the whole chain runs as one compiled pass instead of six ufunc
    passes -- bit-identical by the kernel set's build-time probe.
    """
    if (kernels is not None and x.shape == out.shape
            and x.flags.c_contiguous and out.flags.c_contiguous):
        kernels.softplus_into(x.reshape(-1), out.reshape(-1))
        return out
    exp_neg_abs(x, out=scratch)
    np.log1p(scratch, out=scratch)
    np.maximum(x, 0.0, out=out)
    np.add(out, scratch, out=out)
    return out


def sigmoid(x):
    """Overflow-safe logistic function for scalars or arrays."""
    x = np.asarray(x, dtype=float)
    t = exp_neg_abs(x)
    return np.where(x >= 0, 1.0 / (1.0 + t), t / (1.0 + t))


class IdsWorkspace:
    """Reusable scratch buffers for :meth:`MosfetModel.ids_into`.

    A linear pool of float ``shape`` buffers plus one bool buffer,
    reset at the start of every ``ids_into`` call and grown on demand
    (the high-water mark is ~10 buffers, reached on the general
    source/drain-swap path).  :meth:`shrink` narrows every handed-out
    buffer to a row prefix so the bisection loop can keep one workspace
    across active-lane compaction events.
    """

    def __init__(self, shape: tuple[int, ...]):
        self.shape = tuple(int(s) for s in shape)
        self._pool: list[np.ndarray] = []
        self._next = 0
        self._rows = self.shape[0]
        self._bool = np.empty(self.shape, dtype=bool)

    def reset(self) -> None:
        self._next = 0

    def shrink(self, rows: int) -> None:
        """Restrict subsequently handed-out buffers to ``rows`` rows."""
        if not 0 <= rows <= self.shape[0]:
            raise ValueError(f"rows must be in [0, {self.shape[0]}]")
        self._rows = rows

    def _narrow(self, buf: np.ndarray) -> np.ndarray:
        return buf if self._rows == self.shape[0] else buf[:self._rows]

    def take(self) -> np.ndarray:
        if self._next == len(self._pool):
            self._pool.append(np.empty(self.shape))
        buf = self._pool[self._next]
        self._next += 1
        return self._narrow(buf)

    def bool_buffer(self) -> np.ndarray:
        return self._narrow(self._bool)


@dataclass(frozen=True)
class MosfetParams:
    """Parameter card for :class:`MosfetModel`.

    Attributes
    ----------
    polarity:
        ``+1`` for nMOS, ``-1`` for pMOS.
    vth0:
        Zero-bias threshold voltage magnitude [V] (positive for both
        polarities; the polarity flip is applied inside the model).
    n:
        Subthreshold slope factor (dimensionless, >= 1).
    beta:
        Process transconductance ``mu * C_ox`` [A/V^2] for a square device;
        scaled by W/L inside the model.
    theta:
        Mobility-reduction coefficient [1/V].
    dibl:
        Drain-induced barrier lowering [V/V].
    lambda_clm:
        Channel-length modulation [1/V].
    temperature:
        Device temperature [K].
    """

    polarity: int
    vth0: float
    n: float = 1.35
    beta: float = 3.0e-4
    theta: float = 1.2
    dibl: float = 0.08
    lambda_clm: float = 0.15
    temperature: float = 300.0

    def __post_init__(self):
        if self.polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.vth0 <= 0:
            raise ValueError(
                f"vth0 is a magnitude and must be > 0, got {self.vth0}")
        if self.n < 1.0:
            raise ValueError(
                f"subthreshold factor n must be >= 1, got {self.n}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if min(self.theta, self.dibl, self.lambda_clm) < 0:
            raise ValueError("theta, dibl and lambda_clm must be non-negative")

    @property
    def is_nmos(self) -> bool:
        return self.polarity > 0

    def with_(self, **changes) -> "MosfetParams":
        """Return a copy with ``changes`` applied (dataclass ``replace``)."""
        return replace(self, **changes)


#: nMOS parameters behaviourally calibrated to the paper's operating point:
#: a Table-I cell built from these cards has a read-noise-margin
#: distribution whose RDF-only failure probability is ~1.5e-4 at
#: V_DD = 0.7 V and ~1.7e-3 at 0.5 V, matching the paper's reported
#: magnitudes (see DESIGN.md, "Substitutions", and
#: tests/integration/test_calibration.py).
NMOS_PTM16 = MosfetParams(polarity=+1, vth0=0.42, n=1.70, beta=3.2e-4,
                          theta=1.6, dibl=0.53, lambda_clm=0.55)

#: pMOS counterpart of :data:`NMOS_PTM16`.
PMOS_PTM16 = MosfetParams(polarity=-1, vth0=0.60, n=1.75, beta=0.30e-4,
                          theta=1.4, dibl=0.32, lambda_clm=0.55)


class MosfetModel:
    """Evaluate drain current for a given parameter card and geometry.

    Parameters
    ----------
    params:
        The :class:`MosfetParams` card.
    w_nm, l_nm:
        Channel width and length in nanometres.

    The model is stateless; a single instance can be shared between every
    device of the same geometry.
    """

    def __init__(self, params: MosfetParams, w_nm: float, l_nm: float):
        if w_nm <= 0 or l_nm <= 0:
            raise ValueError(
                f"geometry must be positive, got W={w_nm}, L={l_nm}")
        self.params = params
        self.w_nm = float(w_nm)
        self.l_nm = float(l_nm)
        self._vt = thermal_voltage(params.temperature)
        self._aspect = self.w_nm / self.l_nm

    # ------------------------------------------------------------------
    def ids(self, vg, vd, vs, delta_vth=0.0):
        """Drain current [A], positive flowing drain->source for nMOS.

        ``vg``, ``vd``, ``vs`` are node voltages referred to ground;
        ``delta_vth`` is an additional threshold shift *magnitude* (positive
        values weaken the device for both polarities, matching the RDF/RTN
        convention used in the rest of the package).  All arguments
        broadcast together.
        """
        p = self.params
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        dvth = np.asarray(delta_vth, dtype=float)

        # Mirror voltages for pMOS so that the core works in nMOS
        # convention; mirror the current back at the end.
        sign = float(p.polarity)
        vg, vd, vs = sign * vg, sign * vd, sign * vs

        # Source/drain swap for negative Vds (model must be antisymmetric).
        swap = vd < vs
        vlo = np.where(swap, vd, vs)
        vhi = np.where(swap, vs, vd)
        vds = vhi - vlo

        vth = p.vth0 + dvth - p.dibl * vds
        vt = self._vt
        n = p.n

        vp = (vg - vth) / n
        forward = np.square(softplus((vp - vlo) / (2.0 * vt)))
        reverse = np.square(softplus((vp - vhi) / (2.0 * vt)))

        # Mobility reduction with overdrive (smooth max against 0).
        vov = vt * 2.0 * softplus((vg - vlo - vth) / (2.0 * vt))
        gain = p.beta / (1.0 + p.theta * vov)

        ispec = 2.0 * n * gain * vt * vt * self._aspect
        current = ispec * (forward - reverse) * (1.0 + p.lambda_clm * vds)

        current = np.where(swap, -current, current)
        return sign * current

    # ------------------------------------------------------------------
    def ids_into(self, vg, vd, vs, delta_vth, out, workspace,
                 assume_ordered=False, kernels=None):
        """Buffered :meth:`ids`: bit-identical, written into ``out``.

        This is the batched-solver hot path: every ufunc lands in a
        preallocated buffer (``out`` or a :class:`IdsWorkspace` slot),
        eliminating the ~15 temporaries the plain path allocates per
        call.  Each operation applies the same ufunc to the same values
        in the same order as :meth:`ids`, so the result is bit-identical
        -- asserted by ``tests/spice/test_model_buffered.py`` and the
        ``bench_butterfly`` gate.

        Parameters
        ----------
        out:
            Float buffer receiving the current; its shape is the
            broadcast shape of the inputs.
        workspace:
            :class:`IdsWorkspace` of ``out``'s shape.
        assume_ordered:
            Caller guarantees ``vd >= vs`` *after* polarity mirroring,
            i.e. the source/drain swap mask is provably all-False (true
            for every device of the read/hold butterfly solve, where the
            node bracket stays inside ``[0, vdd]``).  Skips the swap
            machinery; bit-identical because ``where(False, a, b) == b``
            and a nowhere-applied masked negation is a no-op.
        kernels:
            Optional verified numba kernel set (``ArrayBackend.kernels``)
            accelerating the softplus chain.

        Scalar inputs may be Python floats; array inputs must broadcast
        against ``out`` and are never written to.
        """
        p = self.params
        ws = workspace
        ws.reset()
        sign = float(p.polarity)
        # Mirror to nMOS convention.  sign == +1 keeps the inputs as-is
        # (multiplying by 1.0 is the IEEE identity); sign == -1 mirrors
        # scalars in Python and arrays into small fresh buffers --
        # sub-(B, G) operands such as the (1, G) input-voltage row stay
        # small so later ufuncs broadcast them, exactly like the plain
        # path.
        shape = out.shape
        mvg = self._mirror(vg, sign, ws, shape)
        mvd = self._mirror(vd, sign, ws, shape)
        mvs = self._mirror(vs, sign, ws, shape)

        swap = None
        if assume_ordered:
            vlo, vhi = mvs, mvd
            vds = ws.take()
            np.subtract(vhi, vlo, out=vds)
        else:
            swap = ws.bool_buffer()
            np.less(mvd, mvs, out=swap)
            # copy-then-masked-copy is np.where(swap, x, y) without the
            # temporary (np.where has no out= parameter)
            vlo = ws.take()
            np.copyto(vlo, mvs)
            np.copyto(vlo, mvd, where=swap)
            vhi = ws.take()
            np.copyto(vhi, mvd)
            np.copyto(vhi, mvs, where=swap)
            vds = ws.take()
            np.subtract(vhi, vlo, out=vds)

        vt = self._vt
        n = p.n
        # vth = (vth0 + dvth) - dibl * vds; the (B, 1) shift column stays
        # narrow, as in the plain path.
        base_vth = p.vth0 + np.asarray(delta_vth, dtype=float)
        vth = ws.take()
        np.multiply(vds, p.dibl, out=vth)
        np.subtract(base_vth, vth, out=vth)

        vp = ws.take()
        np.subtract(mvg, vth, out=vp)
        np.divide(vp, n, out=vp)

        scratch = ws.take()
        two_vt = 2.0 * vt
        forward = ws.take()
        np.subtract(vp, vlo, out=forward)
        np.divide(forward, two_vt, out=forward)
        softplus_into(forward, forward, scratch, kernels)
        np.square(forward, out=forward)

        reverse = ws.take()
        np.subtract(vp, vhi, out=reverse)
        np.divide(reverse, two_vt, out=reverse)
        softplus_into(reverse, reverse, scratch, kernels)
        np.square(reverse, out=reverse)

        # vov = (vt * 2.0) * softplus((vg - vlo - vth) / (2 vt)); reuse
        # the vp buffer, which is dead from here on.
        vov = vp
        if isinstance(vlo, np.ndarray) and vlo.shape == shape:
            inner = ws.take()
            np.subtract(mvg, vlo, out=inner)
        else:
            # sub-batch operand ((1, G) row or scalar) stays narrow so
            # the next subtract broadcasts it, exactly like the plain
            # path
            inner = np.subtract(mvg, vlo)
        np.subtract(inner, vth, out=vov)
        np.divide(vov, two_vt, out=vov)
        softplus_into(vov, vov, scratch, kernels)
        np.multiply(vov, vt * 2.0, out=vov)

        gain = vov
        np.multiply(gain, p.theta, out=gain)
        np.add(gain, 1.0, out=gain)
        np.divide(p.beta, gain, out=gain)

        ispec = gain
        np.multiply(ispec, 2.0 * n, out=ispec)
        np.multiply(ispec, vt, out=ispec)
        np.multiply(ispec, vt, out=ispec)
        np.multiply(ispec, self._aspect, out=ispec)

        np.subtract(forward, reverse, out=out)
        np.multiply(ispec, out, out=out)
        clm = vth  # dead buffer
        np.multiply(vds, p.lambda_clm, out=clm)
        np.add(clm, 1.0, out=clm)
        np.multiply(out, clm, out=out)

        if swap is not None:
            np.negative(out, out=out, where=swap)
        # sign is the exact +/-1.0 polarity flag, never a computed float
        if sign != 1.0:  # repro: allow-float-eq
            np.multiply(out, sign, out=out)
        return out

    @staticmethod
    def _mirror(v, sign, ws=None, shape=None):
        if isinstance(v, np.ndarray):
            if sign == 1.0:  # repro: allow-float-eq (exact polarity flag)
                return v
            if ws is not None and v.shape == shape:
                out = ws.take()
                np.multiply(v, sign, out=out)
                return out
            return np.multiply(v, sign)
        return sign * float(v)

    # ------------------------------------------------------------------
    def conductances(self, vg, vd, vs, delta_vth=0.0, step: float = 1e-6):
        """Return ``(ids, gm, gds, gms)`` by central finite differences.

        ``gm = dI/dVg``, ``gds = dI/dVd`` and ``gms = dI/dVs``; used by the
        MNA solver to build the Jacobian.  The model is smooth so central
        differences with a 1 uV step are accurate to ~1e-9 relative.
        """
        i0 = self.ids(vg, vd, vs, delta_vth)
        gm = (self.ids(vg + step, vd, vs, delta_vth)
              - self.ids(vg - step, vd, vs, delta_vth)) / (2.0 * step)
        gds = (self.ids(vg, vd + step, vs, delta_vth)
               - self.ids(vg, vd - step, vs, delta_vth)) / (2.0 * step)
        gms = (self.ids(vg, vd, vs + step, delta_vth)
               - self.ids(vg, vd, vs - step, delta_vth)) / (2.0 * step)
        return i0, gm, gds, gms

    # ------------------------------------------------------------------
    def on_current(self, vdd: float, delta_vth=0.0):
        """Saturated on-current at Vgs=Vds=vdd (nMOS) or -vdd (pMOS)."""
        p = self.params
        if p.is_nmos:
            return self.ids(vdd, vdd, 0.0, delta_vth)
        return -self.ids(0.0, 0.0, vdd, delta_vth)

    def off_current(self, vdd: float, delta_vth=0.0):
        """Leakage at Vgs=0, Vds=vdd (magnitude)."""
        p = self.params
        if p.is_nmos:
            return self.ids(0.0, vdd, 0.0, delta_vth)
        return -self.ids(vdd, 0.0, vdd, delta_vth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "nmos" if self.params.is_nmos else "pmos"
        return f"MosfetModel({kind}, W={self.w_nm}nm, L={self.l_nm}nm)"
