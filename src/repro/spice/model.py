"""EKV-style MOSFET compact model.

The model is a single-piece, infinitely differentiable I--V description that
covers subthreshold, triode and saturation without regional switching:

.. math::

    I_D = I_S \\left[ F(v_p - v_s) - F(v_p - v_d) \\right],
    \\qquad F(u) = \\ln^2\\!\\left(1 + e^{u/2}\\right)

with all voltages normalised by the thermal voltage, the pinch-off voltage
``v_p = (V_G - V_{TH})/n`` and the specific current
``I_S = 2 n \\beta V_t^2 (W/L)``.  Three second-order effects relevant at the
16 nm node are layered on top:

* **DIBL** -- the effective threshold drops by ``dibl * |V_DS|``;
* **mobility reduction / velocity saturation** -- the gain degrades as
  ``beta / (1 + theta * V_{ov})`` with overdrive ``V_ov``;
* **channel-length modulation** -- the saturated current grows as
  ``1 + lambda_clm * |V_DS|``.

Because the source/drain of a MOSFET are interchangeable, negative
``V_DS`` is handled by swapping the terminals, which keeps the model exactly
antisymmetric in drain--source reversal (required for pass-gate/access
transistors whose current direction flips during SRAM reads).

Terminal voltages are absolute node potentials; the slope-factor division
``(V_G - V_TH)/n`` is referenced to the global rail, which acts as an
implicit bulk terminal.  Consequently the model is *not* invariant under a
common shift of gate/drain/source -- a deliberate, crude body effect that
penalises source-elevated devices such as the SRAM access transistor
during reads.

Parameters named ``*_PTM16`` approximate the predictive technology model
16 nm high-performance node used in the paper: they were tuned so that a 6T
cell built per the paper's Table I shows a realistic read-noise-margin
(~80 mV) at ``V_DD = 0.7 V`` and a failure probability of the order of
1e-4 under the paper's Pelgrom mismatch.  See DESIGN.md, "Substitutions".

Everything in this module is numpy-vectorised: terminal voltages and
threshold shifts may be arrays of any broadcastable shape.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

import numpy as np

from repro.constants import thermal_voltage


def softplus(x):
    """Overflow-safe ``log(1 + exp(x))`` for scalars or arrays."""
    x = np.asarray(x, dtype=float)
    return np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))


def sigmoid(x):
    """Overflow-safe logistic function for scalars or arrays."""
    x = np.asarray(x, dtype=float)
    t = np.exp(-np.abs(x))
    return np.where(x >= 0, 1.0 / (1.0 + t), t / (1.0 + t))


@dataclass(frozen=True)
class MosfetParams:
    """Parameter card for :class:`MosfetModel`.

    Attributes
    ----------
    polarity:
        ``+1`` for nMOS, ``-1`` for pMOS.
    vth0:
        Zero-bias threshold voltage magnitude [V] (positive for both
        polarities; the polarity flip is applied inside the model).
    n:
        Subthreshold slope factor (dimensionless, >= 1).
    beta:
        Process transconductance ``mu * C_ox`` [A/V^2] for a square device;
        scaled by W/L inside the model.
    theta:
        Mobility-reduction coefficient [1/V].
    dibl:
        Drain-induced barrier lowering [V/V].
    lambda_clm:
        Channel-length modulation [1/V].
    temperature:
        Device temperature [K].
    """

    polarity: int
    vth0: float
    n: float = 1.35
    beta: float = 3.0e-4
    theta: float = 1.2
    dibl: float = 0.08
    lambda_clm: float = 0.15
    temperature: float = 300.0

    def __post_init__(self):
        if self.polarity not in (+1, -1):
            raise ValueError(f"polarity must be +1 or -1, got {self.polarity}")
        if self.vth0 <= 0:
            raise ValueError(
                f"vth0 is a magnitude and must be > 0, got {self.vth0}")
        if self.n < 1.0:
            raise ValueError(
                f"subthreshold factor n must be >= 1, got {self.n}")
        if self.beta <= 0:
            raise ValueError(f"beta must be positive, got {self.beta}")
        if min(self.theta, self.dibl, self.lambda_clm) < 0:
            raise ValueError("theta, dibl and lambda_clm must be non-negative")

    @property
    def is_nmos(self) -> bool:
        return self.polarity > 0

    def with_(self, **changes) -> "MosfetParams":
        """Return a copy with ``changes`` applied (dataclass ``replace``)."""
        return replace(self, **changes)


#: nMOS parameters behaviourally calibrated to the paper's operating point:
#: a Table-I cell built from these cards has a read-noise-margin
#: distribution whose RDF-only failure probability is ~1.5e-4 at
#: V_DD = 0.7 V and ~1.7e-3 at 0.5 V, matching the paper's reported
#: magnitudes (see DESIGN.md, "Substitutions", and
#: tests/integration/test_calibration.py).
NMOS_PTM16 = MosfetParams(polarity=+1, vth0=0.42, n=1.70, beta=3.2e-4,
                          theta=1.6, dibl=0.53, lambda_clm=0.55)

#: pMOS counterpart of :data:`NMOS_PTM16`.
PMOS_PTM16 = MosfetParams(polarity=-1, vth0=0.60, n=1.75, beta=0.30e-4,
                          theta=1.4, dibl=0.32, lambda_clm=0.55)


class MosfetModel:
    """Evaluate drain current for a given parameter card and geometry.

    Parameters
    ----------
    params:
        The :class:`MosfetParams` card.
    w_nm, l_nm:
        Channel width and length in nanometres.

    The model is stateless; a single instance can be shared between every
    device of the same geometry.
    """

    def __init__(self, params: MosfetParams, w_nm: float, l_nm: float):
        if w_nm <= 0 or l_nm <= 0:
            raise ValueError(
                f"geometry must be positive, got W={w_nm}, L={l_nm}")
        self.params = params
        self.w_nm = float(w_nm)
        self.l_nm = float(l_nm)
        self._vt = thermal_voltage(params.temperature)
        self._aspect = self.w_nm / self.l_nm

    # ------------------------------------------------------------------
    def ids(self, vg, vd, vs, delta_vth=0.0):
        """Drain current [A], positive flowing drain->source for nMOS.

        ``vg``, ``vd``, ``vs`` are node voltages referred to ground;
        ``delta_vth`` is an additional threshold shift *magnitude* (positive
        values weaken the device for both polarities, matching the RDF/RTN
        convention used in the rest of the package).  All arguments
        broadcast together.
        """
        p = self.params
        vg = np.asarray(vg, dtype=float)
        vd = np.asarray(vd, dtype=float)
        vs = np.asarray(vs, dtype=float)
        dvth = np.asarray(delta_vth, dtype=float)

        # Mirror voltages for pMOS so that the core works in nMOS
        # convention; mirror the current back at the end.
        sign = float(p.polarity)
        vg, vd, vs = sign * vg, sign * vd, sign * vs

        # Source/drain swap for negative Vds (model must be antisymmetric).
        swap = vd < vs
        vlo = np.where(swap, vd, vs)
        vhi = np.where(swap, vs, vd)
        vds = vhi - vlo

        vth = p.vth0 + dvth - p.dibl * vds
        vt = self._vt
        n = p.n

        vp = (vg - vth) / n
        forward = np.square(softplus((vp - vlo) / (2.0 * vt)))
        reverse = np.square(softplus((vp - vhi) / (2.0 * vt)))

        # Mobility reduction with overdrive (smooth max against 0).
        vov = vt * 2.0 * softplus((vg - vlo - vth) / (2.0 * vt))
        gain = p.beta / (1.0 + p.theta * vov)

        ispec = 2.0 * n * gain * vt * vt * self._aspect
        current = ispec * (forward - reverse) * (1.0 + p.lambda_clm * vds)

        current = np.where(swap, -current, current)
        return sign * current

    # ------------------------------------------------------------------
    def conductances(self, vg, vd, vs, delta_vth=0.0, step: float = 1e-6):
        """Return ``(ids, gm, gds, gms)`` by central finite differences.

        ``gm = dI/dVg``, ``gds = dI/dVd`` and ``gms = dI/dVs``; used by the
        MNA solver to build the Jacobian.  The model is smooth so central
        differences with a 1 uV step are accurate to ~1e-9 relative.
        """
        i0 = self.ids(vg, vd, vs, delta_vth)
        gm = (self.ids(vg + step, vd, vs, delta_vth)
              - self.ids(vg - step, vd, vs, delta_vth)) / (2.0 * step)
        gds = (self.ids(vg, vd + step, vs, delta_vth)
               - self.ids(vg, vd - step, vs, delta_vth)) / (2.0 * step)
        gms = (self.ids(vg, vd, vs + step, delta_vth)
               - self.ids(vg, vd, vs - step, delta_vth)) / (2.0 * step)
        return i0, gm, gds, gms

    # ------------------------------------------------------------------
    def on_current(self, vdd: float, delta_vth=0.0):
        """Saturated on-current at Vgs=Vds=vdd (nMOS) or -vdd (pMOS)."""
        p = self.params
        if p.is_nmos:
            return self.ids(vdd, vdd, 0.0, delta_vth)
        return -self.ids(0.0, 0.0, vdd, delta_vth)

    def off_current(self, vdd: float, delta_vth=0.0):
        """Leakage at Vgs=0, Vds=vdd (magnitude)."""
        p = self.params
        if p.is_nmos:
            return self.ids(0.0, vdd, 0.0, delta_vth)
        return -self.ids(vdd, 0.0, vdd, delta_vth)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "nmos" if self.params.is_nmos else "pmos"
        return f"MosfetModel({kind}, W={self.w_nm}nm, L={self.l_nm}nm)"
