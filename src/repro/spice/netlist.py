"""Netlist container: nodes, elements and consistency checks."""

from __future__ import annotations

from typing import Iterable

from repro.errors import NetlistError
from repro.spice.elements import Element, Mosfet, VoltageSource

#: Names accepted as the ground node.
GROUND_NAMES = frozenset({"0", "gnd", "GND", "vss", "VSS"})


class Circuit:
    """A flat netlist.

    Nodes are referred to by name; the ground node (any alias in
    ``GROUND_NAMES``) is fixed at 0 V and carries no MNA unknown.

    >>> from repro.spice import Circuit, VoltageSource, Resistor
    >>> ckt = Circuit("divider")
    >>> _ = ckt.add(VoltageSource("vdd", "top", "0", 1.0))
    >>> _ = ckt.add(Resistor("r1", "top", "mid", 1e3))
    >>> _ = ckt.add(Resistor("r2", "mid", "0", 1e3))
    >>> sorted(ckt.nodes)
    ['mid', 'top']
    """

    def __init__(self, name: str = "circuit"):
        self.name = name
        self._elements: dict[str, Element] = {}
        self._nodes: list[str] = []
        self._node_set: set[str] = set()

    # ------------------------------------------------------------------
    @property
    def nodes(self) -> list[str]:
        """Non-ground node names in insertion order."""
        return list(self._nodes)

    @property
    def elements(self) -> list[Element]:
        return list(self._elements.values())

    def element(self, name: str) -> Element:
        try:
            return self._elements[name]
        except KeyError:
            raise NetlistError(
                f"no element named {name!r} in {self.name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._elements

    def __len__(self) -> int:
        return len(self._elements)

    # ------------------------------------------------------------------
    def add(self, element: Element) -> Element:
        """Add ``element``; returns it for chaining."""
        if element.name in self._elements:
            raise NetlistError(
                f"duplicate element name {element.name!r} in {self.name!r}")
        for node in element.nodes:
            if node not in GROUND_NAMES and node not in self._node_set:
                self._node_set.add(node)
                self._nodes.append(node)
        self._elements[element.name] = element
        return element

    def add_all(self, elements: Iterable[Element]) -> None:
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------------
    def voltage_sources(self) -> list[VoltageSource]:
        return [e for e in self._elements.values()
                if isinstance(e, VoltageSource)]

    def mosfets(self) -> list[Mosfet]:
        return [e for e in self._elements.values() if isinstance(e, Mosfet)]

    def set_source(self, name: str, voltage: float) -> None:
        """Set the value of voltage source ``name`` (used by sweeps)."""
        element = self.element(name)
        if not isinstance(element, VoltageSource):
            raise NetlistError(f"{name!r} is not a voltage source")
        element.voltage = float(voltage)

    def set_delta_vth(self, shifts: dict[str, float]) -> None:
        """Apply threshold shifts to MOSFETs by element name."""
        for name, shift in shifts.items():
            element = self.element(name)
            if not isinstance(element, Mosfet):
                raise NetlistError(f"{name!r} is not a MOSFET")
            element.delta_vth = float(shift)

    # ------------------------------------------------------------------
    def validate(self) -> None:
        """Raise :class:`NetlistError` for structurally broken circuits."""
        if not self._elements:
            raise NetlistError(f"circuit {self.name!r} is empty")
        touches_ground = any(
            node in GROUND_NAMES
            for element in self._elements.values()
            for node in element.nodes)
        if not touches_ground:
            raise NetlistError(
                f"circuit {self.name!r} has no ground reference; "
                "connect at least one element to one of "
                f"{sorted(GROUND_NAMES)}")

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"Circuit({self.name!r}, {len(self._elements)} elements, "
                f"{len(self._nodes)} nodes)")
