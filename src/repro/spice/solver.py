"""Newton--Raphson DC operating-point solver with continuation fallbacks.

The solve strategy mirrors what production SPICE engines do, scaled down:

1. plain damped Newton from the initial guess;
2. on failure, **gmin stepping** -- solve with a large conductance from
   every node to ground, then relax it geometrically to zero;
3. on failure, **source stepping** -- ramp all independent sources from
   0 to 100 %.

Each stage warm-starts from the previous stage's best iterate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.mna import MnaSystem
from repro.spice.netlist import Circuit


@dataclass
class OperatingPoint:
    """Solved DC operating point.

    Attributes
    ----------
    voltages:
        Node name -> voltage [V].
    aux_currents:
        Voltage-source name -> branch current [A].
    iterations:
        Total Newton iterations spent (including continuation stages).
    strategy:
        Which stage converged: ``"newton"``, ``"gmin"`` or ``"source"``.
    """

    voltages: dict[str, float]
    aux_currents: dict[str, float]
    iterations: int
    strategy: str
    x: np.ndarray = field(repr=False, default=None)

    def __getitem__(self, node: str) -> float:
        return self.voltages[node]


class DcSolver:
    """DC operating-point solver for a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        Netlist to solve.  The solver keeps a reference: element value
        changes (sweeps, Vth shifts) are picked up on the next solve.
    max_iterations:
        Newton iteration cap per continuation stage.
    tolerance:
        Convergence threshold on the voltage update infinity-norm [V].
    damping:
        Maximum allowed per-iteration voltage change [V]; larger updates
        are clipped (simple but effective for strongly nonlinear devices).
    """

    def __init__(self, circuit: Circuit, max_iterations: int = 100,
                 tolerance: float = 1e-9, damping: float = 0.3):
        if max_iterations < 1:
            raise ValueError("max_iterations must be >= 1")
        if tolerance <= 0:
            raise ValueError("tolerance must be positive")
        if damping <= 0:
            raise ValueError("damping must be positive")
        self.system = MnaSystem(circuit)
        self.max_iterations = max_iterations
        self.tolerance = tolerance
        self.damping = damping

    # ------------------------------------------------------------------
    def solve(self, initial_guess: np.ndarray | dict[str, float] | None = None
              ) -> OperatingPoint:
        """Find the DC operating point.

        ``initial_guess`` may be a previous solution vector (warm start) or
        a node-name -> voltage dict for a partial guess.

        Raises
        ------
        ConvergenceError
            If all continuation strategies fail.
        """
        x0 = self._coerce_guess(initial_guess)

        x, iters, ok = self._newton(x0)
        if ok:
            return self._package(x, iters, "newton")
        best_x, best_residual = self._best_iterate(x0, x)

        x_gmin, iters_gmin, ok = self._gmin_stepping(x0)
        iters += iters_gmin
        if ok:
            return self._package(x_gmin, iters, "gmin")
        best_x, best_residual = self._best_iterate(best_x, x_gmin,
                                                   best_residual)

        x_src, iters_src, ok = self._source_stepping(x0)
        iters += iters_src
        if ok:
            return self._package(x_src, iters, "source")
        best_x, best_residual = self._best_iterate(best_x, x_src,
                                                   best_residual)

        raise ConvergenceError(
            f"DC solve failed for {self.system.circuit.name!r} after "
            f"{iters} total Newton iterations "
            f"(best residual {best_residual:.3e} A)",
            residual=best_residual, best_x=best_x, iterations=iters)

    # ------------------------------------------------------------------
    def _best_iterate(self, current: np.ndarray, candidate: np.ndarray,
                      current_residual: float | None = None
                      ) -> tuple[np.ndarray, float]:
        """Keep whichever of the two iterates has the smaller residual.

        Non-finite candidates (diverged Newton iterates, singular-system
        fallbacks) never win, so the returned residual is always finite:
        the all-zero initial guess of :meth:`_coerce_guess` has a finite
        residual for any assemblable circuit, and user-supplied guesses
        are validated shapes of finite floats.
        """
        if current_residual is None:
            current_residual = self._finite_residual(current)
        candidate_residual = self._finite_residual(candidate)
        if candidate_residual < current_residual:
            return candidate.copy(), candidate_residual
        return current, current_residual

    def _finite_residual(self, x: np.ndarray) -> float:
        """KCL residual of ``x``, or +inf-replaced-by-huge for iterates
        the residual cannot be evaluated on (keeps comparisons total and
        the reported residual finite)."""
        if not np.all(np.isfinite(x)):
            return float(np.finfo(float).max)
        try:
            residual = self.system.residual(x)
        except (np.linalg.LinAlgError, FloatingPointError):
            return float(np.finfo(float).max)
        if not np.isfinite(residual):
            return float(np.finfo(float).max)
        return float(residual)

    def package_iterate(self, x: np.ndarray, iterations: int
                        ) -> OperatingPoint:
        """Package an externally accepted iterate (health-layer use).

        The health layer's degraded-accept path
        (:func:`repro.health.solver.solve_with_recovery`) calls this to
        turn a best-effort iterate carried on a
        :class:`~repro.errors.ConvergenceError` into a regular
        :class:`OperatingPoint` with strategy ``"degraded"``.
        """
        x = np.asarray(x, dtype=float)
        if x.shape != (self.system.size,):
            raise ValueError(
                f"iterate has shape {x.shape}, "
                f"expected ({self.system.size},)")
        return self._package(x, iterations, "degraded")

    # ------------------------------------------------------------------
    def _coerce_guess(self, guess) -> np.ndarray:
        x0 = np.zeros(self.system.size)
        if guess is None:
            return x0
        if isinstance(guess, dict):
            for node, value in guess.items():
                idx = self.system.node_index(node)
                if idx >= 0:
                    x0[idx] = value
            return x0
        guess = np.asarray(guess, dtype=float)
        if guess.shape != (self.system.size,):
            raise ValueError(
                f"initial guess has shape {guess.shape}, "
                f"expected ({self.system.size},)")
        return guess.copy()

    def _newton(self, x0: np.ndarray) -> tuple[np.ndarray, int, bool]:
        x = x0.copy()
        for iteration in range(1, self.max_iterations + 1):
            try:
                x_new = self.system.solve_linearised(x)
            except np.linalg.LinAlgError:
                return x, iteration, False
            delta = x_new - x
            step = np.abs(delta[:self.system.n_nodes]).max(initial=0.0)
            if step > self.damping:
                delta *= self.damping / step
            x = x + delta
            if step < self.tolerance and np.all(np.isfinite(x)):
                return x, iteration, True
            if not np.all(np.isfinite(x)):
                return x0, iteration, False
        return x, self.max_iterations, False

    def _gmin_stepping(self, x0: np.ndarray) -> tuple[np.ndarray, int, bool]:
        x = x0.copy()
        total = 0
        try:
            for gmin in np.geomspace(1e-2, 1e-12, 11):
                self.system.gmin = float(gmin)
                x, iters, ok = self._newton(x)
                total += iters
                if not ok:
                    return x, total, False
            self.system.gmin = 0.0
            x, iters, ok = self._newton(x)
            total += iters
            return x, total, ok
        finally:
            self.system.gmin = 0.0

    def _source_stepping(self, x0: np.ndarray) -> tuple[np.ndarray, int, bool]:
        x = x0.copy()
        total = 0
        try:
            for scale in np.linspace(0.1, 1.0, 10):
                self.system.source_scale = float(scale)
                x, iters, ok = self._newton(x)
                total += iters
                if not ok:
                    return x, total, False
            return x, total, True
        finally:
            self.system.source_scale = 1.0

    # ------------------------------------------------------------------
    def _package(self, x: np.ndarray, iterations: int, strategy: str
                 ) -> OperatingPoint:
        voltages = {node: float(x[self.system.node_index(node)])
                    for node in self.system.circuit.nodes}
        aux = {}
        for source in self.system.circuit.voltage_sources():
            aux[source.name] = float(x[self.system.aux_index(source.name)])
        return OperatingPoint(voltages=voltages, aux_currents=aux,
                              iterations=iterations, strategy=strategy, x=x)
