"""DC sweeps: vary a source, warm-starting each point from the last.

Used for butterfly curves through the reference (full-MNA) path and for
characterisation examples; the Monte-Carlo hot path uses the vectorised
evaluator in :mod:`repro.sram.butterfly` instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConvergenceError, NetlistError
from repro.spice.netlist import Circuit
from repro.spice.solver import DcSolver


@dataclass
class SweepResult:
    """Result of a DC sweep.

    Attributes
    ----------
    sweep_values:
        The swept source voltages, shape ``(n_points,)``.
    voltages:
        Node name -> array of node voltages, each shape ``(n_points,)``.
    failed_points:
        Indices of sweep points whose solve failed (their entries are NaN).
    """

    sweep_values: np.ndarray
    voltages: dict[str, np.ndarray]
    failed_points: list[int]

    def curve(self, node: str) -> np.ndarray:
        return self.voltages[node]


def dc_sweep(circuit: Circuit, source_name: str, values,
             solver: DcSolver | None = None,
             initial_guess=None) -> SweepResult:
    """Sweep voltage source ``source_name`` over ``values``.

    Each point warm-starts from the previous converged solution, which both
    speeds up the solve and keeps the solver on the same branch for
    bistable circuits (essential when tracing SRAM butterfly curves).

    Points that fail to converge are recorded in ``failed_points`` and
    yield NaN voltages rather than aborting the sweep.
    """
    values = np.asarray(values, dtype=float)
    if values.ndim != 1 or values.size == 0:
        raise ValueError("sweep values must be a non-empty 1-D sequence")
    solver = solver or DcSolver(circuit)

    matches = [s for s in circuit.voltage_sources() if s.name == source_name]
    if not matches:
        raise NetlistError(
            f"no voltage source named {source_name!r} in {circuit.name!r}")
    original = matches[0].voltage

    voltages = {node: np.full(values.size, np.nan) for node in circuit.nodes}
    failed: list[int] = []
    guess = initial_guess
    try:
        for i, value in enumerate(values):
            circuit.set_source(source_name, float(value))
            try:
                op = solver.solve(initial_guess=guess)
            except ConvergenceError:
                failed.append(i)
                guess = None
                continue
            guess = op.x
            for node in circuit.nodes:
                voltages[node][i] = op.voltages[node]
    finally:
        circuit.set_source(source_name, original)

    return SweepResult(sweep_values=values, voltages=voltages,
                       failed_points=failed)
