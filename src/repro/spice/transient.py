"""Transient (time-domain) simulation.

Backward-Euler integration on top of the DC Newton solver: each time step
re-solves the nonlinear circuit with reactive elements replaced by their
companion models (see :class:`repro.spice.elements.Capacitor`), warm-
started from the previous step.  Backward Euler is unconditionally stable
and first-order accurate -- entirely adequate for the qualitative
time-domain RTN studies this package uses it for (the paper's references
[2], [3] analyse RTN in the time domain; the cost comparison against them
is exactly the point of the ECRIPSE approach).

Two hooks make the engine programmable per step:

* ``stimuli`` -- voltage-source name -> ``f(t) -> volts`` (wordline
  pulses, bitline precharge, ...);
* ``update_hook`` -- called with the current time *before* each solve;
  used by :class:`repro.rtn.transient.RtnTransientDriver` to move
  per-device threshold shifts along their telegraph trajectories.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.errors import ConvergenceError
from repro.spice.netlist import Circuit
from repro.spice.solver import DcSolver


@dataclass
class TransientResult:
    """Waveforms from a transient run.

    Attributes
    ----------
    times:
        Solved time points (the initial operating point is t = times[0]).
    voltages:
        Node name -> waveform array, one entry per time point.
    failed_points:
        Indices of steps whose Newton solve failed (values NaN there).
    """

    times: np.ndarray
    voltages: dict[str, np.ndarray]
    failed_points: list[int]

    def waveform(self, node: str) -> np.ndarray:
        return self.voltages[node]

    def at(self, node: str, t: float) -> float:
        """Linearly interpolated node voltage at time ``t``."""
        return float(np.interp(t, self.times, self.voltages[node]))


class TransientSolver:
    """Backward-Euler transient engine for a :class:`Circuit`.

    Parameters
    ----------
    circuit:
        The netlist; reactive elements participate via their companion
        models.
    stimuli:
        Optional map of voltage-source name -> ``f(t)`` waveform.
    update_hook:
        Optional ``f(t)`` called before each step (RTN drivers, etc.).
    """

    def __init__(self, circuit: Circuit,
                 stimuli: dict[str, Callable[[float], float]] | None = None,
                 update_hook: Callable[[float], None] | None = None):
        self.circuit = circuit
        self.stimuli = dict(stimuli) if stimuli else {}
        self.update_hook = update_hook
        self.solver = DcSolver(circuit)
        for name in self.stimuli:
            circuit.set_source(name, self.stimuli[name](0.0))

    # ------------------------------------------------------------------
    def run(self, t_stop: float, dt: float,
            initial_op=None) -> TransientResult:
        """Integrate from 0 to ``t_stop`` with fixed step ``dt``.

        ``initial_op`` may be a previously solved
        :class:`~repro.spice.solver.OperatingPoint`; otherwise the DC
        operating point at t = 0 is solved first.
        """
        if t_stop <= 0 or dt <= 0:
            raise ValueError(
                f"need positive t_stop and dt, got {t_stop}, {dt}")
        if dt > t_stop:
            raise ValueError("dt must not exceed t_stop")

        if self.update_hook is not None:
            self.update_hook(0.0)
        op = initial_op if initial_op is not None else self.solver.solve()
        x = op.x.copy()

        times = np.arange(0.0, t_stop + 0.5 * dt, dt)
        voltages = {node: np.full(times.size, np.nan)
                    for node in self.circuit.nodes}
        self._record(voltages, x, 0)

        failed: list[int] = []
        system = self.solver.system
        try:
            for i, t in enumerate(times[1:], start=1):
                for name, waveform in self.stimuli.items():
                    self.circuit.set_source(name, waveform(float(t)))
                if self.update_hook is not None:
                    self.update_hook(float(t))
                system.transient_context = (dt, x)
                try:
                    op = self.solver.solve(initial_guess=x)
                except ConvergenceError:
                    failed.append(i)
                    continue
                x = op.x.copy()
                self._record(voltages, x, i)
        finally:
            system.transient_context = None

        return TransientResult(times=times, voltages=voltages,
                               failed_points=failed)

    def _record(self, voltages, x, index: int) -> None:
        for node in self.circuit.nodes:
            voltages[node][index] = x[self.solver.system.node_index(node)]


def pulse(low: float, high: float, t_rise_start: float, t_fall_start: float,
          transition: float = 0.0) -> Callable[[float], float]:
    """Build a single-pulse waveform ``low -> high -> low``.

    Linear ramps of duration ``transition`` are applied at both edges
    (0 = ideal step).
    """
    if transition < 0:
        raise ValueError("transition must be non-negative")
    if t_fall_start < t_rise_start + transition:
        raise ValueError("pulse must finish rising before it falls")

    def waveform(t: float) -> float:
        if t < t_rise_start:
            return low
        if transition > 0.0 and t < t_rise_start + transition:
            return low + (high - low) * (t - t_rise_start) / transition
        if t < t_fall_start:
            return high
        if transition > 0.0 and t < t_fall_start + transition:
            return high - (high - low) * (t - t_fall_start) / transition
        return low

    return waveform
