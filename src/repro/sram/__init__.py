"""6T SRAM cell: topology, butterfly curves, noise margins, indicators.

:mod:`repro.sram.cell` describes the cell and builds reference netlists for
the generic MNA engine; :mod:`repro.sram.butterfly` computes read-condition
voltage transfer curves for whole batches of mismatched cells at once
(vectorised bisection); :mod:`repro.sram.margins` extracts the Seevinck
maximum-embedded-square noise margin from the curves;
:mod:`repro.sram.evaluator` packages all of it into the indicator functions
consumed by the Monte-Carlo estimators in :mod:`repro.core`.
"""

from __future__ import annotations

from repro.sram.cell import SramCell
from repro.sram.butterfly import ButterflyCurves, ReadButterflySolver
from repro.sram.margins import lobe_margins, static_noise_margin
from repro.sram.static import StaticCellAnalysis
from repro.sram.dynamic import (
    DynamicReadOutcome,
    DynamicReadSimulator,
    device_shift_vector,
)
from repro.sram.evaluator import (
    CellEvaluator,
    CellReadFailure,
    Lobe0ReadFailure,
    SpiceCellEvaluator,
    WriteFailure,
)

__all__ = [
    "SramCell",
    "ButterflyCurves",
    "ReadButterflySolver",
    "lobe_margins",
    "static_noise_margin",
    "CellEvaluator",
    "CellReadFailure",
    "Lobe0ReadFailure",
    "WriteFailure",
    "SpiceCellEvaluator",
    "StaticCellAnalysis",
    "DynamicReadSimulator",
    "DynamicReadOutcome",
    "device_shift_vector",
]
