"""Vectorised read-condition butterfly curves.

This is the Monte-Carlo hot path.  For a batch of mismatched cells it
computes both half-cell voltage transfer curves (VTCs) under read bias
(wordline high, both bitlines precharged to VDD) by bisection on the output
node's current balance, which is strictly monotone in the node voltage
because every device conducts more toward its own rail as the node moves
away from it.  All arithmetic is numpy-broadcast over
``(batch, grid)`` arrays; no Python-level loop over samples.

One full butterfly (two VTCs) for a batch of B cells costs
``2 * n_bisection * grid`` vectorised device-model evaluations, giving
~1e4-1e5 cell evaluations per second -- enough to run the naive-Monte-Carlo
reference experiments of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.cell import SramCell


@dataclass
class ButterflyCurves:
    """Butterfly curves for a batch of cells.

    Attributes
    ----------
    grid:
        Shared input-voltage grid, shape (G,).
    vtc_a:
        Inverter A output: Q as a function of QB = ``grid``; shape (B, G).
    vtc_b:
        Inverter B output: QB as a function of Q = ``grid``; shape (B, G).
    vdd:
        Supply voltage the curves were computed at.
    """

    grid: np.ndarray
    vtc_a: np.ndarray
    vtc_b: np.ndarray
    vdd: float

    @property
    def batch_size(self) -> int:
        return self.vtc_a.shape[0]


class ReadButterflySolver:
    """Batch butterfly solver for one cell design at one supply voltage.

    Parameters
    ----------
    cell:
        The :class:`~repro.sram.cell.SramCell` (device models + geometry).
    vdd:
        Supply voltage [V]; defaults to the cell's.
    grid_points:
        Number of input-voltage samples per VTC.
    bisection_iterations:
        Bisection refinement steps; 40 gives ~1e-12 V node accuracy.
    """

    def __init__(self, cell: SramCell, vdd: float | None = None,
                 grid_points: int = 101, bisection_iterations: int = 40):
        if grid_points < 8:
            raise ValueError(f"grid_points must be >= 8, got {grid_points}")
        if bisection_iterations < 8:
            raise ValueError("bisection_iterations must be >= 8")
        self.cell = cell
        self.vdd = float(cell.vdd if vdd is None else vdd)
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        self.grid = np.linspace(0.0, self.vdd, grid_points)
        self.bisection_iterations = bisection_iterations
        # device index triplets (load, driver, access) in DEVICE_ORDER
        self._sides = ((0, 1, 2), (3, 4, 5))
        self._side_names = (("L1", "D1", "A1"), ("L2", "D2", "A2"))

    # ------------------------------------------------------------------
    def solve(self, delta_vth: np.ndarray) -> ButterflyCurves:
        """Compute both VTCs for a batch of shift vectors.

        Parameters
        ----------
        delta_vth:
            Per-device threshold shifts [V], shape (B, 6) following
            :data:`repro.config.DEVICE_ORDER`.
        """
        delta_vth = self._check_shifts(delta_vth)
        vtc_a = self._solve_side(0, delta_vth)
        vtc_b = self._solve_side(1, delta_vth)
        return ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                               vdd=self.vdd)

    def solve_side(self, side: int, delta_vth: np.ndarray,
                   bl_voltage: float | None = None,
                   wl_voltage: float | None = None) -> np.ndarray:
        """VTC of one half cell only; shape (B, G).

        ``bl_voltage``/``wl_voltage`` override the read-condition defaults
        (both at VDD); this is how the hold and write analyses in
        :mod:`repro.sram.static` reuse the solver:

        * hold: ``wl_voltage = 0`` (access gated off);
        * write: ``bl_voltage = 0`` on the driven side.
        """
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        return self._solve_side(side, self._check_shifts(delta_vth),
                                bl_voltage=bl_voltage,
                                wl_voltage=wl_voltage)

    # ------------------------------------------------------------------
    def _check_shifts(self, delta_vth) -> np.ndarray:
        delta_vth = np.atleast_2d(np.asarray(delta_vth, dtype=float))
        if delta_vth.ndim != 2 or delta_vth.shape[1] != 6:
            raise ValueError(
                f"delta_vth must have shape (B, 6), got {delta_vth.shape}")
        return delta_vth

    def _node_current(self, side_names, vin, vout, dv_load, dv_driver,
                      dv_access, bl, wl):
        """Net current *into* the half-cell output node.

        Monotone decreasing in ``vout``: the pull-up contributions shrink
        and the pull-down grows as the node rises.
        """
        load, driver, access = (self.cell.model(n) for n in side_names)
        vdd = self.vdd
        # pMOS load: drain at the node; current into node = -Ids.
        i_load = -load.ids(vin, vout, vdd, dv_load)
        # nMOS driver: drain at the node; current into node = -Ids.
        i_driver = -driver.ids(vin, vout, 0.0, dv_driver)
        # access nMOS between the bitline and the node; gate at WL.  The
        # model handles either current direction (source/drain swap), so a
        # low bitline correctly discharges the node during writes.
        i_access = access.ids(wl, bl, vout, dv_access)
        return i_load + i_driver + i_access

    def _solve_side(self, side: int, delta_vth: np.ndarray,
                    bl_voltage: float | None = None,
                    wl_voltage: float | None = None) -> np.ndarray:
        names = self._side_names[side]
        idx = self._sides[side]
        dv_load = delta_vth[:, idx[0], None]
        dv_driver = delta_vth[:, idx[1], None]
        dv_access = delta_vth[:, idx[2], None]
        bl = self.vdd if bl_voltage is None else float(bl_voltage)
        wl = self.vdd if wl_voltage is None else float(wl_voltage)

        batch = delta_vth.shape[0]
        vin = self.grid[None, :]
        lo = np.zeros((batch, self.grid.size))
        hi = np.full((batch, self.grid.size), self.vdd)
        for _ in range(self.bisection_iterations):
            mid = 0.5 * (lo + hi)
            f = self._node_current(names, vin, mid, dv_load, dv_driver,
                                   dv_access, bl, wl)
            above = f > 0.0
            lo = np.where(above, mid, lo)
            hi = np.where(above, hi, mid)
        return 0.5 * (lo + hi)
