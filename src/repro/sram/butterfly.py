"""Vectorised read-condition butterfly curves.

This is the Monte-Carlo hot path.  For a batch of mismatched cells it
computes both half-cell voltage transfer curves (VTCs) under read bias
(wordline high, both bitlines precharged to VDD) by bisection on the output
node's current balance, which is strictly monotone in the node voltage
because every device conducts more toward its own rail as the node moves
away from it.  All arithmetic is numpy-broadcast over
``(batch, grid)`` arrays; no Python-level loop over samples.

One full butterfly (two VTCs) for a batch of B cells costs
``2 * n_bisection * grid`` vectorised device-model evaluations, giving
~1e4-1e5 cell evaluations per second -- enough to run the naive-Monte-Carlo
reference experiments of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.cell import SramCell
from repro.spice.model import IdsWorkspace
from repro.xp import ArrayBackend, resolve_backend
from repro.xp import generic as xp_generic


@dataclass
class ButterflyCurves:
    """Butterfly curves for a batch of cells.

    Attributes
    ----------
    grid:
        Shared input-voltage grid, shape (G,).
    vtc_a:
        Inverter A output: Q as a function of QB = ``grid``; shape (B, G).
    vtc_b:
        Inverter B output: QB as a function of Q = ``grid``; shape (B, G).
    vdd:
        Supply voltage the curves were computed at.
    """

    grid: np.ndarray
    vtc_a: np.ndarray
    vtc_b: np.ndarray
    vdd: float

    @property
    def batch_size(self) -> int:
        return self.vtc_a.shape[0]


@dataclass
class BisectionState:
    """Bracket arrays of a partially-converged butterfly solve.

    ``side_a``/``side_b`` hold the ``(lo, hi)`` bracket pair, each of
    shape (B, G), after ``iterations`` bisection steps.  Because
    bisection is deterministic, a deeper solver can
    :meth:`~ReadButterflySolver.resume` from these brackets and land on
    exactly the curves its own from-scratch solve would produce.
    """

    side_a: tuple[np.ndarray, np.ndarray]
    side_b: tuple[np.ndarray, np.ndarray]
    iterations: int

    def rows(self, index: np.ndarray) -> "BisectionState":
        """Bracket copies for a row subset (fancy indexing copies)."""
        return BisectionState(
            (self.side_a[0][index], self.side_a[1][index]),
            (self.side_b[0][index], self.side_b[1][index]),
            self.iterations)


class ReadButterflySolver:
    """Batch butterfly solver for one cell design at one supply voltage.

    Parameters
    ----------
    cell:
        The :class:`~repro.sram.cell.SramCell` (device models + geometry).
    vdd:
        Supply voltage [V]; defaults to the cell's.
    grid_points:
        Number of input-voltage samples per VTC.
    bisection_iterations:
        Bisection refinement steps; 40 gives ~1e-12 V node accuracy.
    """

    def __init__(self, cell: SramCell, vdd: float | None = None,
                 grid_points: int = 101, bisection_iterations: int = 40,
                 batched: bool = True,
                 array_backend: "str | ArrayBackend | None" = None,
                 compaction_depth: int = 48):
        if grid_points < 8:
            raise ValueError(f"grid_points must be >= 8, got {grid_points}")
        if bisection_iterations < 8:
            raise ValueError("bisection_iterations must be >= 8")
        self.cell = cell
        self.vdd = float(cell.vdd if vdd is None else vdd)
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        self.grid = np.linspace(0.0, self.vdd, grid_points)
        self.bisection_iterations = bisection_iterations
        #: fuse both butterfly sides into one (2B, G) bisection when the
        #: cell is side-symmetric (halves the Python-level step count;
        #: bit-identical because every step op is elementwise over rows)
        self.batched = bool(batched)
        self.backend = (array_backend if isinstance(array_backend,
                                                    ArrayBackend)
                        else resolve_backend(array_backend))
        #: bisection depth beyond which rows whose brackets have
        #: collapsed to adjacent floats are retired from the batch; the
        #: default sits above the standard 40-step solve so the check
        #: costs nothing there, while deep solves (>= ~53 steps, where
        #: brackets reach the float64 ulp) stop paying device evals for
        #: converged cells.  Retirement is bit-identical: once
        #: ``mid == lo`` or ``mid == hi`` at every grid point, every
        #: future midpoint of that row equals the current one.
        self.compaction_depth = int(compaction_depth)
        #: cumulative device-model (Ids) evaluation count, in units of
        #: one device triplet at one (sample, grid) point -- the perf
        #: reports' core "did we actually do less work" metric.
        self.model_evals = 0
        #: device-model evaluations skipped by active-lane compaction
        self.evals_saved = 0
        # device index triplets (load, driver, access) in DEVICE_ORDER
        self._sides = ((0, 1, 2), (3, 4, 5))
        self._side_names = (("L1", "D1", "A1"), ("L2", "D2", "A2"))
        self._symmetric = self._sides_symmetric()

    def _sides_symmetric(self) -> bool:
        """Whether L1/D1/A1 and L2/D2/A2 share params and geometry.

        True for every cell built from a role-based
        :class:`~repro.config.CellGeometry`; the guard keeps side fusion
        honest should a future cell type break the symmetry.
        """
        for name_a, name_b in zip(*self._side_names):
            model_a = self.cell.model(name_a)
            model_b = self.cell.model(name_b)
            if (model_a.params != model_b.params
                    or model_a.w_nm != model_b.w_nm
                    or model_a.l_nm != model_b.l_nm):
                return False
        return True

    # ------------------------------------------------------------------
    def solve(self, delta_vth: np.ndarray) -> ButterflyCurves:
        """Compute both VTCs for a batch of shift vectors.

        Parameters
        ----------
        delta_vth:
            Per-device threshold shifts [V], shape (B, 6) following
            :data:`repro.config.DEVICE_ORDER`.
        """
        delta_vth = self._check_shifts(delta_vth)
        if self.batched and self._symmetric:
            vtc_a, vtc_b = self._solve_fused(delta_vth)
        else:
            vtc_a = self._solve_side(0, delta_vth)
            vtc_b = self._solve_side(1, delta_vth)
        return ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                               vdd=self.vdd)

    def solve_with_state(self, delta_vth: np.ndarray
                         ) -> tuple[ButterflyCurves, BisectionState]:
        """:meth:`solve` that also returns the bisection brackets.

        The state lets a deeper solver :meth:`resume` the bisection
        instead of re-solving from scratch (the adaptive evaluator's
        refinement path).
        """
        delta_vth = self._check_shifts(delta_vth)
        if self.batched and self._symmetric:
            (vtc_a, vtc_b), (side_a, side_b) = \
                self._solve_fused(delta_vth, keep_state=True)
        else:
            vtc_a, side_a = self._solve_side(0, delta_vth,
                                             keep_state=True)
            vtc_b, side_b = self._solve_side(1, delta_vth,
                                             keep_state=True)
        curves = ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                                 vdd=self.vdd)
        return curves, BisectionState(side_a, side_b,
                                      self.bisection_iterations)

    def resume(self, delta_vth: np.ndarray,
               state: BisectionState) -> ButterflyCurves:
        """Continue a shallower solve to this solver's full depth.

        The first ``state.iterations`` steps of a from-scratch solve
        compute exactly the brackets ``state`` holds (same initial
        interval, same deterministic comparisons), so the returned
        curves are bit-identical to ``solve(delta_vth)`` at the cost of
        only the remaining steps.  ``state`` is consumed: its arrays
        are updated in place.
        """
        delta_vth = self._check_shifts(delta_vth)
        extra = self.bisection_iterations - state.iterations
        if extra < 0:
            raise ValueError(
                f"cannot resume a {state.iterations}-step solve with a "
                f"{self.bisection_iterations}-step solver")
        if self.batched and self._symmetric:
            start = (np.concatenate([state.side_a[0], state.side_b[0]]),
                     np.concatenate([state.side_a[1], state.side_b[1]]))
            vtc_a, vtc_b = self._solve_fused(delta_vth, start=start,
                                             iterations=extra)
        else:
            vtc_a = self._solve_side(0, delta_vth, start=state.side_a,
                                     iterations=extra)
            vtc_b = self._solve_side(1, delta_vth, start=state.side_b,
                                     iterations=extra)
        return ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                               vdd=self.vdd)

    def solve_side(self, side: int, delta_vth: np.ndarray,
                   bl_voltage: float | None = None,
                   wl_voltage: float | None = None) -> np.ndarray:
        """VTC of one half cell only; shape (B, G).

        ``bl_voltage``/``wl_voltage`` override the read-condition defaults
        (both at VDD); this is how the hold and write analyses in
        :mod:`repro.sram.static` reuse the solver:

        * hold: ``wl_voltage = 0`` (access gated off);
        * write: ``bl_voltage = 0`` on the driven side.
        """
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        return self._solve_side(side, self._check_shifts(delta_vth),
                                bl_voltage=bl_voltage,
                                wl_voltage=wl_voltage)

    # ------------------------------------------------------------------
    def _check_shifts(self, delta_vth) -> np.ndarray:
        delta_vth = np.atleast_2d(np.asarray(delta_vth, dtype=float))
        if delta_vth.ndim != 2 or delta_vth.shape[1] != 6:
            raise ValueError(
                f"delta_vth must have shape (B, 6), got {delta_vth.shape}")
        return delta_vth

    def _node_current(self, side_names, vin, vout, dv_load, dv_driver,
                      dv_access, bl, wl):
        """Net current *into* the half-cell output node.

        Monotone decreasing in ``vout``: the pull-up contributions shrink
        and the pull-down grows as the node rises.
        """
        load, driver, access = (self.cell.model(n) for n in side_names)
        vdd = self.vdd
        # pMOS load: drain at the node; current into node = -Ids.
        i_load = -load.ids(vin, vout, vdd, dv_load)
        # nMOS driver: drain at the node; current into node = -Ids.
        i_driver = -driver.ids(vin, vout, 0.0, dv_driver)
        # access nMOS between the bitline and the node; gate at WL.  The
        # model handles either current direction (source/drain swap), so a
        # low bitline correctly discharges the node during writes.
        i_access = access.ids(wl, bl, vout, dv_access)
        return i_load + i_driver + i_access

    def _solve_side(self, side: int, delta_vth: np.ndarray,
                    bl_voltage: float | None = None,
                    wl_voltage: float | None = None,
                    start: tuple[np.ndarray, np.ndarray] | None = None,
                    iterations: int | None = None,
                    keep_state: bool = False):
        names = self._side_names[side]
        idx = self._sides[side]
        models = tuple(self.cell.model(n) for n in names)
        dv_load = delta_vth[:, idx[0], None]
        dv_driver = delta_vth[:, idx[1], None]
        dv_access = delta_vth[:, idx[2], None]
        return self._bisect(models, dv_load, dv_driver, dv_access,
                            bl_voltage, wl_voltage, start, iterations,
                            keep_state)

    def _solve_fused(self, delta_vth: np.ndarray,
                     start: tuple[np.ndarray, np.ndarray] | None = None,
                     iterations: int | None = None,
                     keep_state: bool = False):
        """Both sides as one (2B, G) bisection; rows [:B] are side A.

        Valid only for side-symmetric cells (checked at construction):
        with identical device models, stacking side B's shift columns
        under side A's gives per-row results bit-identical to the two
        sequential solves, because every bisection op is elementwise
        over rows.
        """
        batch = delta_vth.shape[0]
        idx_a, idx_b = self._sides
        dv_load = np.concatenate(
            [delta_vth[:, idx_a[0]], delta_vth[:, idx_b[0]]])[:, None]
        dv_driver = np.concatenate(
            [delta_vth[:, idx_a[1]], delta_vth[:, idx_b[1]]])[:, None]
        dv_access = np.concatenate(
            [delta_vth[:, idx_a[2]], delta_vth[:, idx_b[2]]])[:, None]
        models = tuple(self.cell.model(n) for n in self._side_names[0])
        result = self._bisect(models, dv_load, dv_driver, dv_access,
                              None, None, start, iterations, keep_state)
        if keep_state:
            mid, (lo, hi) = result
            return ((mid[:batch], mid[batch:]),
                    ((lo[:batch], hi[:batch]), (lo[batch:], hi[batch:])))
        return result[:batch], result[batch:]

    def _bisect(self, models, dv_load, dv_driver, dv_access,
                bl_voltage, wl_voltage, start, iterations, keep_state):
        """Shared bisection engine over an (N, G) bracket block.

        Maintains the invariant ``0 <= lo <= mid <= hi <= vdd`` (the
        initial brackets span ``[0, vdd]`` and every update replaces an
        endpoint with the midpoint), which is what licenses the
        swap-free ``assume_ordered`` device evaluation below.
        """
        bl = self.vdd if bl_voltage is None else float(bl_voltage)
        wl = self.vdd if wl_voltage is None else float(wl_voltage)
        batch = dv_load.shape[0]
        grid_size = self.grid.size
        vin = self.grid[None, :]
        if start is None:
            lo = np.zeros((batch, grid_size))
            hi = np.full((batch, grid_size), self.vdd)
        else:
            lo, hi = start  # resumed brackets, consumed by the solve
        steps = (self.bisection_iterations if iterations is None
                 else iterations)
        # bisection depth the brackets already encode (resumed solves)
        depth_done = self.bisection_iterations - steps
        if not self.backend.native_numpy:
            return self._bisect_generic(models, vin, lo, hi, dv_load,
                                        dv_driver, dv_access, bl, wl,
                                        steps, keep_state)

        load, driver, access = models
        # The node stays inside [0, vdd]: the pMOS load and nMOS driver
        # are always source/drain-ordered after polarity mirroring, and
        # the access device is whenever the bitline is at or above the
        # bracket ceiling (reads and holds; writes drive a bitline low
        # and take the general swap path).
        access_ordered = bl >= self.vdd
        kernels = self.backend.kernels
        workspace = IdsWorkspace(lo.shape)
        i_load = np.empty(lo.shape)
        i_driver = np.empty(lo.shape)
        i_access = np.empty(lo.shape)
        mid = np.empty_like(lo)
        above = np.empty(lo.shape, dtype=bool)
        below = np.empty(lo.shape, dtype=bool)
        # Active-lane compaction: collect retired rows into `final`,
        # tracked by their original row index.  Disabled for state-
        # keeping solves, whose brackets must stay full-size.
        compacting = (not keep_state
                      and depth_done + steps > self.compaction_depth)
        final = np.empty_like(lo) if compacting else None
        alive = np.arange(batch) if compacting else None
        n_active = batch

        def views():
            return (mid[:n_active], above[:n_active], below[:n_active],
                    i_load[:n_active], i_driver[:n_active],
                    i_access[:n_active])

        mid_v, above_v, below_v, i_load_v, i_driver_v, i_access_v = \
            views()
        for step in range(steps):
            np.add(lo, hi, out=mid_v)
            mid_v *= 0.5
            if compacting and depth_done + step >= self.compaction_depth:
                # A row retires once mid equals lo or hi at every grid
                # point: the bracket update then either keeps both
                # endpoints or collapses onto mid, so every later
                # midpoint -- and the final (lo + hi) / 2 -- is this mid.
                np.equal(mid_v, lo, out=above_v)
                np.equal(mid_v, hi, out=below_v)
                np.logical_or(above_v, below_v, out=above_v)
                frozen = above_v.all(axis=1)
                if frozen.any():
                    final[alive[frozen]] = mid_v[frozen]
                    self.evals_saved += (int(frozen.sum())
                                         * (steps - step) * grid_size)
                    keep = ~frozen
                    alive = alive[keep]
                    lo = lo[keep]
                    hi = hi[keep]
                    dv_load = dv_load[keep]
                    dv_driver = dv_driver[keep]
                    dv_access = dv_access[keep]
                    n_active = lo.shape[0]
                    workspace.shrink(n_active)
                    (mid_v, above_v, below_v, i_load_v, i_driver_v,
                     i_access_v) = views()
                    if n_active == 0:
                        break
                    np.add(lo, hi, out=mid_v)
                    mid_v *= 0.5
            # in-place node current, same op order as _node_current
            load.ids_into(vin, mid_v, self.vdd, dv_load, out=i_load_v,
                          workspace=workspace, assume_ordered=True,
                          kernels=kernels)
            np.negative(i_load_v, out=i_load_v)
            driver.ids_into(vin, mid_v, 0.0, dv_driver, out=i_driver_v,
                            workspace=workspace, assume_ordered=True,
                            kernels=kernels)
            np.negative(i_driver_v, out=i_driver_v)
            access.ids_into(wl, bl, mid_v, dv_access, out=i_access_v,
                            workspace=workspace,
                            assume_ordered=access_ordered,
                            kernels=kernels)
            np.add(i_load_v, i_driver_v, out=i_load_v)
            np.add(i_load_v, i_access_v, out=i_load_v)
            np.greater(i_load_v, 0.0, out=above_v)
            np.logical_not(above_v, out=below_v)
            np.copyto(lo, mid_v, where=above_v)
            np.copyto(hi, mid_v, where=below_v)
            self.model_evals += n_active * grid_size
        if n_active:
            np.add(lo, hi, out=mid_v)
            mid_v *= 0.5
        if compacting:
            if n_active:
                final[alive] = mid_v
            result = final
        else:
            result = mid
        if keep_state:
            return result, (lo, hi)
        return result

    def _bisect_generic(self, models, vin, lo, hi, dv_load, dv_driver,
                        dv_access, bl, wl, steps, keep_state):
        """Bisection through the pluggable array namespace.

        Inputs are converted at this boundary and results converted
        back, so estimator code above the solver never sees foreign
        array types.  The program (see :mod:`repro.xp.generic`) applies
        the same operations in the same order as the native path; with
        a numpy-backed namespace it is bit-identical, and for real
        device backends any deviation is bounded by the namespace's own
        elementwise kernels (documented tolerance).
        """
        xp = self.backend.xp
        mid, lo_out, hi_out = xp_generic.bisect(
            xp, models, xp.asarray(vin), xp.asarray(lo), xp.asarray(hi),
            xp.asarray(dv_load), xp.asarray(dv_driver),
            xp.asarray(dv_access), self.vdd, bl, wl, steps)
        self.model_evals += steps * lo.shape[0] * self.grid.size
        result = np.asarray(mid)
        if keep_state:
            return result, (np.asarray(lo_out), np.asarray(hi_out))
        return result
