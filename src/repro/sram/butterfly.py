"""Vectorised read-condition butterfly curves.

This is the Monte-Carlo hot path.  For a batch of mismatched cells it
computes both half-cell voltage transfer curves (VTCs) under read bias
(wordline high, both bitlines precharged to VDD) by bisection on the output
node's current balance, which is strictly monotone in the node voltage
because every device conducts more toward its own rail as the node moves
away from it.  All arithmetic is numpy-broadcast over
``(batch, grid)`` arrays; no Python-level loop over samples.

One full butterfly (two VTCs) for a batch of B cells costs
``2 * n_bisection * grid`` vectorised device-model evaluations, giving
~1e4-1e5 cell evaluations per second -- enough to run the naive-Monte-Carlo
reference experiments of the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.sram.cell import SramCell


@dataclass
class ButterflyCurves:
    """Butterfly curves for a batch of cells.

    Attributes
    ----------
    grid:
        Shared input-voltage grid, shape (G,).
    vtc_a:
        Inverter A output: Q as a function of QB = ``grid``; shape (B, G).
    vtc_b:
        Inverter B output: QB as a function of Q = ``grid``; shape (B, G).
    vdd:
        Supply voltage the curves were computed at.
    """

    grid: np.ndarray
    vtc_a: np.ndarray
    vtc_b: np.ndarray
    vdd: float

    @property
    def batch_size(self) -> int:
        return self.vtc_a.shape[0]


@dataclass
class BisectionState:
    """Bracket arrays of a partially-converged butterfly solve.

    ``side_a``/``side_b`` hold the ``(lo, hi)`` bracket pair, each of
    shape (B, G), after ``iterations`` bisection steps.  Because
    bisection is deterministic, a deeper solver can
    :meth:`~ReadButterflySolver.resume` from these brackets and land on
    exactly the curves its own from-scratch solve would produce.
    """

    side_a: tuple[np.ndarray, np.ndarray]
    side_b: tuple[np.ndarray, np.ndarray]
    iterations: int

    def rows(self, index: np.ndarray) -> "BisectionState":
        """Bracket copies for a row subset (fancy indexing copies)."""
        return BisectionState(
            (self.side_a[0][index], self.side_a[1][index]),
            (self.side_b[0][index], self.side_b[1][index]),
            self.iterations)


class ReadButterflySolver:
    """Batch butterfly solver for one cell design at one supply voltage.

    Parameters
    ----------
    cell:
        The :class:`~repro.sram.cell.SramCell` (device models + geometry).
    vdd:
        Supply voltage [V]; defaults to the cell's.
    grid_points:
        Number of input-voltage samples per VTC.
    bisection_iterations:
        Bisection refinement steps; 40 gives ~1e-12 V node accuracy.
    """

    def __init__(self, cell: SramCell, vdd: float | None = None,
                 grid_points: int = 101, bisection_iterations: int = 40):
        if grid_points < 8:
            raise ValueError(f"grid_points must be >= 8, got {grid_points}")
        if bisection_iterations < 8:
            raise ValueError("bisection_iterations must be >= 8")
        self.cell = cell
        self.vdd = float(cell.vdd if vdd is None else vdd)
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        self.grid = np.linspace(0.0, self.vdd, grid_points)
        self.bisection_iterations = bisection_iterations
        #: cumulative device-model (Ids) evaluation count, in units of
        #: one device triplet at one (sample, grid) point -- the perf
        #: reports' core "did we actually do less work" metric.
        self.model_evals = 0
        # device index triplets (load, driver, access) in DEVICE_ORDER
        self._sides = ((0, 1, 2), (3, 4, 5))
        self._side_names = (("L1", "D1", "A1"), ("L2", "D2", "A2"))

    # ------------------------------------------------------------------
    def solve(self, delta_vth: np.ndarray) -> ButterflyCurves:
        """Compute both VTCs for a batch of shift vectors.

        Parameters
        ----------
        delta_vth:
            Per-device threshold shifts [V], shape (B, 6) following
            :data:`repro.config.DEVICE_ORDER`.
        """
        delta_vth = self._check_shifts(delta_vth)
        vtc_a = self._solve_side(0, delta_vth)
        vtc_b = self._solve_side(1, delta_vth)
        return ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                               vdd=self.vdd)

    def solve_with_state(self, delta_vth: np.ndarray
                         ) -> tuple[ButterflyCurves, BisectionState]:
        """:meth:`solve` that also returns the bisection brackets.

        The state lets a deeper solver :meth:`resume` the bisection
        instead of re-solving from scratch (the adaptive evaluator's
        refinement path).
        """
        delta_vth = self._check_shifts(delta_vth)
        vtc_a, side_a = self._solve_side(0, delta_vth, keep_state=True)
        vtc_b, side_b = self._solve_side(1, delta_vth, keep_state=True)
        curves = ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                                 vdd=self.vdd)
        return curves, BisectionState(side_a, side_b,
                                      self.bisection_iterations)

    def resume(self, delta_vth: np.ndarray,
               state: BisectionState) -> ButterflyCurves:
        """Continue a shallower solve to this solver's full depth.

        The first ``state.iterations`` steps of a from-scratch solve
        compute exactly the brackets ``state`` holds (same initial
        interval, same deterministic comparisons), so the returned
        curves are bit-identical to ``solve(delta_vth)`` at the cost of
        only the remaining steps.  ``state`` is consumed: its arrays
        are updated in place.
        """
        delta_vth = self._check_shifts(delta_vth)
        extra = self.bisection_iterations - state.iterations
        if extra < 0:
            raise ValueError(
                f"cannot resume a {state.iterations}-step solve with a "
                f"{self.bisection_iterations}-step solver")
        vtc_a = self._solve_side(0, delta_vth, start=state.side_a,
                                 iterations=extra)
        vtc_b = self._solve_side(1, delta_vth, start=state.side_b,
                                 iterations=extra)
        return ButterflyCurves(grid=self.grid, vtc_a=vtc_a, vtc_b=vtc_b,
                               vdd=self.vdd)

    def solve_side(self, side: int, delta_vth: np.ndarray,
                   bl_voltage: float | None = None,
                   wl_voltage: float | None = None) -> np.ndarray:
        """VTC of one half cell only; shape (B, G).

        ``bl_voltage``/``wl_voltage`` override the read-condition defaults
        (both at VDD); this is how the hold and write analyses in
        :mod:`repro.sram.static` reuse the solver:

        * hold: ``wl_voltage = 0`` (access gated off);
        * write: ``bl_voltage = 0`` on the driven side.
        """
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        return self._solve_side(side, self._check_shifts(delta_vth),
                                bl_voltage=bl_voltage,
                                wl_voltage=wl_voltage)

    # ------------------------------------------------------------------
    def _check_shifts(self, delta_vth) -> np.ndarray:
        delta_vth = np.atleast_2d(np.asarray(delta_vth, dtype=float))
        if delta_vth.ndim != 2 or delta_vth.shape[1] != 6:
            raise ValueError(
                f"delta_vth must have shape (B, 6), got {delta_vth.shape}")
        return delta_vth

    def _node_current(self, side_names, vin, vout, dv_load, dv_driver,
                      dv_access, bl, wl):
        """Net current *into* the half-cell output node.

        Monotone decreasing in ``vout``: the pull-up contributions shrink
        and the pull-down grows as the node rises.
        """
        load, driver, access = (self.cell.model(n) for n in side_names)
        vdd = self.vdd
        # pMOS load: drain at the node; current into node = -Ids.
        i_load = -load.ids(vin, vout, vdd, dv_load)
        # nMOS driver: drain at the node; current into node = -Ids.
        i_driver = -driver.ids(vin, vout, 0.0, dv_driver)
        # access nMOS between the bitline and the node; gate at WL.  The
        # model handles either current direction (source/drain swap), so a
        # low bitline correctly discharges the node during writes.
        i_access = access.ids(wl, bl, vout, dv_access)
        return i_load + i_driver + i_access

    def _solve_side(self, side: int, delta_vth: np.ndarray,
                    bl_voltage: float | None = None,
                    wl_voltage: float | None = None,
                    start: tuple[np.ndarray, np.ndarray] | None = None,
                    iterations: int | None = None,
                    keep_state: bool = False):
        names = self._side_names[side]
        idx = self._sides[side]
        dv_load = delta_vth[:, idx[0], None]
        dv_driver = delta_vth[:, idx[1], None]
        dv_access = delta_vth[:, idx[2], None]
        bl = self.vdd if bl_voltage is None else float(bl_voltage)
        wl = self.vdd if wl_voltage is None else float(wl_voltage)

        batch = delta_vth.shape[0]
        vin = self.grid[None, :]
        if start is None:
            lo = np.zeros((batch, self.grid.size))
            hi = np.full((batch, self.grid.size), self.vdd)
        else:
            lo, hi = start  # resumed brackets, updated in place
        steps = (self.bisection_iterations if iterations is None
                 else iterations)
        # Loop-invariant buffers hoisted out of the bisection loop; each
        # iteration updates them in place instead of allocating four
        # fresh (B, G) arrays.  (lo + hi) * 0.5 and the masked copies
        # are the same float ops as the np.where formulation, so the
        # returned curves are bit-identical to the old code's.
        mid = np.empty_like(lo)
        above = np.empty(lo.shape, dtype=bool)
        below = np.empty(lo.shape, dtype=bool)
        for _ in range(steps):
            np.add(lo, hi, out=mid)
            mid *= 0.5
            f = self._node_current(names, vin, mid, dv_load, dv_driver,
                                   dv_access, bl, wl)
            np.greater(f, 0.0, out=above)
            np.logical_not(above, out=below)
            np.copyto(lo, mid, where=above)
            np.copyto(hi, mid, where=below)
        self.model_evals += steps * batch * self.grid.size
        np.add(lo, hi, out=mid)
        mid *= 0.5
        if keep_state:
            return mid, (lo, hi)
        return mid
