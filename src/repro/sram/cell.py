"""The 6T SRAM cell: device table and reference netlists.

Topology (paper Fig. 5a)::

           VDD                VDD
            |                  |
      L1 -o|                  |o- L2
            |                  |
   BL --[A1]-- Q ----+  +---- QB --[A2]-- BLB
            |        |  |      |
      D1 --|         x  x     |-- D2     (x = cross-coupling:
            |                  |          gate of L1/D1 = QB,
           GND                GND         gate of L2/D2 = Q)

Inverter A = (L1, D1) drives Q with input QB; inverter B = (L2, D2) drives
QB with input Q; A1/A2 connect Q/QB to the bitlines when the wordline is
high.  Storing "0" means Q low / QB high.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.config import DEVICE_ORDER, CellGeometry
from repro.spice.elements import Mosfet, VoltageSource
from repro.spice.model import (
    NMOS_PTM16,
    PMOS_PTM16,
    MosfetModel,
    MosfetParams,
)
from repro.spice.netlist import Circuit


@dataclass
class SramCell:
    """A 6T cell: geometry plus transistor parameter cards.

    Parameters
    ----------
    geometry:
        Channel geometries (paper Table I defaults).
    nmos, pmos:
        Compact-model parameter cards shared by all n/p devices.
    vdd:
        Default supply [V] for circuits built from this cell.
    """

    geometry: CellGeometry = field(default_factory=CellGeometry)
    nmos: MosfetParams = NMOS_PTM16
    pmos: MosfetParams = PMOS_PTM16
    vdd: float = 0.7

    def __post_init__(self):
        if self.vdd <= 0:
            raise ValueError(f"vdd must be positive, got {self.vdd}")
        if not self.nmos.is_nmos or self.pmos.is_nmos:
            raise ValueError("nmos/pmos parameter cards have wrong polarity")
        self._models = {name: self._build_model(name) for name in DEVICE_ORDER}

    def _build_model(self, name: str) -> MosfetModel:
        params = self.pmos if name.startswith("L") else self.nmos
        dev = self.geometry.device(name)
        return MosfetModel(params, dev.w_nm, dev.l_nm)

    # ------------------------------------------------------------------
    def model(self, name: str) -> MosfetModel:
        """Compact model instance for device ``name``."""
        return self._models[name]

    def device_names(self) -> tuple[str, ...]:
        return DEVICE_ORDER

    # ------------------------------------------------------------------
    def read_circuit(self, delta_vth=None,
                     vdd: float | None = None) -> Circuit:
        """Full cross-coupled cell under read bias (WL high, bitlines high).

        ``delta_vth`` is a per-device shift vector [V] following
        :data:`DEVICE_ORDER`.  Used by the reference (MNA) evaluation path
        and by stability examples; the Monte-Carlo hot path uses
        :class:`repro.sram.butterfly.ReadButterflySolver` instead.
        """
        vdd = self.vdd if vdd is None else vdd
        shifts = self._shift_map(delta_vth)
        ckt = Circuit("sram6t_read")
        ckt.add(VoltageSource("vdd", "vdd", "0", vdd))
        ckt.add(VoltageSource("vwl", "wl", "0", vdd))
        ckt.add(VoltageSource("vbl", "bl", "0", vdd))
        ckt.add(VoltageSource("vblb", "blb", "0", vdd))
        ckt.add(Mosfet("L1", "q", "qb", "vdd", self._models["L1"],
                       shifts["L1"]))
        ckt.add(Mosfet("D1", "q", "qb", "0", self._models["D1"], shifts["D1"]))
        ckt.add(Mosfet("A1", "bl", "wl", "q", self._models["A1"],
                       shifts["A1"]))
        ckt.add(Mosfet("L2", "qb", "q", "vdd", self._models["L2"],
                       shifts["L2"]))
        ckt.add(Mosfet("D2", "qb", "q", "0", self._models["D2"], shifts["D2"]))
        ckt.add(Mosfet("A2", "blb", "wl", "qb", self._models["A2"],
                       shifts["A2"]))
        return ckt

    def read_half_circuit(self, side: int, delta_vth=None,
                          vdd: float | None = None) -> Circuit:
        """Half cell for butterfly tracing: cross-coupling broken.

        ``side=0`` builds inverter A (devices L1/D1 + access A1) with its
        input driven by an independent source ``vin`` and output ``out``;
        ``side=1`` builds inverter B (L2/D2 + A2).
        """
        if side not in (0, 1):
            raise ValueError(f"side must be 0 or 1, got {side}")
        vdd = self.vdd if vdd is None else vdd
        shifts = self._shift_map(delta_vth)
        load, driver, access = (("L1", "D1", "A1") if side == 0
                                else ("L2", "D2", "A2"))
        ckt = Circuit(f"sram6t_half{side}")
        ckt.add(VoltageSource("vdd", "vdd", "0", vdd))
        ckt.add(VoltageSource("vwl", "wl", "0", vdd))
        ckt.add(VoltageSource("vbl", "bl", "0", vdd))
        ckt.add(VoltageSource("vin", "in", "0", 0.0))
        ckt.add(Mosfet(load, "out", "in", "vdd", self._models[load],
                       shifts[load]))
        ckt.add(Mosfet(driver, "out", "in", "0", self._models[driver],
                       shifts[driver]))
        ckt.add(Mosfet(access, "bl", "wl", "out", self._models[access],
                       shifts[access]))
        return ckt

    # ------------------------------------------------------------------
    def _shift_map(self, delta_vth) -> dict[str, float]:
        if delta_vth is None:
            return {name: 0.0 for name in DEVICE_ORDER}
        delta_vth = np.asarray(delta_vth, dtype=float)
        if delta_vth.shape != (len(DEVICE_ORDER),):
            raise ValueError(
                f"delta_vth must have shape ({len(DEVICE_ORDER)},), "
                f"got {delta_vth.shape}")
        return dict(zip(DEVICE_ORDER, delta_vth.tolist()))
