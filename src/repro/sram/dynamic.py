"""Dynamic (time-domain) read-disturb simulation.

The reference methodology the paper contrasts against ([2], [3]): apply a
real wordline pulse to a cell with storage-node capacitances and watch
whether the state survives.  Used to

* cross-validate the static RNM failure criterion (the two agree away
  from the marginal boundary region), and
* measure the cost gap that motivates ECRIPSE: one dynamic read costs
  hundreds of Newton solves vs one vectorised butterfly evaluation
  (``benchmarks/bench_timedomain.py``).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.config import DEVICE_ORDER
from repro.spice.elements import Capacitor
from repro.spice.solver import DcSolver
from repro.spice.transient import TransientResult, TransientSolver, pulse
from repro.sram.cell import SramCell


@dataclass
class DynamicReadOutcome:
    """Result of one dynamic read of a cell storing "0".

    Attributes
    ----------
    flipped:
        True if the read destroyed the stored value.
    result:
        Full waveforms for inspection.
    peak_disturb:
        Highest voltage reached on the (nominally low) Q node during the
        wordline pulse.
    """

    flipped: bool
    result: TransientResult
    peak_disturb: float


class DynamicReadSimulator:
    """Pulse-accurate read-disturb simulation of a stored-"0" cell.

    Parameters
    ----------
    cell:
        The cell design.
    node_capacitance_f:
        Storage-node capacitance [F]; sets the disturb time constant.
    pulse_width_s:
        Wordline high time.
    dt_s:
        Integration step.
    settle_s:
        Time simulated after the wordline falls (the latch must resolve).
    """

    def __init__(self, cell: SramCell, node_capacitance_f: float = 5e-17,
                 pulse_width_s: float = 2e-9, dt_s: float = 2e-11,
                 settle_s: float = 2e-9):
        if node_capacitance_f <= 0:
            raise ValueError("node capacitance must be positive")
        if min(pulse_width_s, dt_s, settle_s) <= 0:
            raise ValueError("time parameters must be positive")
        self.cell = cell
        self.node_capacitance_f = node_capacitance_f
        self.pulse_width_s = pulse_width_s
        self.dt_s = dt_s
        self.settle_s = settle_s

    # ------------------------------------------------------------------
    def simulate(self, delta_vth=None, rtn_driver=None
                 ) -> DynamicReadOutcome:
        """Run one read of a cell storing "0" (Q low / QB high).

        ``delta_vth`` is a per-device static shift vector [V];
        ``rtn_driver`` (an
        :class:`~repro.rtn.transient.RtnTransientDriver`) additionally
        moves the shifts along telegraph trajectories during the read.
        """
        vdd = self.cell.vdd
        circuit = self.cell.read_circuit(delta_vth=delta_vth)
        circuit.add(Capacitor("cq", "q", "0", self.node_capacitance_f))
        circuit.add(Capacitor("cqb", "qb", "0", self.node_capacitance_f))
        update_hook = None
        if rtn_driver is not None:
            update_hook = rtn_driver.bind(circuit, static_shifts=delta_vth)

        t_start = 2 * self.dt_s
        wordline = pulse(0.0, vdd, t_rise_start=t_start,
                         t_fall_start=t_start + self.pulse_width_s)
        solver = TransientSolver(circuit, stimuli={"vwl": wordline},
                                 update_hook=update_hook)

        # initial state: wordline low, cell storing "0".
        circuit.set_source("vwl", 0.0)
        if update_hook is not None:
            update_hook(0.0)
        initial = DcSolver(circuit).solve(initial_guess={
            "q": 0.0, "qb": vdd, "vdd": vdd, "bl": vdd, "blb": vdd})

        t_stop = t_start + self.pulse_width_s + self.settle_s
        result = solver.run(t_stop=t_stop, dt=self.dt_s,
                            initial_op=initial)

        in_pulse = ((result.times >= t_start)
                    & (result.times <= t_start + self.pulse_width_s))
        q_wave = result.waveform("q")
        peak = float(np.nanmax(q_wave[in_pulse])) if np.any(in_pulse) else 0.0
        flipped = bool(q_wave[-1] > result.waveform("qb")[-1])
        return DynamicReadOutcome(flipped=flipped, result=result,
                                  peak_disturb=peak)

    # ------------------------------------------------------------------
    def monte_carlo_pfail(self, space, n_samples: int, rng,
                          rtn_driver_factory=None) -> tuple[float, int]:
        """Small-scale time-domain Monte Carlo (the expensive reference).

        Returns ``(pfail, n_newton_solves_estimate)``.  This is
        deliberately usable only at tiny sample counts -- each sample
        costs a full transient -- which is exactly the paper's argument
        for avoiding time-domain methods in yield estimation.
        """
        if n_samples < 1:
            raise ValueError("n_samples must be >= 1")
        flips = 0
        steps = 0
        for i in range(n_samples):
            x = space.sample(1, rng)[0]
            shifts = space.to_physical(x)
            driver = (rtn_driver_factory(i) if rtn_driver_factory is not None
                      else None)
            outcome = self.simulate(delta_vth=shifts, rtn_driver=driver)
            flips += int(outcome.flipped)
            steps += outcome.result.times.size
        return flips / n_samples, steps


def device_shift_vector(**shifts_mv: float) -> np.ndarray:
    """Convenience: build a delta-Vth vector [V] from mV keyword args.

    >>> device_shift_vector(D1=50.0)[1]
    0.05
    """
    vector = np.zeros(len(DEVICE_ORDER))
    for name, value in shifts_mv.items():
        if name not in DEVICE_ORDER:
            raise KeyError(f"unknown device {name!r}")
        vector[DEVICE_ORDER.index(name)] = value * 1e-3
    return vector
