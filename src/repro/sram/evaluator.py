"""Cell evaluators and failure indicators.

:class:`CellEvaluator` is the fast (vectorised) path: whitened shift
vectors in, signed lobe margins out.  :class:`SpiceCellEvaluator` computes
the same margins through the generic MNA engine one cell at a time; it is
orders of magnitude slower and exists to cross-validate the fast path and
to support arbitrary netlist modifications.

The indicator classes adapt an evaluator to the estimator protocol of
:mod:`repro.core.indicator`: a batch of points in the (total, whitened)
variability space in, boolean failure labels out.  ``Lobe0ReadFailure``
scores only the stored-"0" lobe and is combined with the mirror trick of
:meth:`repro.rtn.model.RtnModel.mirror` for state-dependent RTN runs;
``CellReadFailure`` scores the worse lobe (RDF-only experiments, where both
stored states must be stable).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.rng import stable_seed
from repro.sram.butterfly import ReadButterflySolver
from repro.sram.cell import SramCell
from repro.sram.margins import lobe_margins
from repro.spice.solver import DcSolver
from repro.spice.sweep import dc_sweep
from repro.variability.space import VariabilitySpace

if TYPE_CHECKING:  # avoid the repro.perf -> evaluator import cycle
    from repro.perf.cache import SolveCache


class CellEvaluator:
    """Vectorised margin evaluation in the whitened variability space.

    Parameters
    ----------
    cell:
        The cell design.
    space:
        Whitened space providing the per-device sigma scaling.
    vdd:
        Supply voltage [V]; defaults to the cell's.
    max_batch:
        Internal chunk size bounding peak memory of the vectorised solve.
    cache:
        Optional :class:`~repro.perf.cache.SolveCache`; solved margins
        are memoised per exact ΔVth byte pattern, and hits return the
        stored floats verbatim, so caching never changes a result.
    """

    def __init__(self, cell: SramCell, space: VariabilitySpace,
                 vdd: float | None = None, grid_points: int = 61,
                 margin_levels: int = 64, max_batch: int = 4096,
                 cache: "SolveCache | None" = None, batched: bool = True,
                 array_backend=None, planner=None):
        from repro.perf.batch import BatchPlanner  # local, no cycle

        if space.dim != 6:
            raise ValueError(
                f"cell evaluator needs a 6-D space, got {space.dim}")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.cell = cell
        self.space = space
        self.solver = ReadButterflySolver(cell, vdd=vdd,
                                          grid_points=grid_points,
                                          batched=batched,
                                          array_backend=array_backend)
        self.margin_levels = margin_levels
        self.max_batch = max_batch
        self.cache = cache
        #: slice planner for label/margin requests; defaults to the
        #: legacy ``max_batch`` stride (bit-identical by construction)
        self.planner = (planner if planner is not None
                        else BatchPlanner(max_batch=max_batch))
        # perf-counter deltas absorbed from out-of-process workers,
        # reported by perf_stats() next to the in-process counters
        self._external_stats: dict[str, int] = {}

    @property
    def vdd(self) -> float:
        return self.solver.vdd

    # ------------------------------------------------------------------
    def _margins_at(self, x: np.ndarray, solver: ReadButterflySolver,
                    level: str) -> tuple[np.ndarray, np.ndarray]:
        """Chunked, cache-aware lobe margins through ``solver``.

        Each cache entry is keyed on the exact physical-ΔVth bytes under
        ``level`` ("exact" or "coarse"); only missed rows hit the
        solver.  The butterfly bisection and the margin extraction are
        row-independent elementwise numpy ops, so solving a sub-batch
        of missed rows returns the same bits a full-batch solve would.
        """
        x = np.atleast_2d(np.asarray(x, dtype=float))
        if x.shape[1] != 6:
            raise ValueError(f"x must have shape (B, 6), got {x.shape}")
        rnm0 = np.empty(x.shape[0])
        rnm1 = np.empty(x.shape[0])
        for start, stop in self.planner.plan(x.shape[0],
                                             self.solve_row_bytes):
            dvth = self.space.to_physical(x[start:stop])
            if self.cache is None:
                curves = solver.solve(dvth)
                r0, r1 = lobe_margins(curves, self.margin_levels)
                rnm0[start:stop] = r0
                rnm1[start:stop] = r1
                continue
            hit, c0, c1 = self.cache.lookup(level, dvth)
            if not hit.all():
                miss = ~hit
                curves = solver.solve(dvth[miss])
                r0, r1 = lobe_margins(curves, self.margin_levels)
                self.cache.store(level, dvth[miss], r0, r1)
                c0[miss] = r0
                c1[miss] = r1
            rnm0[start:stop] = c0
            rnm1[start:stop] = c1
        return rnm0, rnm1

    @staticmethod
    def _select_margin(rnm0: np.ndarray, rnm1: np.ndarray,
                       which: str) -> np.ndarray:
        if which == "lobe0":
            return rnm0
        if which == "cell":
            return np.minimum(rnm0, rnm1)
        raise ValueError(f"which must be 'lobe0' or 'cell', got {which!r}")

    def margins(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Signed lobe margins ``(rnm0, rnm1)`` for whitened points ``x``.

        ``x`` has shape (B, 6); entries are total (RDF + RTN) shifts in
        sigma units.  Always the exact (full bisection depth) solve.
        """
        return self._margins_at(x, self.solver, "exact")

    def cell_margin(self, x: np.ndarray) -> np.ndarray:
        """Worse-lobe margin, shape (B,)."""
        rnm0, rnm1 = self.margins(x)
        return np.minimum(rnm0, rnm1)

    def lobe0_margin(self, x: np.ndarray) -> np.ndarray:
        """Stored-"0" lobe margin, shape (B,)."""
        return self.margins(x)[0]

    def failure_labels(self, x: np.ndarray, which: str = "cell"
                       ) -> np.ndarray:
        """Boolean failure labels (margin < 0) for whitened points.

        The label entry point the indicators funnel through; the
        adaptive subclass overrides it with the coarse-screen /
        exact-refine path while this base implementation is the plain
        exact sign.
        """
        rnm0, rnm1 = self.margins(x)
        return self._select_margin(rnm0, rnm1, which) < 0.0

    # ------------------------------------------------------------------
    def solve_fingerprint(self) -> str:
        """Hex id of everything that determines a solve's output.

        Two evaluators with equal fingerprints produce bit-identical
        margins for equal inputs, which is exactly the condition under
        which :class:`~repro.perf.cache.SolveCache` entries may be
        shared or restored.
        """
        return f"{self._fingerprint_seed():016x}"

    def _fingerprint_seed(self) -> int:
        return stable_seed("solve", repr(self.cell), self.vdd,
                           self.solver.grid.size, self.margin_levels,
                           self.solver.bisection_iterations)

    @property
    def device_model_evals(self) -> int:
        """Cumulative device-model evaluations across all solves."""
        return self.solver.model_evals

    @property
    def evals_saved(self) -> int:
        """Device evals skipped by the solver's active-lane compaction."""
        return self.solver.evals_saved

    @property
    def solve_row_bytes(self) -> int:
        """Peak scratch bytes one sample costs the fused solve.

        The fused program keeps ~18 float lanes of shape (2B, G) live
        (workspace pool, brackets, midpoint, per-device currents), i.e.
        two rows of 18 float64 grids per sample; planners with a bytes
        budget use this to size slices.
        """
        return 2 * 18 * self.solver.grid.size * 8

    def absorb_stats(self, delta: dict) -> None:
        """Fold an out-of-process worker's perf-counter delta in.

        Process-backend workers solve on *copies* of this evaluator, so
        their counters never reach the parent's solver; the executor
        ships each chunk's counter delta back and the estimators absorb
        it here, making process-backend perf reports match the serial
        ones (see ``benchmarks/bench_runtime.py``).
        """
        for key, value in delta.items():
            self._external_stats[key] = \
                self._external_stats.get(key, 0) + int(value)

    def _local_perf_stats(self) -> dict:
        stats = {"device_model_evals": self.device_model_evals,
                 "evals_saved": self.evals_saved}
        if self.cache is not None:
            stats.update(self.cache.stats())
        return stats

    def perf_stats(self) -> dict:
        """Counter snapshot for ``FailureEstimate.metadata["perf"]``."""
        stats = self._local_perf_stats()
        for key, value in self._external_stats.items():
            stats[key] = stats.get(key, 0) + value
        return stats


class SpiceCellEvaluator:
    """Reference margin evaluation through the generic MNA engine.

    One DC sweep per half cell per sample; use for validation only.
    """

    def __init__(self, cell: SramCell, space: VariabilitySpace,
                 vdd: float | None = None, grid_points: int = 61):
        if space.dim != 6:
            raise ValueError(
                f"cell evaluator needs a 6-D space, got {space.dim}")
        self.cell = cell
        self.space = space
        self.vdd = float(cell.vdd if vdd is None else vdd)
        self.grid = np.linspace(0.0, self.vdd, grid_points)

    def margins(self, x: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Same contract as :meth:`CellEvaluator.margins` (slow path)."""
        from repro.sram.butterfly import ButterflyCurves  # local, no cycle

        x = np.atleast_2d(np.asarray(x, dtype=float))
        rnm0 = np.empty(x.shape[0])
        rnm1 = np.empty(x.shape[0])
        for i, row in enumerate(x):
            dvth = self.space.to_physical(row)
            vtcs = []
            for side in (0, 1):
                ckt = self.cell.read_half_circuit(side, dvth, vdd=self.vdd)
                result = dc_sweep(ckt, "vin", self.grid,
                                  solver=DcSolver(ckt))
                if result.failed_points:
                    raise RuntimeError(
                        f"reference sweep failed at points "
                        f"{result.failed_points} for sample {i}")
                vtcs.append(result.curve("out"))
            curves = ButterflyCurves(grid=self.grid,
                                     vtc_a=vtcs[0][None, :],
                                     vtc_b=vtcs[1][None, :], vdd=self.vdd)
            r0, r1 = lobe_margins(curves)
            rnm0[i] = r0[0]
            rnm1[i] = r1[0]
        return rnm0, rnm1


class WriteFailure:
    """Indicator: the cell cannot be overwritten (write margin <= 0).

    Extends the paper's read-failure study to write-ability yield: the
    estimators accept this indicator unchanged, so ECRIPSE computes write
    failure probabilities with the same machinery (see
    ``examples/write_yield_study.py``).  Write margins are evaluated
    through :class:`repro.sram.static.StaticCellAnalysis` on the same
    vectorised solver.
    """

    def __init__(self, evaluator: CellEvaluator):
        from repro.sram.static import StaticCellAnalysis  # local, no cycle

        self.evaluator = evaluator
        self.dim = evaluator.space.dim
        self._static = StaticCellAnalysis(evaluator.solver)

    def margin(self, x: np.ndarray) -> np.ndarray:
        """Signed write margin (negative = write failure), shape (B,)."""
        x = np.atleast_2d(np.asarray(x, dtype=float))
        out = np.empty(x.shape[0])
        planner = self.evaluator.planner
        for start, stop in planner.plan(x.shape[0],
                                        self.evaluator.solve_row_bytes):
            dvth = self.evaluator.space.to_physical(x[start:stop])
            out[start:stop] = self._static.write_margin(dvth)
        return out

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Boolean write-failure labels for whitened points ``x``."""
        return self.margin(x) <= 0.0


class Lobe0ReadFailure:
    """Indicator: the stored-"0" lobe collapses (margin < 0).

    Combined with the mirror trick, this serves both stored states in the
    RTN experiments.  Because the mirror trick maps stored-"1" samples
    onto the *mirrored* lobe-0 region, the relevant regions of the RDF
    space are BOTH lobes' boundaries; :attr:`boundary_indicator` therefore
    exposes the cell-level (either-lobe) indicator, which the estimators
    use for their initial boundary search so the particle filters start
    on both lobes regardless of the duty ratio.
    """

    def __init__(self, evaluator: CellEvaluator):
        self.evaluator = evaluator
        self.dim = evaluator.space.dim
        #: both-lobe indicator for initial-particle placement.
        self.boundary_indicator = CellReadFailure(evaluator)

    def margin(self, x: np.ndarray) -> np.ndarray:
        return self.evaluator.lobe0_margin(x)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Boolean failure labels for whitened points ``x`` (B, 6).

        Routed through :meth:`CellEvaluator.failure_labels` so the
        adaptive evaluator can take its screened (but bit-identical)
        path; :meth:`margin` stays exact for the analyses that need the
        float values.
        """
        return self.evaluator.failure_labels(x, "lobe0")


class CellReadFailure:
    """Indicator: either lobe collapses (RDF-only failure criterion)."""

    def __init__(self, evaluator: CellEvaluator):
        self.evaluator = evaluator
        self.dim = evaluator.space.dim

    def margin(self, x: np.ndarray) -> np.ndarray:
        return self.evaluator.cell_margin(x)

    def evaluate(self, x: np.ndarray) -> np.ndarray:
        """Boolean failure labels for whitened points ``x`` (B, 6)."""
        return self.evaluator.failure_labels(x, "cell")
