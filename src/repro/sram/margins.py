"""Noise-margin extraction: Seevinck's maximum embedded square.

The read noise margin of a lobe is the side of the largest square that fits
inside the corresponding eye of the butterfly plot (Seevinck, List, Lohstroh
1987).  A square with axis-parallel sides inscribed in a lobe touches the
two curves at *opposite corners*, which lie on a line of slope +1; rotating
the plane by 45 degrees turns those lines into verticals, so the margin is

.. math::

    \\mathrm{RNM} = \\max_v \\;
        \\frac{u_\\mathrm{outer}(v) - u_\\mathrm{inner}(v)}{\\sqrt 2}

where ``(u, v) = ((x+y)/sqrt2, (y-x)/sqrt2)`` and each curve is a function
``u(v)`` (both VTCs are monotone, so ``v`` is a valid parameter).  The
signed maximum is **negative when the lobe has collapsed**, which is
exactly the failure criterion and gives a margin that varies continuously
through zero -- a property the boundary bisection in
:mod:`repro.core.boundary` relies on.

Lobe 0 (upper-left eye, around the stored-"0" point Q=0/QB=VDD) lives at
``v > 0``; lobe 1 is its mirror image at ``v < 0``.
"""

from __future__ import annotations

import numpy as np

from repro.sram.butterfly import ButterflyCurves

_SQRT2 = float(np.sqrt(2.0))


def batched_interp(x: np.ndarray, y: np.ndarray, xq: np.ndarray) -> np.ndarray:
    """Row-wise linear interpolation with clamped extrapolation.

    Parameters
    ----------
    x:
        Sample abscissae, shape (B, G), strictly increasing along axis 1.
    y:
        Sample ordinates, shape (B, G).
    xq:
        Query abscissae, shape (K,) shared across rows or (B, K) per row.

    Returns
    -------
    (B, K) interpolated values; queries outside the sample range clamp to
    the endpoint values.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.ndim != 2 or x.shape != y.shape:
        raise ValueError(
            f"x and y must both be (B, G), got {x.shape} and {y.shape}")
    xq = np.asarray(xq, dtype=float)
    if xq.ndim == 1:
        xq = np.broadcast_to(xq, (x.shape[0], xq.size))
    if xq.ndim != 2 or xq.shape[0] != x.shape[0]:
        raise ValueError(
            f"xq must be (K,) or (B, K), got {xq.shape} for B={x.shape[0]}")

    # Count samples <= query -> right-bracket index in [1, G-1].
    idx = np.sum(x[:, :, None] <= xq[:, None, :], axis=1)
    idx = np.clip(idx, 1, x.shape[1] - 1)
    x0 = np.take_along_axis(x, idx - 1, axis=1)
    x1 = np.take_along_axis(x, idx, axis=1)
    y0 = np.take_along_axis(y, idx - 1, axis=1)
    y1 = np.take_along_axis(y, idx, axis=1)
    span = x1 - x0
    t = np.where(span > 0, (xq - x0) / np.where(span > 0, span, 1.0), 0.0)
    t = np.clip(t, 0.0, 1.0)
    return y0 + t * (y1 - y0)


def _rotated(curve_x: np.ndarray, curve_y: np.ndarray
             ) -> tuple[np.ndarray, np.ndarray]:
    """Return (v, u) coordinates of curve points."""
    u = (curve_x + curve_y) / _SQRT2
    v = (curve_y - curve_x) / _SQRT2
    return v, u


def lobe_margins(curves: ButterflyCurves, levels: int = 96
                 ) -> tuple[np.ndarray, np.ndarray]:
    """Signed read noise margins of both lobes for a batch of cells.

    Parameters
    ----------
    curves:
        Butterfly curves from
        :class:`~repro.sram.butterfly.ReadButterflySolver`.
    levels:
        Number of 45-degree cut levels scanned per lobe.

    Returns
    -------
    ``(rnm0, rnm1)`` arrays of shape (B,): the margins of the stored-"0"
    lobe (upper-left) and the stored-"1" lobe (lower-right).  Negative
    values mean the lobe has collapsed (read failure for that state).
    """
    if levels < 8:
        raise ValueError(f"levels must be >= 8, got {levels}")
    grid = curves.grid
    batch = curves.batch_size

    # Curve B points: (q, qb) = (grid, vtc_b); v decreases along the grid.
    v_b, u_b = _rotated(np.broadcast_to(grid, (batch, grid.size)),
                        curves.vtc_b)
    # Curve A points: (q, qb) = (vtc_a, grid); v increases along the grid.
    v_a, u_a = _rotated(curves.vtc_a,
                        np.broadcast_to(grid, (batch, grid.size)))

    # batched_interp needs increasing abscissae: flip curve B.
    v_b = v_b[:, ::-1]
    u_b = u_b[:, ::-1]

    vmax = curves.vdd / _SQRT2
    vq0 = np.linspace(0.0, vmax, levels)
    vq1 = np.linspace(-vmax, 0.0, levels)

    gap0 = (batched_interp(v_b, u_b, vq0) - batched_interp(v_a, u_a, vq0))
    gap1 = (batched_interp(v_a, u_a, vq1) - batched_interp(v_b, u_b, vq1))

    rnm0 = gap0.max(axis=1) / _SQRT2
    rnm1 = gap1.max(axis=1) / _SQRT2
    return rnm0, rnm1


def static_noise_margin(curves: ButterflyCurves, levels: int = 96
                        ) -> np.ndarray:
    """Cell-level read noise margin: the worse of the two lobes, (B,)."""
    rnm0, rnm1 = lobe_margins(curves, levels)
    return np.minimum(rnm0, rnm1)


def max_square_reference(curve_b_xy: np.ndarray, curve_a_xy: np.ndarray,
                          lobe: int, vdd: float, resolution: int = 400
                          ) -> float:
    """Independent single-cell reference implementation (tests only).

    Uses ``np.interp`` on sorted rotated point lists rather than the batched
    interpolation above, so it exercises a separate code path.

    Parameters
    ----------
    curve_b_xy, curve_a_xy:
        Dense (N, 2) point lists of the two butterfly curves in the
        (Q, QB) plane.
    lobe:
        0 for the upper-left eye, 1 for the lower-right.
    """
    if lobe not in (0, 1):
        raise ValueError(f"lobe must be 0 or 1, got {lobe}")
    vb, ub = _rotated(curve_b_xy[:, 0], curve_b_xy[:, 1])
    va, ua = _rotated(curve_a_xy[:, 0], curve_a_xy[:, 1])
    vmax = vdd / _SQRT2
    cuts = (np.linspace(0.0, vmax, resolution) if lobe == 0
            else np.linspace(-vmax, 0.0, resolution))
    order_b = np.argsort(vb)
    order_a = np.argsort(va)
    ub_q = np.interp(cuts, vb[order_b], ub[order_b])
    ua_q = np.interp(cuts, va[order_a], ua[order_a])
    gap = (ub_q - ua_q) if lobe == 0 else (ua_q - ub_q)
    return float(gap.max() / _SQRT2)
