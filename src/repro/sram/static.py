"""Hold and write static analyses (extensions beyond the paper).

The paper evaluates *read* stability only; a cell design flow also needs
the hold margin (wordline low -- how robust is retention?) and the write
margin (can the bitline overpower the cell?).  Both reuse the vectorised
butterfly machinery:

* **hold SNM** -- the classic butterfly with the access transistors gated
  off (``wl = 0``); hold margins are much larger than read margins because
  the read bump disappears.
* **write margin** -- to write a "1" into a cell holding "0", the low
  bitline must destroy the stored state's eye: the write margin is the
  *negative* of the stored-state lobe margin under write bias, so positive
  values mean the write succeeds, and the margin magnitude says by how
  much.
"""

from __future__ import annotations

import numpy as np

from repro.sram.butterfly import ButterflyCurves, ReadButterflySolver
from repro.sram.margins import lobe_margins


class StaticCellAnalysis:
    """Hold/write analyses for batches of mismatched cells.

    Parameters
    ----------
    solver:
        A :class:`~repro.sram.butterfly.ReadButterflySolver` for the cell
        and supply of interest (its grid and bisection settings are
        reused).
    """

    def __init__(self, solver: ReadButterflySolver):
        self.solver = solver

    # ------------------------------------------------------------------
    def hold_curves(self, delta_vth: np.ndarray) -> ButterflyCurves:
        """Butterfly curves with the wordline low (retention bias)."""
        vtc_a = self.solver.solve_side(0, delta_vth, wl_voltage=0.0)
        vtc_b = self.solver.solve_side(1, delta_vth, wl_voltage=0.0)
        return ButterflyCurves(grid=self.solver.grid, vtc_a=vtc_a,
                               vtc_b=vtc_b, vdd=self.solver.vdd)

    def hold_margins(self, delta_vth: np.ndarray
                     ) -> tuple[np.ndarray, np.ndarray]:
        """Hold (retention) noise margins of both lobes, (B,) each."""
        return lobe_margins(self.hold_curves(delta_vth))

    def hold_snm(self, delta_vth: np.ndarray) -> np.ndarray:
        """Worse-lobe hold margin, (B,)."""
        rnm0, rnm1 = self.hold_margins(delta_vth)
        return np.minimum(rnm0, rnm1)

    # ------------------------------------------------------------------
    def write_margin(self, delta_vth: np.ndarray) -> np.ndarray:
        """Write-"1" margin for cells holding "0", shape (B,).

        Bias: BLB (side 1, the node storing the high level) pulled low,
        BL (side 0) held high, wordline high -- an nMOS access transistor
        overwrites a cell by discharging its *high* node.  The returned
        value is the negative of the stored-"0" eye's margin under this
        bias: positive means the old state is no longer stable and the
        write succeeds.
        """
        vtc_a = self.solver.solve_side(0, delta_vth)
        vtc_b = self.solver.solve_side(1, delta_vth, bl_voltage=0.0)
        curves = ButterflyCurves(grid=self.solver.grid, vtc_a=vtc_a,
                                 vtc_b=vtc_b, vdd=self.solver.vdd)
        stored0_margin, _ = lobe_margins(curves)
        return -stored0_margin

    def write_failure(self, delta_vth: np.ndarray) -> np.ndarray:
        """Boolean write-failure labels (margin <= 0), shape (B,)."""
        return self.write_margin(delta_vth) <= 0.0
