"""Fabrication-process variability models.

The paper models threshold-voltage mismatch with the Pelgrom law
(:mod:`repro.variability.pelgrom`) and works in a *whitened* space where the
six per-device shifts are i.i.d. standard normal
(:mod:`repro.variability.space`).  General covariance whitening for
correlated extensions lives in :mod:`repro.variability.whitening`.
"""

from __future__ import annotations

from repro.variability.pelgrom import pelgrom_sigma_v, pelgrom_sigmas
from repro.variability.space import VariabilitySpace
from repro.variability.whitening import WhiteningTransform
from repro.variability.correlated import (
    CorrelatedVariabilitySpace,
    common_mode_correlation,
)

__all__ = [
    "pelgrom_sigma_v",
    "pelgrom_sigmas",
    "VariabilitySpace",
    "WhiteningTransform",
    "CorrelatedVariabilitySpace",
    "common_mode_correlation",
]
