"""Correlated process variability.

The paper whitens its variability space and so do we; this module supplies
the whitening for the *correlated* case (e.g. a common-mode process shift
on top of local mismatch), so the unchanged estimator machinery works on
correlated inputs:

>>> corr = common_mode_correlation(6, rho=0.3)
>>> space = CorrelatedVariabilitySpace.from_pelgrom_correlated(
...     500.0, CellGeometry(), corr)         # doctest: +SKIP

The whitened coordinates remain i.i.d. standard normal; only
``to_physical`` changes (it now mixes dimensions through the Cholesky
factor).
"""

from __future__ import annotations

import numpy as np

from repro.config import DEVICE_ORDER, CellGeometry
from repro.variability.pelgrom import pelgrom_sigmas
from repro.variability.space import VariabilitySpace
from repro.variability.whitening import WhiteningTransform


def common_mode_correlation(dim: int, rho: float) -> np.ndarray:
    """Equicorrelation matrix: every pair of devices shares ``rho``.

    Models a chip-level process component on top of local mismatch; must
    satisfy ``-1/(dim-1) < rho < 1`` to stay positive definite.
    """
    if dim < 1:
        raise ValueError(f"dim must be >= 1, got {dim}")
    if not -1.0 / max(dim - 1, 1) < rho < 1.0:
        raise ValueError(
            f"rho must lie in (-1/{dim - 1}, 1) for positive definiteness")
    return np.full((dim, dim), rho) + (1.0 - rho) * np.eye(dim)


class CorrelatedVariabilitySpace(VariabilitySpace):
    """Whitened space over *correlated* Gaussian threshold shifts.

    The prior over the whitened coordinates is still N(0, I) -- every
    estimator works unchanged -- but ``to_physical`` routes through the
    Cholesky factor of the physical covariance, so the induced physical
    shifts carry the requested correlations.
    """

    def __init__(self, transform: WhiteningTransform,
                 names: tuple[str, ...] | None = None):
        marginal_sigmas = np.sqrt(np.diag(transform.covariance))
        super().__init__(marginal_sigmas, names=names)
        self.transform = transform

    @classmethod
    def from_pelgrom_correlated(cls, avth_mv_nm: float,
                                geometry: CellGeometry,
                                correlation: np.ndarray
                                ) -> "CorrelatedVariabilitySpace":
        """Pelgrom marginals plus a device-device correlation matrix."""
        sigmas = pelgrom_sigmas(avth_mv_nm, geometry)
        transform = WhiteningTransform.from_sigmas(sigmas, correlation)
        return cls(transform, names=DEVICE_ORDER)

    # ------------------------------------------------------------------
    def to_physical(self, x) -> np.ndarray:
        x = self._check(x)
        return self.transform.unwhiten(x)

    def to_whitened(self, dvth) -> np.ndarray:
        dvth = self._check(dvth)
        return self.transform.whiten(dvth)
