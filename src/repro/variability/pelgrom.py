"""Pelgrom mismatch law.

Paper eq. (20): the RDF-induced threshold shift of a device with channel
area ``W*L`` is Gaussian with standard deviation ``A_VTH / sqrt(L*W)``.
With the paper's A_VTH = 5e2 mV*nm, a 30x16 nm driver has a sigma of
~22.8 mV and a 60x16 nm load ~16.1 mV.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEVICE_ORDER, CellGeometry


def pelgrom_sigma_v(avth_mv_nm: float, w_nm: float, l_nm: float) -> float:
    """Sigma of the RDF threshold shift in **volts**.

    >>> round(pelgrom_sigma_v(500.0, 30.0, 16.0), 4)
    0.0228
    """
    if avth_mv_nm <= 0:
        raise ValueError(f"A_VTH must be positive, got {avth_mv_nm}")
    if w_nm <= 0 or l_nm <= 0:
        raise ValueError(f"geometry must be positive, got W={w_nm}, L={l_nm}")
    sigma_mv = avth_mv_nm / np.sqrt(w_nm * l_nm)
    return float(sigma_mv) * 1e-3


def pelgrom_sigmas(avth_mv_nm: float, geometry: CellGeometry) -> np.ndarray:
    """Per-device sigma vector [V] following :data:`repro.config.DEVICE_ORDER`.

    The paper assumes the same Pelgrom coefficient for pMOS and nMOS.
    """
    return np.array([
        pelgrom_sigma_v(avth_mv_nm, geometry.device(name).w_nm,
                        geometry.device(name).l_nm)
        for name in DEVICE_ORDER
    ])
