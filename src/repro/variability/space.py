"""The whitened process-variability space.

All Monte-Carlo machinery in :mod:`repro.core` operates on points ``x`` in a
D-dimensional space where the prior is the standard normal (paper eq. 14).
:class:`VariabilitySpace` owns the mapping between that space and physical
per-device threshold shifts (volts), i.e. ``dvth = x * sigmas``.
"""

from __future__ import annotations

import numpy as np

from repro.config import DEVICE_ORDER, CellGeometry
from repro.variability.pelgrom import pelgrom_sigmas

_LOG_2PI = float(np.log(2.0 * np.pi))


class VariabilitySpace:
    """Whitened N(0, I) space over per-device threshold shifts.

    Parameters
    ----------
    sigmas:
        Per-dimension physical standard deviations [V].  For the paper's
        setup use :meth:`from_pelgrom`.
    names:
        Optional dimension labels (defaults to indices).
    """

    def __init__(self, sigmas, names: tuple[str, ...] | None = None):
        sigmas = np.asarray(sigmas, dtype=float)
        if sigmas.ndim != 1 or sigmas.size == 0:
            raise ValueError("sigmas must be a non-empty 1-D array")
        if np.any(sigmas <= 0):
            raise ValueError("all sigmas must be positive")
        self.sigmas = sigmas
        self.dim = sigmas.size
        if names is not None and len(names) != self.dim:
            raise ValueError(
                f"{len(names)} names for {self.dim} dimensions")
        self.names = tuple(names) if names is not None else tuple(
            str(i) for i in range(self.dim))

    # ------------------------------------------------------------------
    @classmethod
    def from_pelgrom(cls, avth_mv_nm: float, geometry: CellGeometry
                     ) -> "VariabilitySpace":
        """Build the 6-D cell space from the Pelgrom law (paper eq. 20)."""
        return cls(pelgrom_sigmas(avth_mv_nm, geometry), names=DEVICE_ORDER)

    # ------------------------------------------------------------------
    def to_physical(self, x) -> np.ndarray:
        """Map whitened points ``x`` (..., D) to threshold shifts [V]."""
        x = self._check(x)
        return x * self.sigmas

    def to_whitened(self, dvth) -> np.ndarray:
        """Inverse of :meth:`to_physical`."""
        dvth = self._check(dvth)
        return dvth / self.sigmas

    # ------------------------------------------------------------------
    def log_pdf(self, x) -> np.ndarray:
        """Log density of the standard-normal prior at ``x`` (..., D)."""
        x = self._check(x)
        return -0.5 * (self.dim * _LOG_2PI + np.sum(x * x, axis=-1))

    def pdf(self, x) -> np.ndarray:
        """Density of the standard-normal prior (paper eq. 14)."""
        return np.exp(self.log_pdf(x))

    def sample(self, n: int, rng: np.random.Generator) -> np.ndarray:
        """Draw ``n`` prior samples, shape (n, D)."""
        if n < 0:
            raise ValueError(f"cannot draw {n} samples")
        return rng.standard_normal((n, self.dim))

    # ------------------------------------------------------------------
    def _check(self, x) -> np.ndarray:
        x = np.asarray(x, dtype=float)
        if x.shape[-1] != self.dim:
            raise ValueError(
                f"expected trailing dimension {self.dim}, got shape {x.shape}")
        return x

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"VariabilitySpace(dim={self.dim}, names={self.names})"
