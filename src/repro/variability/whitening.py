"""Covariance whitening.

The paper assumes the variability components "can be uncorrelated using a
transformation called whitening" (Section II-A).  This module provides that
transformation for the general correlated-Gaussian case so users can feed
correlated mismatch data (e.g. with a common-mode process component) into
the whitened machinery of :mod:`repro.core`.
"""

from __future__ import annotations

import numpy as np


class WhiteningTransform:
    """Bijective map between a correlated Gaussian and the white space.

    Given a covariance ``C = L L^T`` (Cholesky), ``whiten`` maps physical
    deviations to i.i.d. standard-normal coordinates ``x = L^-1 (v - mean)``
    and ``unwhiten`` maps back.

    Parameters
    ----------
    covariance:
        Symmetric positive-definite (D, D) covariance matrix.
    mean:
        Optional (D,) mean vector; defaults to zero.
    """

    def __init__(self, covariance, mean=None):
        cov = np.asarray(covariance, dtype=float)
        if cov.ndim != 2 or cov.shape[0] != cov.shape[1]:
            raise ValueError(f"covariance must be square, got {cov.shape}")
        if not np.allclose(cov, cov.T, atol=1e-12):
            raise ValueError("covariance must be symmetric")
        try:
            self._chol = np.linalg.cholesky(cov)
        except np.linalg.LinAlgError as exc:
            raise ValueError("covariance must be positive definite") from exc
        self.covariance = cov
        self.dim = cov.shape[0]
        self.mean = (np.zeros(self.dim) if mean is None
                     else np.asarray(mean, dtype=float))
        if self.mean.shape != (self.dim,):
            raise ValueError(
                f"mean shape {self.mean.shape} does not match dim {self.dim}")

    # ------------------------------------------------------------------
    @classmethod
    def from_sigmas(cls, sigmas, correlation=None) -> "WhiteningTransform":
        """Build from per-dimension sigmas and an optional correlation
        matrix (identity if omitted)."""
        sigmas = np.asarray(sigmas, dtype=float)
        if np.any(sigmas <= 0):
            raise ValueError("sigmas must be positive")
        corr = np.eye(sigmas.size) if correlation is None else np.asarray(
            correlation, dtype=float)
        cov = corr * np.outer(sigmas, sigmas)
        return cls(cov)

    # ------------------------------------------------------------------
    def whiten(self, v) -> np.ndarray:
        """Physical deviations (..., D) -> white coordinates (..., D)."""
        v = np.asarray(v, dtype=float)
        centred = v - self.mean
        # solve L x = centred^T for each point
        return np.linalg.solve(
            self._chol, centred[..., None])[..., 0] if v.ndim == 1 else (
            np.linalg.solve(self._chol, centred.T).T)

    def unwhiten(self, x) -> np.ndarray:
        """White coordinates (..., D) -> physical deviations (..., D)."""
        x = np.asarray(x, dtype=float)
        return x @ self._chol.T + self.mean

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"WhiteningTransform(dim={self.dim})"
