"""repro.xp -- pluggable array-namespace resolution for the hot path.

The butterfly solver is written against plain numpy, but the unit of
work is a large ``(batch, grid)`` array program, so any namespace that
implements the small elementwise subset the solver needs can run it:
numpy itself (the default and the bit-exact reference), a numba-jitted
kernel set (same arrays, compiled inner loops), or an Array-API
namespace such as CuPy (device arrays, converted at the solver
boundary).

:func:`resolve_backend` maps the :attr:`PerfConfig.array_backend` knob
to an :class:`ArrayBackend`.  Resolution **never fails**: an optional
backend that is missing, or that fails the capability probe, silently
falls back to numpy with the reason recorded on the returned backend --
the estimate must not depend on which accelerators happen to be
installed, and by the neutrality contract it cannot: the numpy and
numba paths are bit-identical by construction, and Array-API paths are
tolerance-checked by the probe before they are accepted (see
``docs/PERFORMANCE.md``, "Array backends & batching").

Test doubles register factories via :func:`register_backend`; the
bundled ``"numpy-generic"`` backend routes numpy arrays through the
generic Array-API solver path, which is how the generic path is proven
bit-identical without a GPU in CI.
"""

from __future__ import annotations

import importlib
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = [
    "ArrayBackend",
    "probe_namespace",
    "register_backend",
    "registered_backends",
    "resolve_backend",
]

#: names resolve_backend understands natively (anything else is treated
#: as an importable Array-API namespace).
BUILTIN_BACKENDS: tuple[str, ...] = ("numpy", "numba")


@dataclass(frozen=True)
class ArrayBackend:
    """A resolved array namespace plus its provenance.

    Attributes
    ----------
    requested:
        The name the user asked for (the ``array_backend`` knob).
    name:
        The backend actually in effect after probing/fallback.
    xp:
        The array namespace module (numpy unless an Array-API namespace
        was resolved).
    fallback_reason:
        Why the requested backend degraded to numpy; ``None`` when the
        request was honoured.
    kernels:
        Optional compiled kernel set (the numba backend); ``None`` for
        pure-namespace backends.
    """

    requested: str
    name: str
    xp: Any
    fallback_reason: str | None = None
    kernels: Any = None

    @property
    def native_numpy(self) -> bool:
        """Whether the solver may run its in-place numpy fast path."""
        return self.xp is np

    def __reduce__(self):
        # Modules and compiled kernel sets do not pickle, so a backend
        # crossing a process boundary re-resolves by requested name in
        # the worker.  The probe re-runs there -- the fallback decision
        # is per-process -- and by the neutrality contract every
        # outcome labels identically, so this is safe for the process
        # executor backend.
        return (resolve_backend, (self.requested,))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        note = (f", fallback: {self.fallback_reason}"
                if self.fallback_reason else "")
        return f"ArrayBackend({self.name!r}{note})"


def _numpy_backend(requested: str, reason: str | None = None
                   ) -> ArrayBackend:
    return ArrayBackend(requested=requested, name="numpy", xp=np,
                        fallback_reason=reason)


#: test-double / extension factories, keyed by backend name.
_REGISTRY: dict[str, Callable[[str], ArrayBackend]] = {}


def register_backend(name: str,
                     factory: Callable[[str], ArrayBackend]) -> None:
    """Register a backend factory (``factory(requested) -> ArrayBackend``).

    Registered names shadow the built-in resolution; tests use this to
    prove the plumbing (and the generic Array-API solver path) without
    optional dependencies installed.
    """
    _REGISTRY[name] = factory


def registered_backends() -> tuple[str, ...]:
    """Names currently registered via :func:`register_backend`."""
    return tuple(sorted(_REGISTRY))


def probe_namespace(xp: Any) -> str | None:
    """Capability-probe an array namespace; ``None`` means usable.

    Checks the elementwise subset the generic solver path needs and
    smoke-computes a softplus against numpy: a namespace that cannot
    reproduce it to 1e-12 relative would silently corrupt margins, so
    it is rejected (the caller falls back to numpy).
    """
    required = ("asarray", "abs", "add", "subtract", "multiply",
                "divide", "exp", "log1p", "maximum", "square", "where",
                "less", "greater", "logical_not", "full", "zeros")
    missing = [name for name in required
               if not callable(getattr(xp, name, None))]
    if missing:
        return f"namespace lacks {', '.join(missing)}"
    try:
        ref = np.linspace(-8.0, 8.0, 33)
        x = xp.asarray(ref)
        soft = xp.add(xp.maximum(x, xp.asarray(0.0)),
                      xp.log1p(xp.exp(-xp.abs(x))))
        got = np.asarray(soft, dtype=float)
        want = np.maximum(ref, 0.0) + np.log1p(np.exp(-np.abs(ref)))
        if got.shape != want.shape:
            return "smoke computation returned a wrong shape"
        err = float(np.max(np.abs(got - want)))
        if not err <= 1e-12:
            return f"smoke computation off by {err:.2e} (> 1e-12)"
    # any third-party namespace failure must demote to numpy, not crash
    except Exception as exc:  # repro: allow-broad-except
        return f"smoke computation failed: {exc!r}"  # pragma: no cover
    return None


def _resolve_numba(requested: str) -> ArrayBackend:
    try:
        from repro.xp import numba_kernels
    except ImportError as exc:  # pragma: no cover - numba installed
        return _numpy_backend(requested, f"numba import failed: {exc}")
    kernels = numba_kernels.build_kernels()
    if kernels is None:
        return _numpy_backend(
            requested, numba_kernels.unavailable_reason())
    return ArrayBackend(requested=requested, name="numba", xp=np,
                        kernels=kernels)


def _resolve_namespace(requested: str) -> ArrayBackend:
    try:
        xp = importlib.import_module(requested)
    except ImportError as exc:
        return _numpy_backend(requested, f"import failed: {exc}")
    reason = probe_namespace(xp)
    if reason is not None:
        return _numpy_backend(requested, reason)
    return ArrayBackend(requested=requested, name=requested, xp=xp)


def resolve_backend(name: str | None = None) -> ArrayBackend:
    """Resolve an ``array_backend`` knob value to a usable backend.

    ``None``/``"numpy"`` is the identity.  ``"numba"`` compiles the
    kernel set when numba is importable.  Any other name is imported as
    an Array-API namespace and capability-probed.  Every failure path
    degrades to numpy and records why -- never raises.
    """
    if name is None or name == "numpy":
        return _numpy_backend("numpy")
    if name in _REGISTRY:
        return _REGISTRY[name](name)
    if name == "numba":
        return _resolve_numba(name)
    return _resolve_namespace(name)
