"""Array-API-generic device model and bisection kernels.

These functions mirror :meth:`repro.spice.model.MosfetModel.ids` and the
butterfly bisection loop operation-for-operation, but written against an
arbitrary array namespace ``xp`` instead of numpy, so the same program
runs on CuPy (or any probed Array-API namespace) without a numpy round
trip per step.  Run with ``xp = numpy`` the program is bit-identical to
the native solver -- that equivalence is what
``tests/xp/test_backends.py`` pins with the registered
``"numpy-generic"`` test backend, and it is the basis for the documented
tolerance of real device backends (identical op order, so any deviation
comes from the namespace's elementwise kernels alone; see
``docs/PERFORMANCE.md``).

Device parameters are read from the :class:`MosfetModel` instances
through their public surface (``params``, ``w_nm``, ``l_nm``), keeping
this module free of solver state.
"""

from __future__ import annotations

from typing import Any

from repro.constants import thermal_voltage

__all__ = ["ids", "node_current", "bisect"]


def _softplus(xp: Any, x: Any) -> Any:
    return xp.maximum(x, xp.asarray(0.0)) + xp.log1p(xp.exp(-xp.abs(x)))


def ids(xp: Any, model: Any, vg: Any, vd: Any, vs: Any,
        delta_vth: Any) -> Any:
    """Drain current; same op order as ``MosfetModel.ids``."""
    p = model.params
    sign = float(p.polarity)
    vg = sign * xp.asarray(vg)
    vd = sign * xp.asarray(vd)
    vs = sign * xp.asarray(vs)
    dvth = xp.asarray(delta_vth)

    swap = vd < vs
    vlo = xp.where(swap, vd, vs)
    vhi = xp.where(swap, vs, vd)
    vds = vhi - vlo

    vth = p.vth0 + dvth - p.dibl * vds
    vt = thermal_voltage(p.temperature)
    n = p.n

    vp = (vg - vth) / n
    forward = xp.square(_softplus(xp, (vp - vlo) / (2.0 * vt)))
    reverse = xp.square(_softplus(xp, (vp - vhi) / (2.0 * vt)))

    vov = vt * 2.0 * _softplus(xp, (vg - vlo - vth) / (2.0 * vt))
    gain = p.beta / (1.0 + p.theta * vov)

    aspect = model.w_nm / model.l_nm
    ispec = 2.0 * n * gain * vt * vt * aspect
    current = ispec * (forward - reverse) * (1.0 + p.lambda_clm * vds)

    current = xp.where(swap, -current, current)
    return sign * current


def node_current(xp: Any, models: Any, vin: Any, vout: Any, dv_load: Any,
                 dv_driver: Any, dv_access: Any, vdd: float, bl: float,
                 wl: float) -> Any:
    """Net current into the half-cell node (see the native solver)."""
    load, driver, access = models
    i_load = -ids(xp, load, vin, vout, vdd, dv_load)
    i_driver = -ids(xp, driver, vin, vout, 0.0, dv_driver)
    i_access = ids(xp, access, wl, bl, vout, dv_access)
    return i_load + i_driver + i_access


def bisect(xp: Any, models: Any, vin: Any, lo: Any, hi: Any,
           dv_load: Any, dv_driver: Any, dv_access: Any, vdd: float,
           bl: float, wl: float, steps: int
           ) -> tuple[Any, Any, Any]:
    """``steps`` bisection refinements; returns ``(mid, lo, hi)``.

    ``lo = where(above, mid, lo)`` is the functional twin of the native
    loop's ``copyto(lo, mid, where=above)`` -- same values elementwise.
    """
    for _ in range(steps):
        mid = (lo + hi) * 0.5
        f = node_current(xp, models, vin, mid, dv_load, dv_driver,
                         dv_access, vdd, bl, wl)
        above = f > 0.0
        lo = xp.where(above, mid, lo)
        hi = xp.where(above, hi, mid)
    return (lo + hi) * 0.5, lo, hi
