"""Optional numba-jitted kernels for the batched solver hot path.

The numba backend keeps numpy arrays end to end -- it only swaps the
softplus transcendental (the single most expensive elementwise op in
:meth:`MosfetModel.ids`) for a compiled loop.  Because jitted ``exp``/
``log1p`` may come from a different libm than numpy's SIMD kernels,
:func:`build_kernels` *verifies* bit-identity against numpy on a probe
grid before handing the kernels out; any mismatch (or numba being
absent) makes the backend unavailable and :func:`repro.xp.resolve_backend`
silently falls back to plain numpy.  The neutrality contract is thus
enforced at resolve time, not merely asserted in documentation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

__all__ = ["NumbaKernels", "build_kernels", "unavailable_reason"]

_REASON = "numba kernels not built yet"


@dataclass(frozen=True)
class NumbaKernels:
    """Compiled kernels, all operating on 1-D contiguous float64 views."""

    softplus_into: Callable[[np.ndarray, np.ndarray], None]
    exp_neg_abs_into: Callable[[np.ndarray, np.ndarray], None]


def _compile() -> Any:
    import numba  # noqa: F401  - gated optional dependency

    @numba.njit(cache=True)
    def softplus_into(x: np.ndarray, out: np.ndarray) -> None:
        for i in range(x.size):
            v = x[i]
            hinge = v if v > 0.0 else 0.0
            out[i] = hinge + np.log1p(np.exp(-abs(v)))

    @numba.njit(cache=True)
    def exp_neg_abs_into(x: np.ndarray, out: np.ndarray) -> None:
        for i in range(x.size):
            out[i] = np.exp(-abs(x[i]))

    return NumbaKernels(softplus_into=softplus_into,
                        exp_neg_abs_into=exp_neg_abs_into)


def _probe_bit_identity(kernels: NumbaKernels) -> bool:
    # cover both softplus branches, denormal-adjacent magnitudes, and
    # the saturated tails actually reached by (vp - v) / (2 vt)
    x = np.concatenate([
        np.linspace(-60.0, 60.0, 4001),
        np.array([0.0, -0.0, 1e-300, -1e-300, 745.0, -745.0]),
    ])
    got = np.empty_like(x)
    kernels.softplus_into(x, got)
    want = np.maximum(x, 0.0) + np.log1p(np.exp(-np.abs(x)))
    if got.tobytes() != want.tobytes():
        return False
    kernels.exp_neg_abs_into(x, got)
    return got.tobytes() == np.exp(-np.abs(x)).tobytes()


def build_kernels() -> NumbaKernels | None:
    """Compile and verify the kernel set; ``None`` when unusable."""
    global _REASON
    try:
        kernels = _compile()
    except ImportError as exc:
        _REASON = f"numba not installed: {exc}"
        return None
    # a broken numba install must demote to numpy, not crash the run
    except Exception as exc:  # repro: allow-broad-except
        _REASON = f"numba compilation failed: {exc!r}"  # pragma: no cover
        return None
    if not _probe_bit_identity(kernels):  # pragma: no cover - libm drift
        _REASON = ("numba transcendentals are not bit-identical with "
                   "this numpy build")
        return None
    return kernels


def unavailable_reason() -> str:
    """Why the last :func:`build_kernels` call returned ``None``."""
    return _REASON
